//! Backend agreement: the partitioned-sweep Step-1 backend must produce
//! the identical response set as the R*-tree traversal and the
//! ground-truth exhaustive join — on cartographic, holed, and
//! pathological datasets, across tile counts 1/4/16 and thread counts
//! 1/2/8.

use msj_core::{ground_truth_join, Backend, Execution, JoinConfig, MultiStepJoin};
use msj_geom::{ObjectId, Point, Polygon, Relation, SpatialObject};
use proptest::prelude::*;

const TILE_COUNTS: [usize; 3] = [1, 4, 16];
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn sorted(mut v: Vec<(ObjectId, ObjectId)>) -> Vec<(ObjectId, ObjectId)> {
    v.sort_unstable();
    v
}

fn square(id: ObjectId, x: f64, y: f64, side: f64) -> SpatialObject {
    SpatialObject::new(
        id,
        Polygon::new(vec![
            Point::new(x, y),
            Point::new(x + side, y),
            Point::new(x + side, y + side),
            Point::new(x, y + side),
        ])
        .expect("square polygon")
        .into(),
    )
}

/// Degenerate-path stress: stacked identical squares, needle slivers, a
/// far-away huge-coordinate cluster.
fn pathological(offset: f64) -> Relation {
    let mut objects = Vec::new();
    let mut id = 0;
    // Identical stacked squares (identical keys in every backend).
    for _ in 0..6 {
        objects.push(square(id, 5.0 + offset, 5.0, 2.0));
        id += 1;
    }
    // Needle polygons: 400:1 aspect ratio, overlapping each other.
    for i in 0..6 {
        let y = 4.0 + i as f64 * 0.01;
        objects.push(SpatialObject::new(
            id,
            Polygon::new(vec![
                Point::new(offset, y),
                Point::new(offset + 40.0, y + 0.05),
                Point::new(offset + 40.0, y + 0.1),
            ])
            .expect("needle polygon")
            .into(),
        ));
        id += 1;
    }
    // Huge coordinates far from the origin cluster.
    for i in 0..6 {
        objects.push(square(id, 1.0e7 + offset + i as f64 * 1.5, 1.0e7, 2.0));
        id += 1;
    }
    Relation::new(objects)
}

fn agreement_on(name: &str, a: &Relation, b: &Relation) {
    let truth = sorted(ground_truth_join(a, b));
    let rstar = MultiStepJoin::new(JoinConfig::default()).execute(a, b);
    assert_eq!(
        sorted(rstar.pairs.clone()),
        truth,
        "{name}: R* vs ground truth"
    );
    for tiles_per_axis in TILE_COUNTS {
        for threads in THREAD_COUNTS {
            let config = JoinConfig::builder()
                .backend(Backend::PartitionedSweep {
                    tiles_per_axis,
                    threads,
                })
                .build();
            let part = MultiStepJoin::new(config).execute(a, b);
            assert_eq!(
                sorted(part.pairs.clone()),
                truth,
                "{name}: partitioned {tiles_per_axis}x{tiles_per_axis} t{threads} vs truth"
            );
            // Step-1 candidate sets agree too, so the filter statistics
            // are backend-invariant.
            assert_eq!(
                part.stats.mbr_join.candidates, rstar.stats.mbr_join.candidates,
                "{name}: candidate count diverged"
            );
            assert_eq!(part.stats.exact_tests, rstar.stats.exact_tests);
            // And the fused executor agrees on top of the backend. Its
            // worker count is clamped to the tile count (a tile is the
            // unit of work), and the report reflects what actually ran.
            let fused = config
                .to_builder()
                .execution(Execution::Fused { threads })
                .build();
            let par = MultiStepJoin::new(fused).execute(a, b);
            assert_eq!(par.pairs, truth, "{name}: fused execution diverged");
            let expect_threads = if a.is_empty() || b.is_empty() {
                1 // no tile ran, no worker spawned
            } else {
                threads.min(tiles_per_axis * tiles_per_axis) as u64
            };
            assert_eq!(par.stats.threads_used, expect_threads, "{name}");
        }
    }
}

#[test]
fn small_carto_agreement() {
    let a = msj_datagen::small_carto(40, 24.0, 501);
    let b = msj_datagen::small_carto(40, 24.0, 502);
    assert!(!ground_truth_join(&a, &b).is_empty());
    agreement_on("small_carto", &a, &b);
}

#[test]
fn holed_agreement() {
    let a = msj_datagen::carto_with_holes(36, 24.0, 511);
    let b = msj_datagen::carto_with_holes(36, 24.0, 512);
    assert!(!ground_truth_join(&a, &b).is_empty());
    agreement_on("holed", &a, &b);
}

#[test]
fn pathological_agreement() {
    let a = pathological(0.0);
    let b = pathological(0.7);
    assert!(!ground_truth_join(&a, &b).is_empty());
    agreement_on("pathological", &a, &b);
}

#[test]
fn empty_and_singleton_agreement() {
    let empty = Relation::default();
    let one = Relation::new(vec![square(0, 0.0, 0.0, 3.0)]);
    let carto = msj_datagen::small_carto(10, 16.0, 521);
    agreement_on("empty-vs-carto", &empty, &carto);
    agreement_on("one-vs-carto", &one, &carto);
    agreement_on("one-vs-one", &one, &one);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random seeds × random backend geometry: the partitioned response
    /// set equals ground truth and the R*-tree backend.
    #[test]
    fn random_workloads_agree(
        seed_a in 0u64..500,
        seed_b in 500u64..1000,
        tiles_index in 0usize..3,
        threads_index in 0usize..3,
        holed in any::<bool>(),
    ) {
        let (a, b) = if holed {
            (
                msj_datagen::carto_with_holes(24, 20.0, seed_a),
                msj_datagen::carto_with_holes(24, 20.0, seed_b),
            )
        } else {
            (
                msj_datagen::small_carto(24, 20.0, seed_a),
                msj_datagen::small_carto(24, 20.0, seed_b),
            )
        };
        let truth = sorted(ground_truth_join(&a, &b));
        let config = JoinConfig::builder()
            .backend(Backend::PartitionedSweep {
                tiles_per_axis: TILE_COUNTS[tiles_index],
                threads: THREAD_COUNTS[threads_index],
            })
            .build();
        let part = MultiStepJoin::new(config).execute(&a, &b);
        prop_assert_eq!(sorted(part.pairs.clone()), truth.clone());
        let rstar = MultiStepJoin::new(JoinConfig::default()).execute(&a, &b);
        prop_assert_eq!(sorted(rstar.pairs.clone()), truth);
        prop_assert_eq!(part.stats.mbr_join.candidates, rstar.stats.mbr_join.candidates);
    }
}

//! Kernel agreement: the SIMD dispatch paths must produce the
//! byte-identical response set as the scalar reference — across both
//! Step-1 backends, both tree loaders, serial and fused execution,
//! thread counts 1/4, on cartographic, skewed, holed, and pathological
//! datasets. Selections (point/window) are held to the same standard,
//! since they consume the wide MER probe masks.
//!
//! Per-kernel unit agreement (lane boundaries, NaN lanes) lives in
//! `msj-geom`; this suite proves the end-to-end gate the benchmarks
//! rely on: `force_scalar` is an observability knob, never a result
//! knob.

use msj_core::{Backend, Execution, JoinConfig, MultiStepJoin, SpatialEngine, TreeLoader};
use msj_geom::{KernelDispatch, ObjectId, Point, Polygon, Rect, Relation, SpatialObject};

fn square(id: ObjectId, x: f64, y: f64, side: f64) -> SpatialObject {
    SpatialObject::new(
        id,
        Polygon::new(vec![
            Point::new(x, y),
            Point::new(x + side, y),
            Point::new(x + side, y + side),
            Point::new(x, y + side),
        ])
        .expect("square polygon")
        .into(),
    )
}

/// Degenerate-path stress: stacked identical squares, needle slivers, a
/// far-away huge-coordinate cluster — the shapes that exercise sweep
/// early-stop lanes, duplicate keys, and extreme dynamic range.
fn pathological(offset: f64) -> Relation {
    let mut objects = Vec::new();
    let mut id = 0;
    for _ in 0..6 {
        objects.push(square(id, 5.0 + offset, 5.0, 2.0));
        id += 1;
    }
    for i in 0..6 {
        let y = 4.0 + i as f64 * 0.01;
        objects.push(SpatialObject::new(
            id,
            Polygon::new(vec![
                Point::new(offset, y),
                Point::new(offset + 40.0, y + 0.05),
                Point::new(offset + 40.0, y + 0.1),
            ])
            .expect("needle polygon")
            .into(),
        ));
        id += 1;
    }
    for i in 0..6 {
        objects.push(square(id, 1.0e7 + offset + i as f64 * 1.5, 1.0e7, 2.0));
        id += 1;
    }
    Relation::new(objects)
}

/// Every measured cell of the matrix: backend × loader × execution ×
/// threads. `force_scalar` is the only axis under test — each cell runs
/// twice and must agree byte-for-byte.
fn configs() -> Vec<(String, JoinConfig)> {
    let mut cells = Vec::new();
    let backends = [
        ("rstar".to_string(), Backend::RStarTraversal),
        (
            "partitioned".to_string(),
            Backend::PartitionedSweep {
                tiles_per_axis: 6,
                threads: 0,
            },
        ),
    ];
    for (bname, backend) in backends {
        for loader in [TreeLoader::Str, TreeLoader::Incremental] {
            for threads in [1usize, 4] {
                for fused in [false, true] {
                    let execution = if fused {
                        Execution::Fused { threads }
                    } else {
                        Execution::Serial
                    };
                    // Serial execution ignores the thread count; emit it
                    // once.
                    if !fused && threads != 1 {
                        continue;
                    }
                    let mut builder = JoinConfig::builder()
                        .backend(backend)
                        .loader(loader)
                        .execution(execution);
                    if let Backend::PartitionedSweep { tiles_per_axis, .. } = backend {
                        builder = builder.backend(Backend::PartitionedSweep {
                            tiles_per_axis,
                            threads,
                        });
                    }
                    cells.push((
                        format!("{bname}/{loader:?}/fused={fused}/t{threads}"),
                        builder.build(),
                    ));
                }
            }
        }
    }
    cells
}

fn workloads() -> Vec<(&'static str, Relation, Relation)> {
    vec![
        (
            "carto",
            msj_datagen::small_carto(48, 24.0, 701),
            msj_datagen::small_carto(48, 24.0, 702),
        ),
        (
            "skewed",
            msj_datagen::skewed_carto(48, 24.0, 711),
            msj_datagen::skewed_carto(48, 24.0, 712),
        ),
        (
            "holed",
            msj_datagen::carto_with_holes(40, 24.0, 721),
            msj_datagen::carto_with_holes(40, 24.0, 722),
        ),
        ("pathological", pathological(0.0), pathological(0.7)),
    ]
}

#[test]
fn join_response_sets_are_byte_identical_simd_vs_scalar() {
    for (wname, a, b) in workloads() {
        for (cname, config) in configs() {
            let wide = MultiStepJoin::new(config).execute(&a, &b);
            let scalar_cfg = config.to_builder().force_scalar(true).build();
            assert_eq!(scalar_cfg.kernel_dispatch(), KernelDispatch::Scalar);
            let scalar = MultiStepJoin::new(scalar_cfg).execute(&a, &b);
            assert_eq!(
                wide.pairs, scalar.pairs,
                "{wname}/{cname}: response set diverged"
            );
            // The kernels are counting-identical too: every Step-1/2
            // statistic the engine reports must match the reference.
            assert_eq!(
                wide.stats.mbr_join.candidates, scalar.stats.mbr_join.candidates,
                "{wname}/{cname}: candidates"
            );
            assert_eq!(
                wide.stats.mbr_join.mbr_tests, scalar.stats.mbr_join.mbr_tests,
                "{wname}/{cname}: mbr_tests"
            );
            assert_eq!(
                wide.stats.raster_hits, scalar.stats.raster_hits,
                "{wname}/{cname}: raster_hits"
            );
            assert_eq!(
                wide.stats.raster_drops, scalar.stats.raster_drops,
                "{wname}/{cname}: raster_drops"
            );
            assert_eq!(
                wide.stats.filter_hits_progressive, scalar.stats.filter_hits_progressive,
                "{wname}/{cname}: filter_hits_progressive"
            );
            assert_eq!(
                wide.stats.filter_false_hits, scalar.stats.filter_false_hits,
                "{wname}/{cname}: filter_false_hits"
            );
            assert_eq!(
                wide.stats.exact_tests, scalar.stats.exact_tests,
                "{wname}/{cname}: exact_tests"
            );
        }
    }
}

#[test]
fn selection_response_sets_are_byte_identical_simd_vs_scalar() {
    for (wname, rel, _) in workloads() {
        let Some(world) = rel.bounding_rect() else {
            continue;
        };
        for (cname, config) in configs() {
            let wide = SpatialEngine::new(config);
            let scalar = SpatialEngine::new(config.to_builder().force_scalar(true).build());
            let hw = wide.register(rel.clone());
            let hs = scalar.register(rel.clone());
            for i in 0..24 {
                let p = Point::new(
                    world.xmin() + world.width() * (i as f64 * 0.37).fract(),
                    world.ymin() + world.height() * (i as f64 * 0.61).fract(),
                );
                let got_w = wide.point_query(&hw, p);
                let got_s = scalar.point_query(&hs, p);
                assert_eq!(
                    got_w.ids, got_s.ids,
                    "{wname}/{cname}: point response diverged at {p:?}"
                );
                assert_eq!(got_w.stats, got_s.stats, "{wname}/{cname}: point stats");
                let side = world.width() * (0.02 + 0.07 * (i as f64 * 0.13).fract());
                let win = Rect::from_bounds(p.x, p.y, p.x + side, p.y + side);
                let got_w = wide.window_query(&hw, win);
                let got_s = scalar.window_query(&hs, win);
                assert_eq!(
                    got_w.ids, got_s.ids,
                    "{wname}/{cname}: window response diverged at {win:?}"
                );
                assert_eq!(got_w.stats, got_s.stats, "{wname}/{cname}: window stats");
            }
        }
    }
}

#[test]
fn env_override_pins_scalar() {
    // `KernelDispatch::select` honors the config knob; the env knob is
    // covered by `msj-geom` unit tests (process-global state is not
    // toggled here).
    assert_eq!(
        JoinConfig::builder()
            .force_scalar(true)
            .build()
            .kernel_dispatch(),
        KernelDispatch::Scalar
    );
    assert_eq!(
        JoinConfig::default().kernel_dispatch(),
        KernelDispatch::auto()
    );
}

//! # msj-core — the multi-step spatial join processor
//!
//! The primary contribution of *"Multi-Step Processing of Spatial Joins"*
//! (Brinkhoff, Kriegel, Schneider, Seeger; SIGMOD 1994): an intersection
//! join over two relations of complex polygonal objects executed in three
//! steps (Figure 1):
//!
//! 1. **MBR-join** — a pluggable [`candidates::CandidateSource`] produces
//!    candidate pairs whose minimum bounding rectangles intersect: the
//!    R*-tree join of [BKS 93a] ([`msj_sam::tree_join`], the default) or
//!    the partitioned parallel sweep of `msj-partition`
//!    ([`config::Backend::PartitionedSweep`]);
//! 2. **Geometric filter** — conservative approximations identify false
//!    hits, progressive approximations and the false-area test identify
//!    hits, all without touching the exact geometry
//!    ([`filter::GeometricFilter`]);
//! 3. **Exact geometry processor** — the remaining candidates are decided
//!    on the exact polygons ([`msj_exact::ExactProcessor`]; the paper's
//!    recommendation is the TR*-tree).
//!
//! Candidates are streamed between steps — no intermediate candidate sets
//! are materialized (§2.4). [`pipeline::MultiStepJoin::execute`] runs the
//! whole pipeline and returns the response set plus the per-step
//! statistics ([`stats::MultiStepStats`]) that feed every evaluation
//! table, and [`cost`] implements the §5 total-cost model of Figures 11
//! and 18.

pub mod candidates;
pub mod config;
pub mod cost;
pub mod filter;
pub mod parallel;
pub mod pipeline;
pub mod queries;
pub mod stats;

pub use candidates::{
    join_source, selection_source, CandidateSource, PartitionSummary, SelectionStats, Step1Stats,
};
pub use config::{Backend, JoinConfig};
pub use cost::{
    figure11_loss_gain, figure18_cost, CostBreakdown, CostModelParams, ExactCostKind, LossGain,
};
pub use filter::{FilterOutcome, GeometricFilter};
pub use parallel::parallel_join;
pub use pipeline::{ground_truth_join, JoinResult, MultiStepJoin};
pub use queries::{QueryProcessor, QueryStats};
pub use stats::MultiStepStats;

//! # msj-core — the multi-step spatial join processor
//!
//! The primary contribution of *"Multi-Step Processing of Spatial Joins"*
//! (Brinkhoff, Kriegel, Schneider, Seeger; SIGMOD 1994): an intersection
//! join over two relations of complex polygonal objects executed in three
//! steps (Figure 1):
//!
//! 1. **MBR-join** — a pluggable [`candidates::CandidateSource`] produces
//!    candidate pairs whose minimum bounding rectangles intersect: the
//!    R*-tree join of [BKS 93a] ([`msj_sam::tree_join`], the default) or
//!    the partitioned parallel sweep of `msj-partition`
//!    ([`config::Backend::PartitionedSweep`]);
//! 2. **Geometric filter** — the Step-2a raster pre-filter decides most
//!    candidates by a merge-intersect of Hilbert-interval signatures
//!    ([`config::RasterConfig`], on by default); conservative
//!    approximations identify false hits, progressive approximations and
//!    the false-area test identify hits among the remainder, all without
//!    touching the exact geometry ([`filter::GeometricFilter`]);
//! 3. **Exact geometry processor** — the remaining candidates are decided
//!    on the exact polygons ([`msj_exact::ExactProcessor`]; the paper's
//!    recommendation is the TR*-tree).
//!
//! Candidates are streamed between steps — no intermediate candidate sets
//! are materialized (§2.4). [`pipeline::MultiStepJoin::execute`] runs the
//! whole pipeline and returns the response set plus the per-step
//! statistics ([`stats::MultiStepStats`]) that feed every evaluation
//! table, and [`cost`] implements the §5 total-cost model of Figures 11
//! and 18.
//!
//! ## The execution engine
//!
//! One engine ([`execution`]) drives every join, parameterized by the
//! [`Execution`] policy on [`JoinConfig`]:
//!
//! * [`Execution::Serial`] — all three steps on the calling thread, in
//!   Step-1 delivery order;
//! * [`Execution::Fused`] — filter + exact run *inside* the Step-1
//!   workers, the paper's §6 CPU-parallelism outlook realized along
//!   Tsitsigkos & Mamoulis (SIGSPATIAL 2019). Candidates never
//!   materialize: backends feed per-worker sinks through the
//!   [`msj_geom::PairConsumer`] protocol (the partitioned sweep hands
//!   each tile worker its own sink; the R*-traversal distributes bounded
//!   chunks over channels), and each sink classifies candidates the
//!   moment they are produced. Results and operation counts are merged
//!   deterministically and sorted canonically, so `Fused` is
//!   byte-identical to `Serial`.
//!
//! [`parallel::parallel_join`] is the deprecated compatibility front for
//! `Fused`; prefer setting the policy on the config.
//!
//! ## The resident engine
//!
//! One-shot joins rebuild Step 0 every call. The [`engine`] module keeps
//! it resident instead: [`SpatialEngine::register`] builds and **owns**
//! each relation's Step-0 state behind `Arc`, prepared joins are owned
//! values ([`PreparedJoin`], no borrowed lifetime) that are cached,
//! shared across threads and re-run indefinitely, and join/point/window
//! traffic is served through one [`Request`]/[`Response`] surface with
//! batched submission and §5 cost-model admission control:
//!
//! ```
//! use msj_core::{Execution, JoinConfig, RasterConfig, Request, SpatialEngine};
//!
//! let engine = SpatialEngine::new(
//!     JoinConfig::builder()
//!         .execution(Execution::Fused { threads: 4 })
//!         .raster(RasterConfig::auto())
//!         .build(),
//! );
//! let a = engine.register(msj_datagen::small_carto(16, 16.0, 1));
//! let b = engine.register(msj_datagen::small_carto(16, 16.0, 2));
//! let responses = engine.submit_batch([
//!     Request::Join { a: a.id(), b: b.id(), execution: None },
//! ]);
//! assert!(responses[0].is_ok());
//! ```
//!
//! ## The batched hot path
//!
//! Candidates move between the steps in batches, and every per-candidate
//! decision that is actually per-*join* is hoisted out of the loop:
//!
//! * Step 0 builds the R*-trees with STR bulk loading by default
//!   ([`config::TreeLoader`]) — fully packed pages from one sort, with
//!   incremental insertion kept for dynamic workloads;
//! * Step 1 delivers candidate runs through
//!   [`msj_geom::PairSink::consume_batch`] (sized by
//!   [`JoinConfig::batch_pairs`]), flushed at tile/chunk boundaries;
//! * Step 2 classifies each run via a [`filter::FilterPlan`] compiled
//!   once per join over `msj-approx`'s columnar stores
//!   ([`GeometricFilter::classify_batch`]);
//! * [`MultiStepStats`] carries per-step wall-clock
//!   (`step0/1/2/3_nanos`) so speedups are attributable.

pub mod candidates;
pub mod config;
pub mod cost;
pub mod engine;
pub mod execution;
pub mod filter;
pub mod parallel;
pub mod pipeline;
pub mod queries;
pub mod stats;

pub use candidates::{
    fused_buffer_bound, join_source, selection_source, CandidateSource, PartitionSummary,
    SelectionStats, Step1Stats, FUSED_CHUNK, FUSED_QUEUE_DEPTH,
};
pub use config::{
    Backend, JoinConfig, JoinConfigBuilder, RasterConfig, TreeLoader, DEFAULT_BATCH_PAIRS,
};
pub use cost::{
    estimate_cost, figure11_loss_gain, figure18_cost, CostBreakdown, CostModelParams,
    ExactCostKind, LossGain,
};
pub use engine::{
    Admission, DatasetHandle, DatasetId, EngineError, JoinResponse, PreparedJoin, Request,
    Response, SelectionResponse, SpatialEngine, StoreConfig, RUN_HISTORY,
};
pub use execution::{Execution, ScopedPreparedJoin};
pub use filter::{FilterOutcome, FilterPlan, GeometricFilter};
#[allow(deprecated)]
pub use parallel::parallel_join;
pub use pipeline::{ground_truth_join, JoinResult, MultiStepJoin};
#[allow(deprecated)]
pub use queries::QueryProcessor;
pub use queries::QueryStats;
pub use stats::MultiStepStats;
// Re-exported observability surface (vendored `msj-obs`): configure via
// [`JoinConfig::obs`], inspect via [`SpatialEngine::metrics`] /
// [`SpatialEngine::recent_traces`].
pub use msj_obs::{
    EngineSnapshot, Histogram, HistogramSnapshot, LaneRole, MetricsRegistry, ObsConfig, Step,
    Trace, TraceSteps, WorkerLaneSnapshot, SNAPSHOT_SCHEMA,
};
// Robustness surface: deadlines / cooperative cancellation
// ([`CancelToken`] on [`SpatialEngine::submit_with_cancel`]) and the
// deterministic fault-injection plan ([`JoinConfig::fault`]).
pub use msj_fault::{FaultConfig, FaultKind};
pub use msj_geom::{CancelReason, CancelToken};

//! The multi-step join pipeline (Figure 1): MBR-join → geometric filter →
//! exact geometry processor, with candidates streamed between steps.
//!
//! [`MultiStepJoin`] is a thin front over the [`crate::execution`]
//! engine: the configured [`crate::Execution`] policy decides whether the
//! three steps run serially on the calling thread or fused inside the
//! Step-1 workers.

use crate::config::JoinConfig;
use crate::execution;
use crate::stats::MultiStepStats;
use msj_geom::{ObjectId, Relation};
use msj_obs::WorkerLaneSnapshot;

/// The outcome of one multi-step join: the response set plus per-step
/// statistics.
#[derive(Debug, Clone)]
pub struct JoinResult {
    /// The response set: pairs whose regions intersect.
    pub pairs: Vec<(ObjectId, ObjectId)>,
    pub stats: MultiStepStats,
    /// Per-worker telemetry of the run (empty when
    /// [`msj_obs::ObsConfig`] is disabled): one lane per Step-1 backend
    /// worker and one per fused consumer sink.
    pub worker_lanes: Vec<WorkerLaneSnapshot>,
}

/// The multi-step spatial join processor.
///
/// ```
/// use msj_core::{JoinConfig, MultiStepJoin};
/// use msj_geom::{Point, Polygon, Relation, SpatialObject};
///
/// let square = |x: f64, y: f64| -> SpatialObject {
///     SpatialObject::new(0, Polygon::new(vec![
///         Point::new(x, y), Point::new(x + 2.0, y),
///         Point::new(x + 2.0, y + 2.0), Point::new(x, y + 2.0),
///     ]).unwrap().into())
/// };
/// let a = Relation::new(vec![square(0.0, 0.0)]);
/// let b = Relation::new(vec![square(1.0, 1.0)]);
/// let result = MultiStepJoin::new(JoinConfig::default()).execute(&a, &b);
/// assert_eq!(result.pairs, vec![(0, 0)]);
/// ```
pub struct MultiStepJoin {
    config: JoinConfig,
}

impl MultiStepJoin {
    pub fn new(config: JoinConfig) -> Self {
        MultiStepJoin { config }
    }

    pub fn config(&self) -> &JoinConfig {
        &self.config
    }

    /// Runs the full three-step join of `rel_a` with `rel_b` under the
    /// configured [`crate::Execution`] policy.
    pub fn execute(&self, rel_a: &Relation, rel_b: &Relation) -> JoinResult {
        execution::run_join(&self.config, rel_a, rel_b)
    }

    /// Runs Step 0 (preprocessing, "insertion time") only, returning a
    /// [`crate::ScopedPreparedJoin`] that executes Steps 1–3 on demand —
    /// under the configured policy or any other, as many times as needed
    /// — for as long as the borrowed relations live. For a resident,
    /// owned prepared join (shareable across threads, no lifetime), use
    /// [`crate::SpatialEngine::prepare_join`].
    pub fn prepare<'a>(
        &self,
        rel_a: &'a Relation,
        rel_b: &'a Relation,
    ) -> execution::ScopedPreparedJoin<'a> {
        execution::prepare(&self.config, rel_a, rel_b)
    }
}

/// Ground-truth intersection join by exhaustive pairwise exact tests
/// (nested loops over the exact geometry) — the reference the multi-step
/// result must equal.
pub fn ground_truth_join(rel_a: &Relation, rel_b: &Relation) -> Vec<(ObjectId, ObjectId)> {
    let mut counts = msj_exact::OpCounts::new();
    let mut pairs = Vec::new();
    for a in rel_a.iter() {
        for b in rel_b.iter() {
            if !a.mbr().intersects(&b.mbr()) {
                continue;
            }
            if msj_exact::quadratic_intersects(&a.region, &b.region, &mut counts) {
                pairs.push((a.id, b.id));
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use msj_exact::ExactAlgorithm;

    fn blob_relation(seed: u64, count: usize) -> Relation {
        msj_datagen::small_carto(count, 24.0, seed)
    }

    fn sorted(mut v: Vec<(ObjectId, ObjectId)>) -> Vec<(ObjectId, ObjectId)> {
        v.sort_unstable();
        v
    }

    #[test]
    fn all_versions_produce_the_ground_truth() {
        let a = blob_relation(11, 48);
        let b = blob_relation(12, 48);
        let expect = sorted(ground_truth_join(&a, &b));
        assert!(!expect.is_empty(), "test data should produce hits");
        for config in [
            JoinConfig::version1(),
            JoinConfig::version2(),
            JoinConfig::version3(),
        ] {
            let result = MultiStepJoin::new(config).execute(&a, &b);
            assert_eq!(
                sorted(result.pairs.clone()),
                expect.clone(),
                "config {config:?} wrong result"
            );
        }
    }

    #[test]
    fn filter_configurations_agree_and_reduce_exact_tests() {
        let a = blob_relation(21, 40);
        let b = blob_relation(22, 40);
        let v1 = MultiStepJoin::new(JoinConfig::version1()).execute(&a, &b);
        let v3 = MultiStepJoin::new(JoinConfig::version3()).execute(&a, &b);
        assert_eq!(sorted(v1.pairs.clone()), sorted(v3.pairs.clone()));
        // Version 1 sends every candidate to the exact step.
        assert_eq!(v1.stats.exact_tests, v1.stats.mbr_join.candidates);
        // Version 3 filters a substantial share.
        assert!(
            v3.stats.exact_tests < v1.stats.exact_tests,
            "filter must reduce exact tests ({} vs {})",
            v3.stats.exact_tests,
            v1.stats.exact_tests
        );
        assert!(v3.stats.identified() > 0);
    }

    #[test]
    fn stats_identities_hold() {
        let a = blob_relation(31, 36);
        let b = blob_relation(32, 36);
        let r = MultiStepJoin::new(JoinConfig::version3()).execute(&a, &b);
        let s = &r.stats;
        assert_eq!(
            s.mbr_join.candidates,
            s.identified() + s.exact_tests,
            "every candidate is classified or tested"
        );
        assert_eq!(
            s.result_pairs,
            s.raster_hits + s.filter_hits_progressive + s.filter_hits_false_area + s.exact_hits
        );
        assert_eq!(r.pairs.len() as u64, s.result_pairs);
        // Step-2a accounting: every candidate passes through the raster
        // stage exactly once (the stage is on in version 3).
        assert_eq!(
            s.mbr_join.candidates,
            s.raster_hits + s.raster_drops + s.raster_inconclusive
        );
        assert!(s.raster_hits + s.raster_drops > 0, "stage decided nothing");
    }

    #[test]
    fn false_area_test_only_adds_hits_not_pairs() {
        let a = blob_relation(41, 30);
        let b = blob_relation(42, 30);
        let without = MultiStepJoin::new(JoinConfig {
            false_area_test: false,
            ..JoinConfig::version2()
        })
        .execute(&a, &b);
        let with = MultiStepJoin::new(JoinConfig {
            false_area_test: true,
            ..JoinConfig::version2()
        })
        .execute(&a, &b);
        assert_eq!(sorted(without.pairs.clone()), sorted(with.pairs.clone()));
        // With the false-area test enabled, some hits may move from the
        // exact step into the filter, never the other way.
        assert!(with.stats.exact_tests <= without.stats.exact_tests);
    }

    #[test]
    fn raster_stage_never_changes_the_response_set() {
        use crate::config::RasterConfig;
        let a = blob_relation(71, 40);
        let b = blob_relation(72, 40);
        let on = MultiStepJoin::new(JoinConfig::default()).execute(&a, &b);
        let off = MultiStepJoin::new(JoinConfig {
            raster: RasterConfig::off(),
            ..JoinConfig::default()
        })
        .execute(&a, &b);
        assert_eq!(sorted(on.pairs.clone()), sorted(off.pairs.clone()));
        // Off → the stage reports nothing.
        let s = &off.stats;
        assert_eq!(s.raster_hits + s.raster_drops + s.raster_inconclusive, 0);
        assert_eq!(s.step2a_nanos, 0);
        // On → decided candidates never reach later stages.
        assert!(on.stats.exact_tests <= off.stats.exact_tests);
        assert!(on.stats.filter_false_hits <= off.stats.filter_false_hits);
    }

    #[test]
    fn quadratic_exact_also_agrees() {
        let a = blob_relation(51, 24);
        let b = blob_relation(52, 24);
        let expect = sorted(ground_truth_join(&a, &b));
        let r = MultiStepJoin::new(JoinConfig {
            exact: ExactAlgorithm::Quadratic,
            ..JoinConfig::version2()
        })
        .execute(&a, &b);
        assert_eq!(sorted(r.pairs), expect);
    }

    #[test]
    fn partitioned_backend_produces_the_ground_truth() {
        use crate::config::Backend;
        let a = blob_relation(13, 48);
        let b = blob_relation(14, 48);
        let expect = sorted(ground_truth_join(&a, &b));
        assert!(!expect.is_empty());
        let serial = MultiStepJoin::new(JoinConfig::default()).execute(&a, &b);
        for tiles_per_axis in [1usize, 4, 16] {
            let config = JoinConfig {
                backend: Backend::PartitionedSweep {
                    tiles_per_axis,
                    threads: 2,
                },
                ..JoinConfig::default()
            };
            let result = MultiStepJoin::new(config).execute(&a, &b);
            assert_eq!(
                sorted(result.pairs.clone()),
                expect,
                "tiles {tiles_per_axis}"
            );
            // The candidate set matches the R*-tree backend exactly, so
            // the filter statistics match too.
            assert_eq!(
                result.stats.mbr_join.candidates,
                serial.stats.mbr_join.candidates
            );
            assert_eq!(result.stats.exact_tests, serial.stats.exact_tests);
            let summary = result.stats.partition.expect("partition summary");
            assert_eq!(summary.tiles_per_axis, tiles_per_axis as u64);
        }
        assert!(serial.stats.partition.is_none());
    }

    #[test]
    fn empty_relations_join_to_empty() {
        let a = Relation::default();
        let b = blob_relation(61, 10);
        let r = MultiStepJoin::new(JoinConfig::default()).execute(&a, &b);
        assert!(r.pairs.is_empty());
        assert_eq!(r.stats.mbr_join.candidates, 0);
    }

    #[test]
    fn doc_example_runs() {
        // Mirror of the struct-level doc example.
        use msj_geom::{Point, Polygon, SpatialObject};
        let square = |x: f64, y: f64| {
            SpatialObject::new(
                0,
                Polygon::new(vec![
                    Point::new(x, y),
                    Point::new(x + 2.0, y),
                    Point::new(x + 2.0, y + 2.0),
                    Point::new(x, y + 2.0),
                ])
                .unwrap()
                .into(),
            )
        };
        let a = Relation::new(vec![square(0.0, 0.0)]);
        let b = Relation::new(vec![square(1.0, 1.0)]);
        let result = MultiStepJoin::new(JoinConfig::default()).execute(&a, &b);
        assert_eq!(result.pairs, vec![(0, 0)]);
    }
}

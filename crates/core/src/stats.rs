//! Per-step statistics of one multi-step join execution.

use crate::candidates::PartitionSummary;
use msj_exact::OpCounts;
use msj_sam::JoinStats;

/// What happened in each step of the join (the quantities behind
/// Tables 2–5 and Figures 11/12/18).
#[derive(Debug, Clone, Copy, Default)]
pub struct MultiStepStats {
    /// Step 1 (MBR-join): candidate pairs, MBR tests, page accesses.
    pub mbr_join: JoinStats,
    /// Step-1 partition digest when the partitioned backend ran (`None`
    /// under the R*-tree traversal).
    pub partition: Option<PartitionSummary>,
    /// The largest worker pool that actually ran anywhere in the
    /// execution: the engine's fused filter/exact sinks, or the Step-1
    /// backend's internal tile workers when the downstream ran serially
    /// (so a serial pipeline over a parallel `PartitionedSweep` reports
    /// the backend's worker count, not a misleading 1). Always ≥ 1.
    pub threads_used: u64,
    /// Peak candidate pairs buffered between Step 1 and the filter/exact
    /// steps. 0 when candidates were fully streamed (the serial pipeline
    /// and the fused partitioned backend); the fused R*-traversal
    /// fan-out stays below [`crate::candidates::fused_buffer_bound`].
    /// The candidate set is never materialized in full on any path.
    pub peak_buffered_candidates: u64,
    /// Step 2a: hits proved by the raster signatures (a shared FULL
    /// cell). 0 when the stage is disabled.
    pub raster_hits: u64,
    /// Step 2a: false hits proved by the raster signatures (no shared
    /// cell).
    pub raster_drops: u64,
    /// Step 2a: candidates the raster stage saw but could not decide
    /// (they fell through to the conservative/progressive chain). 0 when
    /// the stage is disabled; otherwise
    /// `raster_hits + raster_drops + raster_inconclusive` equals the
    /// MBR-join candidate count.
    pub raster_inconclusive: u64,
    /// Step 2: false hits identified by the conservative approximation.
    pub filter_false_hits: u64,
    /// Step 2: hits identified by the progressive approximation.
    pub filter_hits_progressive: u64,
    /// Step 2: hits identified by the false-area test.
    pub filter_hits_false_area: u64,
    /// Step 3: candidate pairs tested on the exact geometry.
    pub exact_tests: u64,
    /// Step 3: pairs confirmed by the exact geometry.
    pub exact_hits: u64,
    /// Step 3: accumulated weighted geometric operations.
    pub exact_ops: OpCounts,
    /// Total result pairs (filter hits + exact hits).
    pub result_pairs: u64,
    /// Step 0 wall-clock (preprocessing: index build + approximation
    /// stores + exact representations), in nanoseconds. Paid once per
    /// [`crate::PreparedJoin`] and reported unchanged on every run of
    /// that preparation.
    pub step0_nanos: u64,
    /// Step 1 residual wall-clock in nanoseconds: the Steps-1–3 wall
    /// time minus the measured Step-2/3 time. Exact attribution on the
    /// serial path; under fused execution Steps 2–3 run *inside* the
    /// Step-1 workers, so their summed time overlaps Step 1 and this
    /// residual is a lower bound (it also absorbs the engine's merge +
    /// canonical sort).
    pub step1_nanos: u64,
    /// Step 2 (geometric filter) time in nanoseconds, summed across all
    /// workers — CPU time, so it can exceed the wall clock on parallel
    /// runs. Measured per batch, not per pair. Includes the Step-2a
    /// share reported separately in
    /// [`MultiStepStats::step2a_nanos`].
    pub step2_nanos: u64,
    /// Step 2a (raster signature merge-intersect) time in nanoseconds,
    /// summed across all workers; a subset of
    /// [`MultiStepStats::step2_nanos`]. 0 when the stage is disabled.
    pub step2a_nanos: u64,
    /// Step 3 (exact geometry) time in nanoseconds, summed across all
    /// workers (CPU time, like [`MultiStepStats::step2_nanos`]).
    pub step3_nanos: u64,
}

impl MultiStepStats {
    /// Pairs the filter could not classify (these must fetch the exact
    /// object representation — the §5 object-access cost driver).
    pub fn unidentified(&self) -> u64 {
        self.exact_tests
    }

    /// Pairs classified by the filter (raster decisions + approximation
    /// hits + false hits) — each saves an object access under the §5
    /// cost assumption.
    pub fn identified(&self) -> u64 {
        self.raster_hits
            + self.raster_drops
            + self.filter_false_hits
            + self.filter_hits_progressive
            + self.filter_hits_false_area
    }

    /// Fraction of MBR-join candidates the Step-2a raster stage decided
    /// (Hit or Drop) before the convex/MER columns were touched.
    pub fn raster_decided_fraction(&self) -> f64 {
        if self.mbr_join.candidates == 0 {
            0.0
        } else {
            (self.raster_hits + self.raster_drops) as f64 / self.mbr_join.candidates as f64
        }
    }

    /// True hits that the filter failed to identify.
    pub fn unidentified_hits(&self) -> u64 {
        self.exact_hits
    }

    /// True false hits that the filter failed to identify.
    pub fn unidentified_false_hits(&self) -> u64 {
        self.exact_tests - self.exact_hits
    }

    /// Total true hits of the join.
    pub fn hits(&self) -> u64 {
        self.result_pairs
    }

    /// Total true false hits among the MBR-join candidates.
    pub fn false_hits(&self) -> u64 {
        self.mbr_join.candidates - self.result_pairs
    }

    /// Fraction of candidates classified by the geometric filter (Figure
    /// 12 reports 46 % for BW A with 5-C + MER).
    pub fn identified_fraction(&self) -> f64 {
        if self.mbr_join.candidates == 0 {
            0.0
        } else {
            self.identified() as f64 / self.mbr_join.candidates as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MultiStepStats {
        let mut s = MultiStepStats::default();
        s.mbr_join.candidates = 100;
        s.raster_hits = 10;
        s.raster_drops = 15;
        s.raster_inconclusive = 75;
        s.filter_false_hits = 10;
        s.filter_hits_progressive = 20;
        s.filter_hits_false_area = 5;
        s.exact_tests = 40;
        s.exact_hits = 30;
        s.result_pairs = 65;
        s
    }

    #[test]
    fn derived_quantities_are_consistent() {
        let s = sample();
        assert_eq!(s.identified(), 60);
        assert_eq!(s.unidentified(), 40);
        assert_eq!(s.hits(), 65);
        assert_eq!(s.false_hits(), 35);
        assert_eq!(s.unidentified_hits(), 30);
        assert_eq!(s.unidentified_false_hits(), 10);
        assert!((s.identified_fraction() - 0.6).abs() < 1e-12);
        assert!((s.raster_decided_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn accounting_identity() {
        let s = sample();
        // candidates = identified + unidentified
        assert_eq!(s.mbr_join.candidates, s.identified() + s.unidentified());
        // candidates = raster-decided + raster-inconclusive (stage on)
        assert_eq!(
            s.mbr_join.candidates,
            s.raster_hits + s.raster_drops + s.raster_inconclusive
        );
        // hits = raster + progressive + false-area + exact
        assert_eq!(
            s.hits(),
            s.raster_hits + s.filter_hits_progressive + s.filter_hits_false_area + s.exact_hits
        );
        // false hits = raster drops + filter false hits + exact-refuted
        assert_eq!(
            s.false_hits(),
            s.raster_drops + s.filter_false_hits + s.unidentified_false_hits()
        );
    }

    #[test]
    fn empty_join_fraction_is_zero() {
        let s = MultiStepStats::default();
        assert_eq!(s.identified_fraction(), 0.0);
        assert_eq!(s.raster_decided_fraction(), 0.0);
    }
}

//! CPU-parallel join processing — the paper's §6 outlook ("another task is
//! to consider CPU- and I/O-parallelism in future work").
//!
//! [`parallel_join`] is the compatibility front over the fused execution
//! engine ([`crate::execution`]): it is exactly
//! `MultiStepJoin::execute` with [`Execution::Fused`] swapped into the
//! config. Earlier revisions implemented a separate collect-then-chunk
//! executor here — materialize all candidates, then fan Steps 2–3 out
//! over chunks — which paid a full barrier plus memory proportional to
//! the candidate count. The fused engine replaces it: filter + exact run
//! *inside* the Step-1 workers and nothing is materialized. (The
//! `msj-bench` crate keeps a reference implementation of the old
//! executor as the baseline its `fused` experiment measures against.)

use crate::config::JoinConfig;
use crate::execution::{self, Execution};
use crate::pipeline::JoinResult;
use msj_geom::Relation;

/// Runs the multi-step join with the filter and exact steps fused into
/// `threads` Step-1 workers (0 = available parallelism).
///
/// The response set equals [`crate::MultiStepJoin::execute`]'s
/// (canonically sorted) with exactly-merged statistics;
/// [`crate::MultiStepStats::threads_used`] records the worker count that
/// actually ran (the partitioned backend clamps to its tile count).
#[deprecated(
    since = "0.1.0",
    note = "set `Execution::Fused` on the config (one-shot) or register the relations on a resident `SpatialEngine` and run its owned `PreparedJoin` — this shim delegates to the same engine core"
)]
pub fn parallel_join(
    rel_a: &Relation,
    rel_b: &Relation,
    config: &JoinConfig,
    threads: usize,
) -> JoinResult {
    let config = JoinConfig {
        execution: Execution::Fused { threads },
        ..*config
    };
    execution::run_join(&config, rel_a, rel_b)
}

#[cfg(test)]
#[allow(deprecated)] // the shim must stay covered until it is removed
mod tests {
    use super::*;
    use crate::pipeline::MultiStepJoin;

    fn sorted(mut v: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
        v.sort_unstable();
        v
    }

    #[test]
    fn parallel_equals_serial_for_all_versions() {
        let a = msj_datagen::small_carto(48, 24.0, 71);
        let b = msj_datagen::small_carto(48, 24.0, 72);
        for config in [
            JoinConfig::version1(),
            JoinConfig::version2(),
            JoinConfig::version3(),
        ] {
            let serial = MultiStepJoin::new(config).execute(&a, &b);
            for threads in [1usize, 2, 4] {
                let par = parallel_join(&a, &b, &config, threads);
                assert_eq!(
                    sorted(serial.pairs.clone()),
                    par.pairs,
                    "{config:?} x{threads}"
                );
                assert_eq!(serial.stats.filter_false_hits, par.stats.filter_false_hits);
                assert_eq!(serial.stats.exact_tests, par.stats.exact_tests);
                assert_eq!(serial.stats.exact_hits, par.stats.exact_hits);
                // Operation counts merge exactly: same work, just spread.
                assert_eq!(serial.stats.exact_ops, par.stats.exact_ops);
            }
        }
    }

    #[test]
    fn records_the_thread_count_used() {
        let a = msj_datagen::small_carto(24, 20.0, 75);
        let b = msj_datagen::small_carto(24, 20.0, 76);
        // The R*-traversal fan-out spawns exactly the requested workers.
        for threads in [1usize, 2, 8] {
            let par = parallel_join(&a, &b, &JoinConfig::default(), threads);
            assert_eq!(par.stats.threads_used, threads as u64);
        }
        let serial = MultiStepJoin::new(JoinConfig::default()).execute(&a, &b);
        assert_eq!(serial.stats.threads_used, 1);
    }

    #[test]
    fn parallel_equals_serial_on_the_partitioned_backend() {
        use crate::config::Backend;
        let a = msj_datagen::small_carto(40, 24.0, 77);
        let b = msj_datagen::small_carto(40, 24.0, 78);
        let config = JoinConfig {
            backend: Backend::PartitionedSweep {
                tiles_per_axis: 4,
                threads: 2,
            },
            ..JoinConfig::default()
        };
        let serial = MultiStepJoin::new(config).execute(&a, &b);
        for threads in [1usize, 2, 8] {
            let par = parallel_join(&a, &b, &config, threads);
            assert_eq!(sorted(serial.pairs.clone()), par.pairs, "x{threads}");
            assert_eq!(serial.stats.exact_ops, par.stats.exact_ops);
            // The partition digest is worker-count invariant except for
            // the recorded worker count itself.
            let (ps, pp) = (
                serial.stats.partition.expect("summary"),
                par.stats.partition.expect("summary"),
            );
            assert_eq!(pp.tiles_per_axis, ps.tiles_per_axis);
            assert_eq!(pp.nonempty_tiles, ps.nonempty_tiles);
            assert_eq!(pp.busiest_tile_candidates, ps.busiest_tile_candidates);
            assert_eq!(pp.dedup_skipped, ps.dedup_skipped);
            assert_eq!(pp.replicated_assignments, ps.replicated_assignments);
            // Workers are clamped to the 16 available tiles.
            assert_eq!(par.stats.threads_used, threads.min(16) as u64);
        }
    }

    #[test]
    fn zero_threads_uses_available_parallelism() {
        let a = msj_datagen::small_carto(20, 16.0, 81);
        let b = msj_datagen::small_carto(20, 16.0, 82);
        let par = parallel_join(&a, &b, &JoinConfig::default(), 0);
        let serial = MultiStepJoin::new(JoinConfig::default()).execute(&a, &b);
        assert_eq!(sorted(serial.pairs), par.pairs);
        assert!(par.stats.threads_used >= 1);
    }

    #[test]
    fn more_threads_than_candidates_is_fine() {
        let a = msj_datagen::small_carto(4, 12.0, 91);
        let b = msj_datagen::small_carto(4, 12.0, 92);
        let par = parallel_join(&a, &b, &JoinConfig::default(), 64);
        let serial = MultiStepJoin::new(JoinConfig::default()).execute(&a, &b);
        assert_eq!(sorted(serial.pairs), par.pairs);
    }
}

//! CPU-parallel join processing — the paper's §6 outlook ("another task is
//! to consider CPU- and I/O-parallelism in future work").
//!
//! The filter and exact steps are embarrassingly parallel over candidate
//! pairs: approximation stores and object representations are read-only
//! once built. [`parallel_join`] runs the MBR-join serially (it is I/O
//! bound and cheap), collects the candidates, and fans the filter + exact
//! work out over scoped threads. Determinism is preserved: the result is
//! sorted canonically and the operation counts are merged exactly.

use crate::candidates;
use crate::config::JoinConfig;
use crate::filter::{FilterOutcome, GeometricFilter};
use crate::pipeline::JoinResult;
use crate::stats::MultiStepStats;
use msj_exact::{ExactProcessor, OpCounts};
use msj_geom::{ObjectId, Relation};

/// Runs the multi-step join with the filter and exact steps parallelized
/// over `threads` workers (0 = available parallelism).
///
/// Step 1 runs through the configured [`crate::candidates`] backend —
/// serially for the R*-tree traversal (its I/O accounting needs one
/// buffer), with its own tile-level parallelism for the partitioned
/// sweep. The returned response set equals
/// [`crate::MultiStepJoin::execute`]'s (canonically sorted) with
/// identical statistics, and [`MultiStepStats::threads_used`] records the
/// worker count of the filter/exact fan-out.
pub fn parallel_join(
    rel_a: &Relation,
    rel_b: &Relation,
    config: &JoinConfig,
    threads: usize,
) -> JoinResult {
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };

    // Preprocessing through the same paths as the serial pipeline.
    let mut source = candidates::join_source(config, rel_a, rel_b);
    let filter = GeometricFilter::from_config(config, rel_a, rel_b);
    let exact = ExactProcessor::new(config.exact, rel_a, rel_b);

    // Step 1: materialize the candidates for the fan-out.
    let mut candidates: Vec<(ObjectId, ObjectId)> = Vec::new();
    let step1 = source.join_candidates(&mut |a, b| candidates.push((a, b)));

    // Steps 2+3, parallel over candidate chunks.
    let chunk_size = candidates.len().div_ceil(threads.max(1)).max(1);
    let mut partials: Vec<(Vec<(ObjectId, ObjectId)>, MultiStepStats)> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for chunk in candidates.chunks(chunk_size) {
            let filter = &filter;
            let exact = &exact;
            handles.push(scope.spawn(move || {
                let mut pairs = Vec::new();
                let mut stats = MultiStepStats::default();
                let mut counts = OpCounts::new();
                for &(a, b) in chunk {
                    match filter.classify(a, b) {
                        FilterOutcome::FalseHit => stats.filter_false_hits += 1,
                        FilterOutcome::HitProgressive => {
                            stats.filter_hits_progressive += 1;
                            pairs.push((a, b));
                        }
                        FilterOutcome::HitFalseArea => {
                            stats.filter_hits_false_area += 1;
                            pairs.push((a, b));
                        }
                        FilterOutcome::Candidate => {
                            stats.exact_tests += 1;
                            if exact.intersects(a, b, &mut counts) {
                                stats.exact_hits += 1;
                                pairs.push((a, b));
                            }
                        }
                    }
                }
                stats.exact_ops = counts;
                (pairs, stats)
            }));
        }
        for h in handles {
            partials.push(h.join().expect("worker panicked"));
        }
    });

    // Deterministic merge.
    let mut stats = MultiStepStats {
        mbr_join: step1.join,
        partition: step1.partition,
        threads_used: threads as u64,
        ..MultiStepStats::default()
    };
    let mut pairs = Vec::new();
    for (p, s) in partials {
        pairs.extend(p);
        stats.filter_false_hits += s.filter_false_hits;
        stats.filter_hits_progressive += s.filter_hits_progressive;
        stats.filter_hits_false_area += s.filter_hits_false_area;
        stats.exact_tests += s.exact_tests;
        stats.exact_hits += s.exact_hits;
        stats.exact_ops.merge(&s.exact_ops);
    }
    pairs.sort_unstable();
    stats.result_pairs = pairs.len() as u64;
    JoinResult { pairs, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::MultiStepJoin;

    fn sorted(mut v: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
        v.sort_unstable();
        v
    }

    #[test]
    fn parallel_equals_serial_for_all_versions() {
        let a = msj_datagen::small_carto(48, 24.0, 71);
        let b = msj_datagen::small_carto(48, 24.0, 72);
        for config in [
            JoinConfig::version1(),
            JoinConfig::version2(),
            JoinConfig::version3(),
        ] {
            let serial = MultiStepJoin::new(config).execute(&a, &b);
            for threads in [1usize, 2, 4] {
                let par = parallel_join(&a, &b, &config, threads);
                assert_eq!(
                    sorted(serial.pairs.clone()),
                    par.pairs,
                    "{config:?} x{threads}"
                );
                assert_eq!(serial.stats.filter_false_hits, par.stats.filter_false_hits);
                assert_eq!(serial.stats.exact_tests, par.stats.exact_tests);
                assert_eq!(serial.stats.exact_hits, par.stats.exact_hits);
                // Operation counts merge exactly: same work, just spread.
                assert_eq!(serial.stats.exact_ops, par.stats.exact_ops);
            }
        }
    }

    #[test]
    fn records_the_thread_count_used() {
        let a = msj_datagen::small_carto(24, 20.0, 75);
        let b = msj_datagen::small_carto(24, 20.0, 76);
        for threads in [1usize, 2, 8] {
            let par = parallel_join(&a, &b, &JoinConfig::default(), threads);
            assert_eq!(par.stats.threads_used, threads as u64);
        }
        let serial = MultiStepJoin::new(JoinConfig::default()).execute(&a, &b);
        assert_eq!(serial.stats.threads_used, 1);
    }

    #[test]
    fn parallel_equals_serial_on_the_partitioned_backend() {
        use crate::config::Backend;
        let a = msj_datagen::small_carto(40, 24.0, 77);
        let b = msj_datagen::small_carto(40, 24.0, 78);
        let config = JoinConfig {
            backend: Backend::PartitionedSweep {
                tiles_per_axis: 4,
                threads: 2,
            },
            ..JoinConfig::default()
        };
        let serial = MultiStepJoin::new(config).execute(&a, &b);
        for threads in [1usize, 2, 8] {
            let par = parallel_join(&a, &b, &config, threads);
            assert_eq!(sorted(serial.pairs.clone()), par.pairs, "x{threads}");
            assert_eq!(serial.stats.exact_ops, par.stats.exact_ops);
            assert_eq!(par.stats.partition, serial.stats.partition);
        }
    }

    #[test]
    fn zero_threads_uses_available_parallelism() {
        let a = msj_datagen::small_carto(20, 16.0, 81);
        let b = msj_datagen::small_carto(20, 16.0, 82);
        let par = parallel_join(&a, &b, &JoinConfig::default(), 0);
        let serial = MultiStepJoin::new(JoinConfig::default()).execute(&a, &b);
        assert_eq!(sorted(serial.pairs), par.pairs);
    }

    #[test]
    fn more_threads_than_candidates_is_fine() {
        let a = msj_datagen::small_carto(4, 12.0, 91);
        let b = msj_datagen::small_carto(4, 12.0, 92);
        let par = parallel_join(&a, &b, &JoinConfig::default(), 64);
        let serial = MultiStepJoin::new(JoinConfig::default()).execute(&a, &b);
        assert_eq!(sorted(serial.pairs), par.pairs);
    }
}

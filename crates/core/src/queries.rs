//! Multi-step point and window queries (§2, [BHKS 93] / [KBS 93]).
//!
//! The join is the paper's subject, but the same multi-step architecture
//! serves the selective queries it builds on — and Figure 10 measures
//! point and window queries on the same storage organizations. The
//! processor here mirrors the join pipeline:
//!
//! 1. R*-tree point/window query on the MBR keys → candidates;
//! 2. geometric filter: conservative approximation test (false-hit
//!    elimination), progressive approximation test (hit identification);
//! 3. exact geometry test for the remainder.

use crate::candidates::{self, CandidateSource};
use crate::config::JoinConfig;
use msj_approx::{ConsView, ConservativeStore, Progressive, ProgressiveStore};
use msj_exact::{region_contains_point, region_intersects_rect, OpCounts};
use msj_geom::kernels::{self, KernelDispatch};
use msj_geom::{ObjectId, Point, Rect, RelHandle, Relation};
use msj_obs::{Span, Step, StepSpans};
use std::sync::Arc;

/// Per-query statistics of a multi-step query execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Candidates produced by the index (MBR hits).
    pub candidates: u64,
    /// Candidates eliminated by the conservative approximation.
    pub filter_false_hits: u64,
    /// Candidates confirmed by the progressive approximation.
    pub filter_hits: u64,
    /// Candidates that required the exact geometry.
    pub exact_tests: u64,
    /// Physical page accesses of the index probe.
    pub physical_reads: u64,
}

/// The resident multi-step selection state over one relation: candidate
/// source plus `Arc`-shared approximation stores. This is what a
/// [`crate::SpatialEngine`] dataset keeps registered; the deprecated
/// [`QueryProcessor`] wraps the same state over a borrowed relation.
pub(crate) struct SelectionState<'a> {
    pub relation: RelHandle<'a>,
    pub source: Box<dyn CandidateSource + 'a>,
    pub conservative: Option<Arc<ConservativeStore>>,
    pub progressive: Option<Arc<ProgressiveStore>>,
    /// Kernel path of the wide MER probe masks; the per-candidate
    /// fallback chain stays scalar. Outcomes are identical on every
    /// path.
    pub dispatch: KernelDispatch,
}

impl<'a> SelectionState<'a> {
    /// Builds the candidate source and the configured approximation
    /// stores (or adopts pre-built shared stores).
    pub fn build(relation: RelHandle<'a>, config: &JoinConfig) -> Self {
        let conservative = config
            .conservative
            .map(|k| Arc::new(ConservativeStore::build(k, &relation)));
        let progressive = config
            .progressive
            .map(|k| Arc::new(ProgressiveStore::build(k, &relation)));
        Self::from_shared(relation, config, conservative, progressive)
    }

    /// Assembles the state around stores built once at dataset
    /// registration (the engine's path).
    pub fn from_shared(
        relation: RelHandle<'a>,
        config: &JoinConfig,
        conservative: Option<Arc<ConservativeStore>>,
        progressive: Option<Arc<ProgressiveStore>>,
    ) -> Self {
        let source = candidates::selection_source_with(
            config,
            relation.clone(),
            candidates::SharedStep1::default(),
        );
        SelectionState {
            relation,
            source,
            conservative,
            progressive,
            dispatch: config.kernel_dispatch(),
        }
    }

    /// Like [`SelectionState::from_shared`], reusing a pre-built Step-1
    /// index.
    pub fn from_shared_with_step1(
        relation: RelHandle<'a>,
        config: &JoinConfig,
        shared: candidates::SharedStep1,
        conservative: Option<Arc<ConservativeStore>>,
        progressive: Option<Arc<ProgressiveStore>>,
    ) -> Self {
        let source = candidates::selection_source_with(config, relation.clone(), shared);
        SelectionState {
            relation,
            source,
            conservative,
            progressive,
            dispatch: config.kernel_dispatch(),
        }
    }

    /// All objects whose region contains `p` (closed semantics).
    pub fn point_query(&self, p: Point, counts: &mut OpCounts) -> (Vec<ObjectId>, QueryStats) {
        self.point_query_observed(p, counts, None)
    }

    /// [`point_query`](SelectionState::point_query) with step timing:
    /// the index probe lands in `Step1`, the filter chain in `Step2` and
    /// the exact tests in `Step3` of `spans`; `None` skips every clock
    /// read. Results are identical either way.
    pub fn point_query_observed(
        &self,
        p: Point,
        counts: &mut OpCounts,
        spans: Option<&StepSpans>,
    ) -> (Vec<ObjectId>, QueryStats) {
        let t_probe = spans.map(|_| Span::start());
        let mut candidates = Vec::new();
        let step1 = self.source.point_candidates(p, &mut candidates);
        if let (Some(spans), Some(t)) = (spans, t_probe) {
            spans.finish(Step::Step1, t);
        }
        let mut stats = QueryStats {
            candidates: step1.candidates,
            physical_reads: step1.physical_reads,
            ..QueryStats::default()
        };
        let t_rest = spans.map(|_| Span::start());
        // MER progressive columns admit a wide probe: one id-gathered
        // point-in-rect mask over the whole candidate list (NaN-sentinel
        // slots land `false`, exactly like `Progressive::Empty`). The
        // per-candidate chain below consumes it by index.
        let mer_mask = self.progressive.as_deref().and_then(|prog| {
            prog.mer_column().map(|mers| {
                let mut mask = Vec::new();
                kernels::rects_contain_point(self.dispatch, mers, &candidates, p, &mut mask);
                mask
            })
        });
        let mut exact_nanos = 0u64;
        let mut result = Vec::new();
        for (slot, id) in candidates.into_iter().enumerate() {
            // Conservative: point outside the approximation → false hit.
            if let Some(cons) = &self.conservative {
                if !cons.view(id).contains_point(p) {
                    stats.filter_false_hits += 1;
                    continue;
                }
            }
            // Progressive: point inside the enclosed shape → hit.
            if let Some(prog) = &self.progressive {
                let hit = match &mer_mask {
                    Some(mask) => mask[slot],
                    None => progressive_contains(&prog.get(id), p),
                };
                if hit {
                    stats.filter_hits += 1;
                    result.push(id);
                    continue;
                }
            }
            stats.exact_tests += 1;
            let t_exact = spans.map(|_| Span::start());
            let hit = region_contains_point(&self.relation.object(id).region, p, counts);
            if let Some(t) = t_exact {
                exact_nanos += t.elapsed_nanos();
            }
            if hit {
                result.push(id);
            }
        }
        if let (Some(spans), Some(t)) = (spans, t_rest) {
            // Step 2 is the candidate loop minus its exact share.
            spans.add(Step::Step3, exact_nanos);
            spans.add(Step::Step2, t.elapsed_nanos().saturating_sub(exact_nanos));
        }
        (result, stats)
    }

    /// A *batch* of point queries sharing one Step-1 descent (single
    /// simulated-buffer lock, warm root path — see
    /// [`crate::candidates::CandidateSource::point_candidates_batch`])
    /// and one filter pass with shared scratch buffers. Per query, the
    /// candidate order, the result ids and every deterministic stats
    /// field are identical to [`point_query`](SelectionState::point_query)
    /// — only the physical-read attribution can differ, because the
    /// batch keeps the buffer warm between its queries.
    pub fn point_query_batch(
        &self,
        points: &[Point],
        counts: &mut OpCounts,
        spans: Option<&StepSpans>,
    ) -> Vec<(Vec<ObjectId>, QueryStats, OpCounts)> {
        let t_probe = spans.map(|_| Span::start());
        let mut all = Vec::new();
        let mut probe_stats = Vec::with_capacity(points.len());
        self.source
            .point_candidates_batch(points, &mut all, &mut probe_stats);
        if let (Some(spans), Some(t)) = (spans, t_probe) {
            spans.finish(Step::Step1, t);
        }
        let t_rest = spans.map(|_| Span::start());
        let mer = self.progressive.as_deref().and_then(|p| p.mer_column());
        let mut mask = Vec::new();
        let mut exact_nanos = 0u64;
        let mut out = Vec::with_capacity(points.len());
        let mut offset = 0usize;
        for (qi, &p) in points.iter().enumerate() {
            let n = probe_stats[qi].candidates as usize;
            let candidates = &all[offset..offset + n];
            offset += n;
            let mut stats = QueryStats {
                candidates: probe_stats[qi].candidates,
                physical_reads: probe_stats[qi].physical_reads,
                ..QueryStats::default()
            };
            let has_mask = match mer {
                Some(mers) => {
                    mask.clear();
                    kernels::rects_contain_point(self.dispatch, mers, candidates, p, &mut mask);
                    true
                }
                None => false,
            };
            let mut result = Vec::new();
            let mut q_counts = OpCounts::new();
            for (slot, &id) in candidates.iter().enumerate() {
                if let Some(cons) = &self.conservative {
                    if !cons.view(id).contains_point(p) {
                        stats.filter_false_hits += 1;
                        continue;
                    }
                }
                if let Some(prog) = &self.progressive {
                    let hit = if has_mask {
                        mask[slot]
                    } else {
                        progressive_contains(&prog.get(id), p)
                    };
                    if hit {
                        stats.filter_hits += 1;
                        result.push(id);
                        continue;
                    }
                }
                stats.exact_tests += 1;
                let t_exact = spans.map(|_| Span::start());
                let hit = region_contains_point(&self.relation.object(id).region, p, &mut q_counts);
                if let Some(t) = t_exact {
                    exact_nanos += t.elapsed_nanos();
                }
                if hit {
                    result.push(id);
                }
            }
            counts.merge(&q_counts);
            out.push((result, stats, q_counts));
        }
        if let (Some(spans), Some(t)) = (spans, t_rest) {
            spans.add(Step::Step3, exact_nanos);
            spans.add(Step::Step2, t.elapsed_nanos().saturating_sub(exact_nanos));
        }
        out
    }

    /// Batched window queries — the window-shaped counterpart of
    /// [`point_query_batch`](SelectionState::point_query_batch), with
    /// the same identical-per-query contract.
    pub fn window_query_batch(
        &self,
        windows: &[Rect],
        counts: &mut OpCounts,
        spans: Option<&StepSpans>,
    ) -> Vec<(Vec<ObjectId>, QueryStats, OpCounts)> {
        let t_probe = spans.map(|_| Span::start());
        let mut all = Vec::new();
        let mut probe_stats = Vec::with_capacity(windows.len());
        self.source
            .window_candidates_batch(windows, &mut all, &mut probe_stats);
        if let (Some(spans), Some(t)) = (spans, t_probe) {
            spans.finish(Step::Step1, t);
        }
        let t_rest = spans.map(|_| Span::start());
        let mer = self.progressive.as_deref().and_then(|p| p.mer_column());
        let mut mask = Vec::new();
        let mut window_ring = Vec::new();
        let mut exact_nanos = 0u64;
        let mut out = Vec::with_capacity(windows.len());
        let mut offset = 0usize;
        for (qi, window) in windows.iter().enumerate() {
            let n = probe_stats[qi].candidates as usize;
            let candidates = &all[offset..offset + n];
            offset += n;
            let mut stats = QueryStats {
                candidates: probe_stats[qi].candidates,
                physical_reads: probe_stats[qi].physical_reads,
                ..QueryStats::default()
            };
            window_ring.clear();
            window_ring.extend_from_slice(&window.corners());
            let has_mask = match mer {
                Some(mers) => {
                    mask.clear();
                    kernels::rects_intersect_query(
                        self.dispatch,
                        mers,
                        candidates,
                        window,
                        &mut mask,
                    );
                    true
                }
                None => false,
            };
            let mut result = Vec::new();
            let mut q_counts = OpCounts::new();
            for (slot, &id) in candidates.iter().enumerate() {
                if let Some(cons) = &self.conservative {
                    if !conservative_intersects_window(&cons.view(id), window, &window_ring) {
                        stats.filter_false_hits += 1;
                        continue;
                    }
                }
                if let Some(prog) = &self.progressive {
                    let hit = if has_mask {
                        mask[slot]
                    } else {
                        progressive_intersects_window(&prog.get(id), window)
                    };
                    if hit {
                        stats.filter_hits += 1;
                        result.push(id);
                        continue;
                    }
                }
                stats.exact_tests += 1;
                let t_exact = spans.map(|_| Span::start());
                let hit =
                    region_intersects_rect(&self.relation.object(id).region, window, &mut q_counts);
                if let Some(t) = t_exact {
                    exact_nanos += t.elapsed_nanos();
                }
                if hit {
                    result.push(id);
                }
            }
            counts.merge(&q_counts);
            out.push((result, stats, q_counts));
        }
        if let (Some(spans), Some(t)) = (spans, t_rest) {
            spans.add(Step::Step3, exact_nanos);
            spans.add(Step::Step2, t.elapsed_nanos().saturating_sub(exact_nanos));
        }
        out
    }

    /// All objects whose region intersects `window` (closed semantics).
    pub fn window_query(&self, window: Rect, counts: &mut OpCounts) -> (Vec<ObjectId>, QueryStats) {
        self.window_query_observed(window, counts, None)
    }

    /// [`window_query`](SelectionState::window_query) with step timing —
    /// same attribution as
    /// [`point_query_observed`](SelectionState::point_query_observed).
    pub fn window_query_observed(
        &self,
        window: Rect,
        counts: &mut OpCounts,
        spans: Option<&StepSpans>,
    ) -> (Vec<ObjectId>, QueryStats) {
        let t_probe = spans.map(|_| Span::start());
        let mut candidates = Vec::new();
        let step1 = self.source.window_candidates(window, &mut candidates);
        if let (Some(spans), Some(t)) = (spans, t_probe) {
            spans.finish(Step::Step1, t);
        }
        let mut stats = QueryStats {
            candidates: step1.candidates,
            physical_reads: step1.physical_reads,
            ..QueryStats::default()
        };
        let window_ring = window.corners().to_vec();
        let t_rest = spans.map(|_| Span::start());
        // Same wide MER probe as the point path, with the window-vs-rect
        // kernel.
        let mer_mask = self.progressive.as_deref().and_then(|prog| {
            prog.mer_column().map(|mers| {
                let mut mask = Vec::new();
                kernels::rects_intersect_query(
                    self.dispatch,
                    mers,
                    &candidates,
                    &window,
                    &mut mask,
                );
                mask
            })
        });
        let mut exact_nanos = 0u64;
        let mut result = Vec::new();
        for (slot, id) in candidates.into_iter().enumerate() {
            if let Some(cons) = &self.conservative {
                if !conservative_intersects_window(&cons.view(id), &window, &window_ring) {
                    stats.filter_false_hits += 1;
                    continue;
                }
            }
            if let Some(prog) = &self.progressive {
                let hit = match &mer_mask {
                    Some(mask) => mask[slot],
                    None => progressive_intersects_window(&prog.get(id), &window),
                };
                if hit {
                    stats.filter_hits += 1;
                    result.push(id);
                    continue;
                }
            }
            stats.exact_tests += 1;
            let t_exact = spans.map(|_| Span::start());
            let hit = region_intersects_rect(&self.relation.object(id).region, &window, counts);
            if let Some(t) = t_exact {
                exact_nanos += t.elapsed_nanos();
            }
            if hit {
                result.push(id);
            }
        }
        if let (Some(spans), Some(t)) = (spans, t_rest) {
            spans.add(Step::Step3, exact_nanos);
            spans.add(Step::Step2, t.elapsed_nanos().saturating_sub(exact_nanos));
        }
        (result, stats)
    }
}

/// A prepared multi-step query processor over one **borrowed** relation.
///
/// Superseded by the resident engine: register the relation once with
/// [`crate::SpatialEngine::register`] and submit
/// [`crate::Request::Point`] / [`crate::Request::Window`] queries (or
/// call the engine's query methods directly) — the engine owns the
/// Step-0 state, shares it across threads and attaches §5 cost estimates.
/// This processor remains as a thin shim over the same execution path
/// and produces byte-identical results.
pub struct QueryProcessor<'a> {
    state: SelectionState<'a>,
}

impl<'a> QueryProcessor<'a> {
    /// Builds the candidate source and the configured approximation
    /// stores.
    #[deprecated(
        since = "0.1.0",
        note = "register the relation on a resident `SpatialEngine` and use its point/window queries (or `Request`/`submit`) instead"
    )]
    pub fn build(relation: &'a Relation, config: &JoinConfig) -> Self {
        QueryProcessor {
            state: SelectionState::build(relation.into(), config),
        }
    }

    /// All objects whose region contains `p` (closed semantics).
    pub fn point_query(&mut self, p: Point, counts: &mut OpCounts) -> (Vec<ObjectId>, QueryStats) {
        self.state.point_query(p, counts)
    }

    /// All objects whose region intersects `window` (closed semantics).
    pub fn window_query(
        &mut self,
        window: Rect,
        counts: &mut OpCounts,
    ) -> (Vec<ObjectId>, QueryStats) {
        self.state.window_query(window, counts)
    }
}

fn progressive_contains(prog: &Progressive, p: Point) -> bool {
    match prog {
        Progressive::Mec(c) => c.contains_point(p),
        Progressive::Mer(r) => r.contains_point(p),
        Progressive::Empty => false,
    }
}

fn progressive_intersects_window(prog: &Progressive, window: &Rect) -> bool {
    match prog {
        Progressive::Mec(c) => c.intersects_rect(window),
        Progressive::Mer(r) => r.intersects(window),
        Progressive::Empty => false,
    }
}

fn conservative_intersects_window(
    cons: &ConsView<'_>,
    window: &Rect,
    window_ring: &[Point],
) -> bool {
    match cons {
        ConsView::Rect(r) => r.intersects(window),
        ConsView::Circle(c) => c.intersects_rect(window),
        ConsView::Ellipse(e) => e.intersects_convex(window_ring),
        ConsView::Convex(ring) => msj_geom::convex_intersect(ring, window_ring),
    }
}

#[cfg(test)]
#[allow(deprecated)] // the shim must stay covered until it is removed
mod tests {
    use super::*;
    use msj_approx::{ConservativeKind, ProgressiveKind};

    fn processor_configs() -> Vec<JoinConfig> {
        use crate::config::Backend;
        vec![
            JoinConfig::version1(),
            JoinConfig::default(),
            JoinConfig {
                conservative: Some(ConservativeKind::ConvexHull),
                progressive: Some(ProgressiveKind::Mec),
                ..JoinConfig::default()
            },
            JoinConfig {
                conservative: Some(ConservativeKind::Mbe),
                progressive: None,
                ..JoinConfig::default()
            },
            JoinConfig {
                backend: Backend::PartitionedSweep {
                    tiles_per_axis: 6,
                    threads: 1,
                },
                ..JoinConfig::default()
            },
        ]
    }

    #[test]
    fn point_query_matches_linear_scan_for_all_configs() {
        let rel = msj_datagen::small_carto(60, 24.0, 17);
        let world = rel.bounding_rect().unwrap();
        for config in processor_configs() {
            let mut proc = QueryProcessor::build(&rel, &config);
            let mut counts = OpCounts::new();
            for i in 0..40 {
                let p = Point::new(
                    world.xmin() + world.width() * (i as f64 * 0.37).fract(),
                    world.ymin() + world.height() * (i as f64 * 0.61).fract(),
                );
                let (mut got, stats) = proc.point_query(p, &mut counts);
                got.sort_unstable();
                let mut expect: Vec<ObjectId> = rel
                    .iter()
                    .filter(|o| o.region.contains_point(p))
                    .map(|o| o.id)
                    .collect();
                expect.sort_unstable();
                assert_eq!(got, expect, "point {p:?} config {config:?}");
                assert_eq!(
                    stats.candidates,
                    stats.filter_false_hits + stats.filter_hits + stats.exact_tests
                );
            }
        }
    }

    #[test]
    fn window_query_matches_linear_scan_for_all_configs() {
        let rel = msj_datagen::small_carto(60, 24.0, 18);
        let world = rel.bounding_rect().unwrap();
        for config in processor_configs() {
            let mut proc = QueryProcessor::build(&rel, &config);
            let mut counts = OpCounts::new();
            for i in 0..25 {
                let cx = world.xmin() + world.width() * (i as f64 * 0.31).fract();
                let cy = world.ymin() + world.height() * (i as f64 * 0.47).fract();
                let side = world.width() * (0.01 + 0.08 * (i as f64 * 0.13).fract());
                let w = Rect::from_bounds(cx, cy, cx + side, cy + side);
                let (mut got, _) = proc.window_query(w, &mut counts);
                got.sort_unstable();
                let mut expect: Vec<ObjectId> = rel
                    .iter()
                    .filter(|o| msj_exact::window::region_intersects_rect_reference(&o.region, &w))
                    .map(|o| o.id)
                    .collect();
                expect.sort_unstable();
                assert_eq!(got, expect, "window {w:?} config {config:?}");
            }
        }
    }

    #[test]
    fn batched_queries_match_serial_per_query_for_all_configs() {
        let rel = msj_datagen::small_carto(60, 24.0, 21);
        let world = rel.bounding_rect().unwrap();
        let points: Vec<Point> = (0..24)
            .map(|i| {
                Point::new(
                    world.xmin() + world.width() * (i as f64 * 0.37).fract(),
                    world.ymin() + world.height() * (i as f64 * 0.61).fract(),
                )
            })
            .collect();
        let windows: Vec<Rect> = (0..16)
            .map(|i| {
                let cx = world.xmin() + world.width() * (i as f64 * 0.31).fract();
                let cy = world.ymin() + world.height() * (i as f64 * 0.47).fract();
                let side = world.width() * (0.01 + 0.08 * (i as f64 * 0.13).fract());
                Rect::from_bounds(cx, cy, cx + side, cy + side)
            })
            .collect();
        for config in processor_configs() {
            let state = SelectionState::build((&rel).into(), &config);
            let mut counts = OpCounts::new();
            let batched = state.point_query_batch(&points, &mut counts, None);
            assert_eq!(batched.len(), points.len());
            for (i, &p) in points.iter().enumerate() {
                let mut serial_ops = OpCounts::new();
                let (ids, stats) = state.point_query(p, &mut serial_ops);
                assert_eq!(batched[i].0, ids, "point {p:?} config {config:?}");
                // Everything but the buffer-warmth-dependent physical
                // reads must agree exactly.
                assert_eq!(batched[i].1.candidates, stats.candidates);
                assert_eq!(batched[i].1.filter_false_hits, stats.filter_false_hits);
                assert_eq!(batched[i].1.filter_hits, stats.filter_hits);
                assert_eq!(batched[i].1.exact_tests, stats.exact_tests);
                assert_eq!(batched[i].2, serial_ops);
            }
            let batched = state.window_query_batch(&windows, &mut counts, None);
            assert_eq!(batched.len(), windows.len());
            for (i, w) in windows.iter().enumerate() {
                let mut serial_ops = OpCounts::new();
                let (ids, stats) = state.window_query(*w, &mut serial_ops);
                assert_eq!(batched[i].0, ids, "window {w:?} config {config:?}");
                assert_eq!(batched[i].1.candidates, stats.candidates);
                assert_eq!(batched[i].1.filter_false_hits, stats.filter_false_hits);
                assert_eq!(batched[i].1.filter_hits, stats.filter_hits);
                assert_eq!(batched[i].1.exact_tests, stats.exact_tests);
                assert_eq!(batched[i].2, serial_ops);
            }
        }
    }

    #[test]
    fn filter_reduces_exact_tests_for_point_queries() {
        let rel = msj_datagen::small_carto(80, 30.0, 19);
        let world = rel.bounding_rect().unwrap();
        let mut with_filter = QueryProcessor::build(&rel, &JoinConfig::default());
        let mut without = QueryProcessor::build(&rel, &JoinConfig::version1());
        let mut c1 = OpCounts::new();
        let mut c2 = OpCounts::new();
        let mut exact_with = 0;
        let mut exact_without = 0;
        for i in 0..60 {
            let p = Point::new(
                world.xmin() + world.width() * (i as f64 * 0.17).fract(),
                world.ymin() + world.height() * (i as f64 * 0.29).fract(),
            );
            exact_with += with_filter.point_query(p, &mut c1).1.exact_tests;
            exact_without += without.point_query(p, &mut c2).1.exact_tests;
        }
        assert!(
            exact_with < exact_without,
            "filter should cut exact point tests: {exact_with} vs {exact_without}"
        );
    }
}

//! The §5 total-cost model behind Figures 11 and 18.
//!
//! The paper converts measured counts into time with fixed constants:
//! a page access costs 10 ms; the exact investigation of one candidate
//! pair costs 25 ms with the plane sweep and 1 ms with the TR*-tree
//! (averages from §4.3); the TR*-tree representation inflates object
//! fetches by 1.5×; and — "very cautiously" — every pair the geometric
//! filter identifies saves exactly one object page access.

use crate::stats::MultiStepStats;

/// The §5 cost constants, plus the *a-priori* filter-yield assumptions
/// the model falls back on before a join has been observed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModelParams {
    /// Cost of one page access in milliseconds.
    pub page_access_ms: f64,
    /// Exact test cost per candidate pair, plane sweep (ms).
    pub sweep_exact_ms: f64,
    /// Exact test cost per candidate pair, TR*-tree (ms).
    pub trstar_exact_ms: f64,
    /// Object-access inflation of the TR*-tree representation.
    pub trstar_access_factor: f64,
    /// Fraction of MBR-join candidates the geometric filter is *expected*
    /// to classify (Figure 12 reports 46 % for BW A with 5-C + MER).
    /// Compared against the measured [`MultiStepStats::identified_fraction`]
    /// in [`CostBreakdown::filter_yield_estimated`] /
    /// [`CostBreakdown::filter_yield_observed`].
    pub expected_filter_yield: f64,
    /// Fraction of candidates the Step-2a raster stage is *expected* to
    /// decide on its own (the PR-4 auto-sized grid measured ~40 % on the
    /// skewed cartographic workload). The measured
    /// [`MultiStepStats::raster_decided_fraction`] feeds back as
    /// [`CostBreakdown::raster_decided_observed`].
    pub expected_raster_decided: f64,
}

impl Default for CostModelParams {
    fn default() -> Self {
        CostModelParams {
            page_access_ms: 10.0,
            sweep_exact_ms: 25.0,
            trstar_exact_ms: 1.0,
            trstar_access_factor: 1.5,
            expected_filter_yield: 0.46,
            expected_raster_decided: 0.40,
        }
    }
}

/// Stacked cost of one join configuration (one bar of Figure 18),
/// in seconds — plus the estimated-vs-observed filter yield so the model
/// reports how its assumptions compared to the measured run (the PR-4
/// follow-up: the Step-2a decided rate feeds back as an observed
/// parameter).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostBreakdown {
    /// MBR-join page accesses.
    pub mbr_join_s: f64,
    /// Fetching exact object representations for unidentified pairs.
    pub object_access_s: f64,
    /// Exact intersection tests.
    pub exact_test_s: f64,
    /// The filter yield the §5 model assumed a priori
    /// ([`CostModelParams::expected_filter_yield`]).
    pub filter_yield_estimated: f64,
    /// The measured yield of this run
    /// ([`MultiStepStats::identified_fraction`]).
    pub filter_yield_observed: f64,
    /// The measured Step-2a decided fraction of this run
    /// ([`MultiStepStats::raster_decided_fraction`]); compare against
    /// [`CostModelParams::expected_raster_decided`].
    pub raster_decided_observed: f64,
}

impl CostBreakdown {
    pub fn total_s(&self) -> f64 {
        self.mbr_join_s + self.object_access_s + self.exact_test_s
    }
}

/// Which exact step the cost model assumes (§5 only compares these two).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExactCostKind {
    PlaneSweep,
    TrStar,
}

/// Evaluates the §5 model for a measured join run.
pub fn figure18_cost(
    stats: &MultiStepStats,
    exact: ExactCostKind,
    params: &CostModelParams,
) -> CostBreakdown {
    let access_factor = match exact {
        ExactCostKind::PlaneSweep => 1.0,
        ExactCostKind::TrStar => params.trstar_access_factor,
    };
    let per_pair_ms = match exact {
        ExactCostKind::PlaneSweep => params.sweep_exact_ms,
        ExactCostKind::TrStar => params.trstar_exact_ms,
    };
    let unidentified = stats.unidentified() as f64;
    CostBreakdown {
        mbr_join_s: stats.mbr_join.io.physical as f64 * params.page_access_ms / 1000.0,
        object_access_s: unidentified * params.page_access_ms * access_factor / 1000.0,
        exact_test_s: unidentified * per_pair_ms / 1000.0,
        filter_yield_estimated: params.expected_filter_yield,
        filter_yield_observed: stats.identified_fraction(),
        raster_decided_observed: stats.raster_decided_fraction(),
    }
}

/// The §5 model evaluated at the *assumed* yields — the admission-time
/// estimate for a join whose statistics have not been observed yet: the
/// expected identified fraction saves that share of object accesses and
/// exact tests among `candidates`.
pub fn estimate_cost(
    candidates: u64,
    join_pages: u64,
    exact: ExactCostKind,
    params: &CostModelParams,
) -> CostBreakdown {
    let access_factor = match exact {
        ExactCostKind::PlaneSweep => 1.0,
        ExactCostKind::TrStar => params.trstar_access_factor,
    };
    let per_pair_ms = match exact {
        ExactCostKind::PlaneSweep => params.sweep_exact_ms,
        ExactCostKind::TrStar => params.trstar_exact_ms,
    };
    let unidentified = candidates as f64 * (1.0 - params.expected_filter_yield).max(0.0);
    CostBreakdown {
        mbr_join_s: join_pages as f64 * params.page_access_ms / 1000.0,
        object_access_s: unidentified * params.page_access_ms * access_factor / 1000.0,
        exact_test_s: unidentified * per_pair_ms / 1000.0,
        filter_yield_estimated: params.expected_filter_yield,
        filter_yield_observed: 0.0,
        raster_decided_observed: 0.0,
    }
}

/// The Figure 11 loss/gain accounting for storing approximations:
/// `loss` = extra MBR-join page accesses caused by the larger entries,
/// `gain` = pairs identified by the filter × one page access each.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossGain {
    /// Additional MBR-join page accesses (approximation layout vs
    /// baseline layout).
    pub loss_pages: i64,
    /// Page accesses saved by filter-identified pairs.
    pub gain_pages: i64,
}

impl LossGain {
    /// Net saved page accesses (positive = the approximations pay off).
    pub fn total_pages(&self) -> i64 {
        self.gain_pages - self.loss_pages
    }
}

/// Computes Figure 11's loss/gain from a baseline run (MBR only) and an
/// approximation run (same data, approximations stored and used).
pub fn figure11_loss_gain(baseline: &MultiStepStats, with_approx: &MultiStepStats) -> LossGain {
    LossGain {
        loss_pages: with_approx.mbr_join.io.physical as i64 - baseline.mbr_join.io.physical as i64,
        gain_pages: with_approx.identified() as i64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(candidates: u64, identified: u64, join_pages: u64) -> MultiStepStats {
        let mut s = MultiStepStats::default();
        s.mbr_join.candidates = candidates;
        s.mbr_join.io.physical = join_pages;
        s.mbr_join.io.logical = join_pages * 2;
        s.filter_false_hits = identified / 2;
        s.filter_hits_progressive = identified - identified / 2;
        s.exact_tests = candidates - identified;
        s.exact_hits = (candidates - identified) / 2;
        s.result_pairs = s.filter_hits_progressive + s.exact_hits;
        s
    }

    #[test]
    fn version1_style_cost_dominated_by_exact_step() {
        // No filtering: 1000 candidates all reach the sweep.
        let s = stats(1000, 0, 100);
        let c = figure18_cost(&s, ExactCostKind::PlaneSweep, &CostModelParams::default());
        assert!((c.mbr_join_s - 1.0).abs() < 1e-12); // 100 × 10 ms
        assert!((c.object_access_s - 10.0).abs() < 1e-12); // 1000 × 10 ms
        assert!((c.exact_test_s - 25.0).abs() < 1e-12); // 1000 × 25 ms
        assert!((c.total_s() - 36.0).abs() < 1e-12);
    }

    #[test]
    fn trstar_shrinks_exact_but_inflates_access() {
        let s = stats(1000, 0, 100);
        let sweep = figure18_cost(&s, ExactCostKind::PlaneSweep, &CostModelParams::default());
        let trstar = figure18_cost(&s, ExactCostKind::TrStar, &CostModelParams::default());
        assert!(trstar.exact_test_s < sweep.exact_test_s / 10.0);
        assert!(trstar.object_access_s > sweep.object_access_s);
        assert!(trstar.total_s() < sweep.total_s());
    }

    #[test]
    fn filtering_reduces_both_access_and_exact_cost() {
        let unfiltered = stats(1000, 0, 100);
        let filtered = stats(1000, 460, 110); // slightly more join pages
        let c0 = figure18_cost(
            &unfiltered,
            ExactCostKind::PlaneSweep,
            &CostModelParams::default(),
        );
        let c1 = figure18_cost(
            &filtered,
            ExactCostKind::PlaneSweep,
            &CostModelParams::default(),
        );
        assert!(c1.object_access_s < c0.object_access_s);
        assert!(c1.exact_test_s < c0.exact_test_s);
        assert!(c1.mbr_join_s > c0.mbr_join_s);
        assert!(c1.total_s() < c0.total_s());
    }

    #[test]
    fn observed_yield_feeds_back_into_the_breakdown() {
        let mut s = stats(1000, 460, 100);
        s.raster_hits = 150;
        s.raster_drops = 100;
        // Keep the identity candidates = identified + exact_tests.
        s.filter_false_hits = 110;
        s.filter_hits_progressive = 100;
        let params = CostModelParams::default();
        let c = figure18_cost(&s, ExactCostKind::TrStar, &params);
        assert_eq!(c.filter_yield_estimated, params.expected_filter_yield);
        assert!((c.filter_yield_observed - s.identified_fraction()).abs() < 1e-12);
        assert!((c.raster_decided_observed - 0.25).abs() < 1e-12);
        // The a-priori estimate uses the assumed yield and reports no
        // observation.
        let e = estimate_cost(1000, 100, ExactCostKind::TrStar, &params);
        assert_eq!(e.filter_yield_observed, 0.0);
        assert_eq!(e.raster_decided_observed, 0.0);
        let unidentified = 1000.0 * (1.0 - params.expected_filter_yield);
        assert!(
            (e.object_access_s - unidentified * 10.0 * 1.5 / 1000.0).abs() < 1e-12,
            "estimate applies the assumed yield"
        );
    }

    #[test]
    fn loss_gain_accounting() {
        let baseline = stats(1000, 0, 100);
        let with_approx = stats(1000, 460, 120);
        let lg = figure11_loss_gain(&baseline, &with_approx);
        assert_eq!(lg.loss_pages, 20);
        assert_eq!(lg.gain_pages, 460);
        assert_eq!(lg.total_pages(), 440);
    }
}

//! The execution engine: **one** driver for the multi-step join,
//! parameterized by an [`Execution`] policy.
//!
//! Before this engine existed the workspace had two divergent executors —
//! a serial streaming pipeline and a `parallel_join` that materialized
//! the *entire* candidate set into a `Vec` before fanning Steps 2–3 out
//! (a full barrier, paying memory proportional to the candidate count).
//! The engine replaces both:
//!
//! * [`Execution::Serial`] — one sink on the calling thread; candidates
//!   stream through filter + exact immediately, in Step-1 order.
//! * [`Execution::Fused`] — Steps 2–3 run *inside* the Step-1 workers
//!   (Tsitsigkos & Mamoulis 2019): each worker thread attaches its own
//!   [`PairSink`] and classifies every candidate the moment it is swept.
//!   No candidate set is ever materialized; the partitioned backend
//!   buffers nothing at all, and the R*-traversal backend buffers at most
//!   a few bounded chunks in flight
//!   ([`MultiStepStats::peak_buffered_candidates`] reports the observed
//!   peak).
//!
//! Both policies produce the identical response set and *exactly* merged
//! operation counts — every counter is a commutative sum over per-worker
//! partials, and the fused response set is canonically sorted — so the
//! property tests can assert `Fused == Serial` bit for bit. Pick
//! `Serial` when Step-1 order matters (debugging, streaming consumers)
//! or the workload is tiny; pick `Fused` on multi-core hardware.

use crate::candidates;
use crate::config::JoinConfig;
use crate::filter::{FilterOutcome, GeometricFilter};
use crate::pipeline::JoinResult;
use crate::stats::MultiStepStats;
use msj_exact::ExactProcessor;
use msj_fault::{FaultAction, FaultSession};
use msj_geom::{
    panic_message, resolve_threads, CancelReason, CancelToken, ObjectId, PairConsumer, PairSink,
    Relation, WorkerPanic,
};
use msj_obs::{ObsConfig, Span, Step, StepSpans, WorkerLane, WorkerTelemetry};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How the engine schedules Steps 2–3 relative to Step 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Execution {
    /// Stream every candidate through filter + exact on the calling
    /// thread, in Step-1 delivery order. Response pairs keep that order.
    #[default]
    Serial,
    /// Run filter + exact inside the Step-1 workers: `threads` worker
    /// sinks (`0` = available parallelism), each classifying its own
    /// candidate stream. The response set is canonically sorted and
    /// byte-identical to `Serial`'s (after sorting), with exactly-merged
    /// operation counts.
    Fused {
        /// Downstream worker count (0 = available parallelism). The
        /// partitioned backend clamps to its tile count — a tile is the
        /// unit of work.
        threads: usize,
    },
}

impl Execution {
    /// Fused execution sized for the machine.
    pub fn fused_auto() -> Self {
        Execution::Fused { threads: 0 }
    }
}

// The engine shares the filter and the exact processor read-only across
// all worker threads; per-worker mutability is confined to each sink's
// own `OpCounts`/counters. Keep that property explicit:
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<GeometricFilter>();
    assert_sync::<ExactProcessor<'static>>();
};

/// One worker's accumulated output: its response pairs plus the Step-2/3
/// counters (including its private `exact_ops`).
type Partial = (Vec<(ObjectId, ObjectId)>, MultiStepStats);

/// Why a controlled run ([`ScopedPreparedJoin::try_run_with`]) failed.
/// The engine maps this onto its public [`crate::EngineError`] variants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum RunError {
    /// The run's cancel token read cancelled (explicitly or because its
    /// deadline expired); the run stopped at a batch boundary.
    Cancelled {
        /// Why the token tripped.
        reason: CancelReason,
        /// Wall-clock since the token was armed.
        elapsed: Duration,
        /// Step-1 candidates delivered before the stop.
        partial_candidates: u64,
    },
    /// A worker thread (or the calling thread's fused sink) panicked;
    /// the panic was contained at the run boundary.
    Panicked {
        /// Attach-order index of the panicking worker.
        worker: usize,
        /// The panic payload, rendered.
        message: String,
    },
}

/// The engine's pair consumer: every attached sink classifies candidates
/// through the shared filter and exact processor, accumulating into
/// worker-local state that is published on detach (sink drop).
struct FusedConsumer<'a> {
    filter: &'a GeometricFilter,
    exact: &'a ExactProcessor<'a>,
    partials: Mutex<Vec<Partial>>,
    /// Shared per-step wall-clock accumulators of the run (every sink
    /// adds its filter/exact time; relaxed atomics, no contention).
    spans: &'a StepSpans,
    /// Per-worker lanes; `None` when observability is disabled.
    telemetry: Option<&'a WorkerTelemetry>,
    /// Whether sinks read the clock at all
    /// ([`msj_obs::ObsConfig::enabled`]).
    timed: bool,
    /// The run's cooperative cancel token; sinks poll it once per batch
    /// and drop further candidates once it reads cancelled.
    cancel: Option<&'a CancelToken>,
    /// The run's armed fault plan (inert in production); sinks offer it
    /// every batch boundary as an injection site.
    fault: &'a FaultSession,
    /// Requested downstream worker count (the fault plan derives its
    /// target worker modulo this).
    workers: usize,
    /// Attach-order counter — gives every sink a stable worker index
    /// even when telemetry is off.
    attached: AtomicUsize,
}

impl<'a> FusedConsumer<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        filter: &'a GeometricFilter,
        exact: &'a ExactProcessor<'a>,
        spans: &'a StepSpans,
        telemetry: Option<&'a WorkerTelemetry>,
        timed: bool,
        cancel: Option<&'a CancelToken>,
        fault: &'a FaultSession,
        workers: usize,
    ) -> Self {
        FusedConsumer {
            filter,
            exact,
            partials: Mutex::new(Vec::new()),
            spans,
            telemetry,
            timed,
            cancel,
            fault,
            workers,
            attached: AtomicUsize::new(0),
        }
    }

    fn into_partials(self) -> Vec<Partial> {
        // A sink that panicked mid-batch still published its partial on
        // drop but poisoned the mutex doing so; the data is a plain
        // commutative accumulator, so recover it rather than propagate.
        self.partials
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl PairConsumer for FusedConsumer<'_> {
    fn attach(&self) -> Box<dyn PairSink + '_> {
        Box::new(FusedSink {
            owner: self,
            worker: self.attached.fetch_add(1, Ordering::Relaxed),
            lane: self.telemetry.map(|t| t.attach_consumer()),
            pairs: Vec::new(),
            stats: MultiStepStats::default(),
            outcomes: Vec::new(),
        })
    }
}

/// One worker's sink: Steps 2–3 fused into the candidate stream.
struct FusedSink<'a> {
    owner: &'a FusedConsumer<'a>,
    /// This sink's attach-order worker index (fault-targeting and panic
    /// attribution).
    worker: usize,
    /// This sink's consumer-side telemetry lane (attach order).
    lane: Option<&'a WorkerLane>,
    pairs: Vec<(ObjectId, ObjectId)>,
    stats: MultiStepStats,
    /// Scratch for batched classification (reused across batches).
    outcomes: Vec<FilterOutcome>,
}

impl FusedSink<'_> {
    /// Applies one classified outcome: Step-2 bookkeeping, and the Step-3
    /// exact test for the inconclusive pairs.
    #[inline]
    fn apply(&mut self, id_a: ObjectId, id_b: ObjectId, outcome: FilterOutcome) {
        match outcome {
            FilterOutcome::HitRaster => {
                self.stats.raster_hits += 1;
                self.pairs.push((id_a, id_b));
            }
            FilterOutcome::DropRaster => self.stats.raster_drops += 1,
            FilterOutcome::FalseHit => self.stats.filter_false_hits += 1,
            FilterOutcome::HitProgressive => {
                self.stats.filter_hits_progressive += 1;
                self.pairs.push((id_a, id_b));
            }
            FilterOutcome::HitFalseArea => {
                self.stats.filter_hits_false_area += 1;
                self.pairs.push((id_a, id_b));
            }
            FilterOutcome::Candidate => {
                self.stats.exact_tests += 1;
                if self
                    .owner
                    .exact
                    .intersects(id_a, id_b, &mut self.stats.exact_ops)
                {
                    self.stats.exact_hits += 1;
                    self.pairs.push((id_a, id_b));
                }
            }
        }
    }

    /// Applies a classified batch: Step-2/2a counter bookkeeping plus
    /// the Step-3 exact tests — identical work whether timed or not.
    fn apply_batch(&mut self, batch: &[(ObjectId, ObjectId)], outcomes: &[FilterOutcome]) {
        let raster_decided_before = self.stats.raster_hits + self.stats.raster_drops;
        for (&(id_a, id_b), &outcome) in batch.iter().zip(outcomes) {
            self.apply(id_a, id_b, outcome);
        }
        if self.owner.filter.raster_active() {
            let decided = self.stats.raster_hits + self.stats.raster_drops;
            self.stats.raster_inconclusive +=
                batch.len() as u64 - (decided - raster_decided_before);
        }
    }
}

impl PairSink for FusedSink<'_> {
    fn pair(&mut self, id_a: ObjectId, id_b: ObjectId) {
        // Cold path: every production backend batches (the per-pair
        // timing overhead here is acceptable because this is rare).
        self.consume_batch(&[(id_a, id_b)]);
    }

    fn consume_batch(&mut self, batch: &[(ObjectId, ObjectId)]) {
        // Batch boundary: the one injection site and cancellation point
        // shared by every execution policy and backend — a disabled
        // plan costs a single never-taken branch here.
        if self.owner.fault.armed() {
            match self.owner.fault.on_batch(self.worker, self.owner.workers) {
                FaultAction::Proceed => {}
                FaultAction::Panic => std::panic::panic_any(WorkerPanic {
                    worker: self.worker,
                    message: self.owner.fault.panic_message(),
                }),
                FaultAction::Sleep(stall) => std::thread::sleep(stall),
                FaultAction::Cancel => {
                    if let Some(token) = self.owner.cancel {
                        token.cancel();
                    }
                }
            }
        }
        if self.owner.cancel.is_some_and(|c| c.is_cancelled()) {
            // The run is tearing down: drop the batch unprocessed. The
            // Step-1 backend stops producing at its own next boundary.
            return;
        }
        if let Some(lane) = self.lane {
            lane.add_pairs(batch.len() as u64);
            lane.inc_batches();
            lane.record_buffered(batch.len() as u64);
        }
        let mut outcomes = std::mem::take(&mut self.outcomes);
        let spans = self.owner.spans;
        if self.owner.timed {
            // Step 2, batch-wide: one compiled-plan dispatch for the run
            // (the raster prepass reports its own share of the time into
            // the Step-2a span; Step 2 covers it).
            let t_filter = Span::start();
            self.owner
                .filter
                .classify_batch_observed(batch, &mut outcomes, Some(spans));
            spans.finish(Step::Step2, t_filter);
            // Step 3 (plus cheap bookkeeping) for the whole batch.
            let t_exact = Span::start();
            self.apply_batch(batch, &outcomes);
            spans.finish(Step::Step3, t_exact);
        } else {
            // Observability off: the identical work, zero clock reads.
            self.owner
                .filter
                .classify_batch_observed(batch, &mut outcomes, None);
            self.apply_batch(batch, &outcomes);
        }
        self.outcomes = outcomes;
    }
}

impl Drop for FusedSink<'_> {
    fn drop(&mut self) {
        let partial = (std::mem::take(&mut self.pairs), self.stats);
        // Runs during unwind too (a panicking worker detaches its sink):
        // never double-panic on a mutex another panicking worker
        // poisoned — the partials are commutative sums, safe to recover.
        self.owner
            .partials
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(partial);
    }
}

/// A join with Step 0 (preprocessing, the paper's "insertion time") done:
/// the Step-1 candidate source, the approximation stores and the
/// exact-step object representations are built, and Steps 1–3 can run —
/// repeatedly, under any [`Execution`] policy — without paying that cost
/// again. Built by [`crate::MultiStepJoin::prepare`] (borrowed, scoped to
/// the relations) or assembled by the resident engine from `Arc`-shared
/// Step-0 state (`ScopedPreparedJoin<'static>`, the payload of the owned
/// [`crate::PreparedJoin`]).
///
/// Every run takes `&self` — per-run mutability lives inside the
/// candidate source — so a prepared join can serve concurrent callers.
/// Re-running is deterministic in everything but the R*-traversal's
/// simulated I/O counters (its LRU buffer stays warm across runs, so
/// later runs report fewer physical reads).
pub struct ScopedPreparedJoin<'a> {
    execution: Execution,
    source: Box<dyn candidates::CandidateSource + 'a>,
    filter: GeometricFilter,
    exact: ExactProcessor<'a>,
    /// Step-0 wall-clock, attached to every run's statistics.
    step0_nanos: u64,
    /// Whether runs read clocks and collect worker telemetry.
    obs: ObsConfig,
}

impl<'a> ScopedPreparedJoin<'a> {
    /// Assembles a prepared join from already-built components (the
    /// resident engine's path — Step 0 ran at dataset registration).
    pub(crate) fn from_parts(
        execution: Execution,
        source: Box<dyn candidates::CandidateSource + 'a>,
        filter: GeometricFilter,
        exact: ExactProcessor<'a>,
        step0_nanos: u64,
        obs: ObsConfig,
    ) -> Self {
        ScopedPreparedJoin {
            execution,
            source,
            filter,
            exact,
            step0_nanos,
            obs,
        }
    }

    /// The execution policy configured at preparation.
    pub fn execution(&self) -> Execution {
        self.execution
    }

    /// Runs Steps 1–3 under the policy configured at preparation.
    pub fn run(&self) -> JoinResult {
        self.run_with(self.execution)
    }

    /// Runs Steps 1–3 under an explicit policy (the preparation is
    /// policy-independent).
    pub fn run_with(&self, execution: Execution) -> JoinResult {
        let fault = FaultSession::inert();
        self.run_controlled(execution, None, &fault)
    }

    /// [`run_with`](Self::run_with) that can fail: the run polls `cancel`
    /// at every batch boundary, offers `fault` every batch as an
    /// injection site, and catches worker panics at the join boundary —
    /// a panicking worker yields [`RunError::Panicked`] instead of
    /// unwinding through the caller, leaving the prepared join reusable.
    pub(crate) fn try_run_with(
        &self,
        execution: Execution,
        cancel: Option<&CancelToken>,
        fault: &FaultSession,
    ) -> Result<JoinResult, RunError> {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.run_controlled(execution, cancel, fault)
        }));
        let result = match outcome {
            Ok(result) => result,
            Err(payload) => {
                let panic = match payload.downcast::<WorkerPanic>() {
                    Ok(panic) => *panic,
                    Err(payload) => WorkerPanic {
                        worker: 0,
                        message: panic_message(payload.as_ref()),
                    },
                };
                return Err(RunError::Panicked {
                    worker: panic.worker,
                    message: panic.message,
                });
            }
        };
        if let Some(token) = cancel {
            if let Some(reason) = token.reason() {
                return Err(RunError::Cancelled {
                    reason,
                    elapsed: token.elapsed(),
                    partial_candidates: result.stats.mbr_join.candidates,
                });
            }
        }
        Ok(result)
    }

    fn run_controlled(
        &self,
        execution: Execution,
        cancel: Option<&CancelToken>,
        fault: &FaultSession,
    ) -> JoinResult {
        let (workers, fused) = match execution {
            Execution::Serial => (1, false),
            Execution::Fused { threads } => (resolve_threads(threads), true),
        };

        // Steps 1–3: the backend feeds candidates to one sink per
        // worker; every sink runs filter + exact immediately. With
        // observability disabled the spans stay zero and no clock is
        // ever read — the telemetry lanes are never allocated either.
        let spans = StepSpans::new();
        let telemetry = self.obs.enabled.then(|| WorkerTelemetry::new(workers));
        let consumer = FusedConsumer::new(
            &self.filter,
            &self.exact,
            &spans,
            telemetry.as_ref(),
            self.obs.enabled,
            cancel,
            fault,
            workers,
        );
        let t_run = self.obs.enabled.then(Span::start);
        let step1 =
            self.source
                .join_candidates_controlled(&consumer, workers, telemetry.as_ref(), cancel);

        // Deterministic merge: all counters are commutative sums, so the
        // worker completion order cannot influence the totals.
        let mut stats = MultiStepStats {
            mbr_join: step1.join,
            partition: step1.partition,
            peak_buffered_candidates: step1.peak_buffered,
            ..MultiStepStats::default()
        };
        let mut pairs: Vec<(ObjectId, ObjectId)> = Vec::new();
        for (p, s) in consumer.into_partials() {
            if pairs.is_empty() {
                // Move the first worker's output — on the serial path
                // (exactly one partial) this is the whole response set.
                pairs = p;
            } else {
                pairs.extend(p);
            }
            stats.raster_hits += s.raster_hits;
            stats.raster_drops += s.raster_drops;
            stats.raster_inconclusive += s.raster_inconclusive;
            stats.filter_false_hits += s.filter_false_hits;
            stats.filter_hits_progressive += s.filter_hits_progressive;
            stats.filter_hits_false_area += s.filter_hits_false_area;
            stats.exact_tests += s.exact_tests;
            stats.exact_hits += s.exact_hits;
            stats.exact_ops.merge(&s.exact_ops);
        }
        if fused {
            // Canonical response order, independent of worker
            // interleaving.
            pairs.sort_unstable();
        }
        // Per-step wall-clock attribution: Step-2/2a/3 times are summed
        // across workers in the shared spans; Step 1 is the residual of
        // the Steps-1–3 wall (exact when serial, a lower bound under
        // fused overlap — see the field docs). All zero when
        // observability is disabled.
        stats.step2_nanos = spans.get(Step::Step2);
        stats.step2a_nanos = spans.get(Step::Step2a);
        stats.step3_nanos = spans.get(Step::Step3);
        let steps123 = t_run.map_or(0, |t| t.elapsed_nanos());
        stats.step0_nanos = self.step0_nanos;
        stats.step1_nanos = steps123.saturating_sub(stats.step2_nanos + stats.step3_nanos);
        // The largest worker pool that actually ran anywhere in the
        // execution: the engine's own sinks, or the backend's internal
        // tile sweeps when Step 1 parallelized under a serial downstream.
        stats.threads_used = step1
            .workers_fed
            .max(step1.partition.map_or(1, |p| p.threads))
            .max(1);
        stats.result_pairs = pairs.len() as u64;
        JoinResult {
            pairs,
            stats,
            worker_lanes: telemetry.map(|t| t.snapshot()).unwrap_or_default(),
        }
    }
}

/// Builds a [`ScopedPreparedJoin`]: Step 0 for both relations under
/// `config`.
pub(crate) fn prepare<'a>(
    config: &JoinConfig,
    rel_a: &'a Relation,
    rel_b: &'a Relation,
) -> ScopedPreparedJoin<'a> {
    let t_prep = config.obs.enabled.then(Instant::now);
    let source = candidates::join_source(config, rel_a, rel_b);
    let filter = GeometricFilter::from_config(config, rel_a, rel_b);
    let exact = ExactProcessor::new(config.exact, rel_a, rel_b);
    ScopedPreparedJoin {
        execution: config.execution,
        source,
        filter,
        exact,
        step0_nanos: t_prep.map_or(0, |t| t.elapsed().as_nanos() as u64),
        obs: config.obs,
    }
}

/// Runs the full three-step join of `rel_a` with `rel_b` under the
/// configured [`Execution`] policy. The single entry point behind
/// [`crate::MultiStepJoin::execute`] and [`crate::parallel_join`].
pub(crate) fn run_join(config: &JoinConfig, rel_a: &Relation, rel_b: &Relation) -> JoinResult {
    prepare(config, rel_a, rel_b).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Backend;
    use crate::pipeline::MultiStepJoin;

    fn sorted(mut v: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
        v.sort_unstable();
        v
    }

    fn fused(base: JoinConfig, threads: usize) -> JoinConfig {
        JoinConfig {
            execution: Execution::Fused { threads },
            ..base
        }
    }

    #[test]
    fn fused_equals_serial_on_both_backends() {
        let a = msj_datagen::small_carto(40, 24.0, 901);
        let b = msj_datagen::small_carto(40, 24.0, 902);
        for backend in [
            Backend::RStarTraversal,
            Backend::PartitionedSweep {
                tiles_per_axis: 4,
                threads: 2,
            },
        ] {
            let base = JoinConfig {
                backend,
                ..JoinConfig::default()
            };
            let serial = MultiStepJoin::new(base).execute(&a, &b);
            for threads in [1usize, 2, 8] {
                let f = MultiStepJoin::new(fused(base, threads)).execute(&a, &b);
                assert_eq!(
                    sorted(serial.pairs.clone()),
                    f.pairs,
                    "{backend:?} x{threads}"
                );
                assert_eq!(serial.stats.exact_ops, f.stats.exact_ops);
                assert_eq!(serial.stats.exact_tests, f.stats.exact_tests);
                assert_eq!(serial.stats.filter_false_hits, f.stats.filter_false_hits);
            }
        }
    }

    #[test]
    fn fused_reports_actual_worker_count() {
        let a = msj_datagen::small_carto(24, 20.0, 903);
        let b = msj_datagen::small_carto(24, 20.0, 904);
        // R*-traversal: the engine spawns exactly the requested sinks.
        for threads in [1usize, 2, 8] {
            let f = MultiStepJoin::new(fused(JoinConfig::default(), threads)).execute(&a, &b);
            assert_eq!(f.stats.threads_used, threads as u64);
        }
        // Partitioned: clamped to the tile count (1x1 grid → 1 worker).
        let one_tile = JoinConfig {
            backend: Backend::PartitionedSweep {
                tiles_per_axis: 1,
                threads: 1,
            },
            ..JoinConfig::default()
        };
        let f = MultiStepJoin::new(fused(one_tile, 8)).execute(&a, &b);
        assert_eq!(f.stats.threads_used, 1);
    }

    #[test]
    fn serial_reports_backend_internal_threads() {
        // Large enough to clear the partition crate's parallel threshold:
        // the serial pipeline's Step 1 runs internal tile workers, and
        // threads_used must say so.
        let a = msj_datagen::large_relation(3000, 0, 905);
        let b = msj_datagen::large_relation(3000, 1, 905);
        let config = JoinConfig {
            backend: Backend::PartitionedSweep {
                tiles_per_axis: 8,
                threads: 2,
            },
            execution: Execution::Serial,
            ..JoinConfig::default()
        };
        let r = MultiStepJoin::new(config).execute(&a, &b);
        assert_eq!(r.stats.threads_used, 2, "backend tile workers ran");
        // The plain R*-traversal serial pipeline stays single-threaded.
        let r = MultiStepJoin::new(JoinConfig::default()).execute(&a, &b);
        assert_eq!(r.stats.threads_used, 1);
    }

    #[test]
    fn fused_rstar_bounds_the_candidate_buffer() {
        let a = msj_datagen::small_carto(120, 24.0, 906);
        let b = msj_datagen::small_carto(120, 24.0, 907);
        let f = MultiStepJoin::new(fused(JoinConfig::default(), 4)).execute(&a, &b);
        let bound = candidates::fused_buffer_bound(4, JoinConfig::default().batch_pairs);
        assert!(
            f.stats.peak_buffered_candidates <= bound,
            "peak {} exceeds bound {bound}",
            f.stats.peak_buffered_candidates
        );
        // The partitioned backend buffers nothing at all.
        let grid = fused(
            JoinConfig {
                backend: Backend::PartitionedSweep {
                    tiles_per_axis: 4,
                    threads: 2,
                },
                ..JoinConfig::default()
            },
            4,
        );
        let f = MultiStepJoin::new(grid).execute(&a, &b);
        assert_eq!(f.stats.peak_buffered_candidates, 0);
    }

    #[test]
    fn prepared_join_runs_repeatedly_under_any_policy() {
        let a = msj_datagen::small_carto(30, 20.0, 908);
        let b = msj_datagen::small_carto(30, 20.0, 909);
        let join = MultiStepJoin::new(JoinConfig::default());
        let reference = join.execute(&a, &b);
        let prepared = join.prepare(&a, &b);
        let serial = prepared.run();
        assert_eq!(serial.pairs, reference.pairs);
        // Same preparation, different policies: identical response sets.
        for threads in [1usize, 2, 8] {
            let f = prepared.run_with(Execution::Fused { threads });
            assert_eq!(f.pairs, sorted(reference.pairs.clone()), "x{threads}");
            assert_eq!(f.stats.exact_ops, reference.stats.exact_ops);
        }
        // And a repeat serial run still agrees (warm buffer, same set).
        assert_eq!(prepared.run().pairs, reference.pairs);
    }

    #[test]
    fn fused_auto_resolves_to_available_parallelism() {
        assert_eq!(Execution::default(), Execution::Serial);
        let Execution::Fused { threads } = Execution::fused_auto() else {
            panic!("fused_auto must be fused");
        };
        assert_eq!(threads, 0);
    }
}

//! Pluggable Step-1 candidate backends.
//!
//! Step 1 of the multi-step pipeline only has to deliver every pair of
//! objects whose MBRs intersect (for joins) or every object whose MBR
//! meets the query point/window (for selections); *how* the candidates
//! are found is an implementation choice. [`CandidateSource`] abstracts
//! that choice so the pipeline, the parallel executor and the query
//! processor are backend-agnostic:
//!
//! * [`Backend::RStarTraversal`] — the paper's synchronized R*-tree
//!   traversal ([BKS 93a]) with simulated paged I/O, the default;
//! * [`Backend::PartitionedSweep`] — the uniform-grid partitioned join of
//!   `msj-partition` (Tsitsigkos & Mamoulis 2019): per-tile plane sweeps
//!   with reference-point deduplication, executed over scoped threads.
//!
//! Both deliver the identical candidate *set*; downstream filter and
//! exact steps are provably unaffected (the property tests in
//! `tests/backend_agreement.rs` assert it).

use crate::config::{Backend, JoinConfig, TreeLoader, DEFAULT_BATCH_PAIRS};
use msj_geom::{
    CancelToken, FnConsumer, KernelDispatch, ObjectId, PairBatchBuffer, PairConsumer, Point, Rect,
    RelHandle, Relation,
};
use msj_obs::WorkerTelemetry;
use msj_partition::{
    partition_join_cancellable_with, partition_join_workers_observed_with, GridIndex,
    PartitionStats,
};
use msj_sam::{tree_join_chunked_observed_with, JoinStats, LruBuffer, PageLayout, RStarTree};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};

/// Default candidate pairs per batch/chunk
/// ([`crate::config::DEFAULT_BATCH_PAIRS`]; override per join with
/// [`JoinConfig::batch_pairs`]).
pub const FUSED_CHUNK: usize = DEFAULT_BATCH_PAIRS;

/// Bounded-channel depth per downstream worker of the R*-traversal
/// fan-out. Together with the configured batch size this caps the
/// candidates in flight — see [`fused_buffer_bound`].
pub const FUSED_QUEUE_DEPTH: usize = 4;

/// Upper bound on candidates buffered between the R*-traversal and
/// `workers` downstream sinks fed in chunks of `batch` pairs: every
/// worker's queue full, one chunk blocked in `send`, one chunk being
/// filled. The partitioned backend buffers nothing (sweeps feed the
/// sinks directly).
pub const fn fused_buffer_bound(workers: usize, batch: usize) -> u64 {
    (workers * (FUSED_QUEUE_DEPTH + 1) * batch + batch) as u64
}

/// Step-1 statistics, backend detail included.
#[derive(Debug, Clone, Copy, Default)]
pub struct Step1Stats {
    /// The common MBR-join counters (candidates, comparison tests, I/O).
    /// For the partitioned backend, `mbr_tests` counts sweep y-overlap
    /// tests and the I/O counters stay zero (the grid is not paged).
    pub join: JoinStats,
    /// Partition detail when the partitioned backend ran.
    pub partition: Option<PartitionSummary>,
    /// Downstream sinks the backend attached — one per worker thread it
    /// spawned, or 1 when it delivered on the calling thread only (the
    /// partitioned backend spawns none at all for an empty side).
    pub workers_fed: u64,
    /// Peak candidate pairs buffered between Step 1 and the downstream
    /// sinks (0 = fully streamed, as with the partitioned backend; the
    /// R*-traversal fan-out stays under [`fused_buffer_bound`]).
    pub peak_buffered: u64,
}

/// Copyable summary of a [`PartitionStats`] (the full per-tile candidate
/// vector lives on `msj_partition::PartitionStats`; this is the digest
/// that travels inside [`crate::MultiStepStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PartitionSummary {
    /// Tiles per grid side.
    pub tiles_per_axis: u64,
    /// Tiles that emitted at least one candidate.
    pub nonempty_tiles: u64,
    /// Candidates of the busiest tile (skew indicator).
    pub busiest_tile_candidates: u64,
    /// Extra `(rectangle, tile)` assignments created by replication.
    pub replicated_assignments: u64,
    /// Sweep matches suppressed by reference-point deduplication.
    pub dedup_skipped: u64,
    /// Worker threads the tile sweeps ran on.
    pub threads: u64,
    /// Mean tile assignments per input rectangle (1.0 = no replication).
    pub replication_factor: f64,
}

impl From<&PartitionStats> for PartitionSummary {
    fn from(stats: &PartitionStats) -> Self {
        PartitionSummary {
            tiles_per_axis: stats.tiles_per_axis as u64,
            nonempty_tiles: stats.nonempty_tiles() as u64,
            busiest_tile_candidates: stats.busiest_tile().map_or(0, |(_, c)| c),
            replicated_assignments: stats.replicated_a() + stats.replicated_b(),
            dedup_skipped: stats.dedup_skipped,
            threads: stats.threads as u64,
            replication_factor: stats.replication_factor(),
        }
    }
}

/// Step-1 statistics of one selection (point or window) probe.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SelectionStats {
    /// Candidate ids delivered (MBR hits).
    pub candidates: u64,
    /// Physical page reads of the probe (0 for the in-memory grid).
    pub physical_reads: u64,
}

/// A prepared Step-1 backend over one or two relations.
///
/// Join sources are built by [`join_source`] from two relations; query
/// processors build a [`selection_source`] over the queried relation.
///
/// Candidate delivery speaks the parallel-capable
/// [`msj_geom::PairConsumer`] protocol: the backend attaches one
/// [`msj_geom::PairSink`] per worker thread it feeds and streams each
/// worker's candidates into its own sink — which is how the fused
/// execution engine runs filter + exact right where candidates are
/// produced. Callers that just want a single candidate stream on the
/// calling thread use `stream_candidates` (an inherent helper on
/// `dyn CandidateSource`).
///
/// Every method takes `&self`: per-run mutability (the simulated LRU
/// buffer, lazily built grid state) lives behind interior mutability, so
/// a prepared source is resident, `Sync`, and can serve queries from an
/// `Arc`-shared [`crate::PreparedJoin`] without exclusive access.
pub trait CandidateSource: Send + Sync {
    /// The backend's display name (used by reports and benches).
    fn name(&self) -> &'static str;

    /// Delivers every candidate pair `(id_a, id_b)` with intersecting
    /// MBRs, each exactly once, into sinks attached on `consumer`.
    ///
    /// `workers` is the *requested* downstream sink count; backends may
    /// clamp it (the partitioned sweep uses at most one worker per tile)
    /// and report the actual count in [`Step1Stats::workers_fed`]. With
    /// `workers <= 1` exactly one sink is attached on the calling thread
    /// and candidates arrive in the backend's deterministic order; with
    /// more, each backend worker thread attaches its own sink.
    fn join_candidates(&self, consumer: &dyn PairConsumer, workers: usize) -> Step1Stats;

    /// [`join_candidates`](CandidateSource::join_candidates) with
    /// optional per-worker telemetry: when `telemetry` is given, every
    /// backend worker records its pairs/batches/peak into its
    /// [`msj_obs::WorkerLane`]. The default implementation ignores the
    /// telemetry (candidate delivery is identical either way), so
    /// third-party sources keep compiling unchanged.
    fn join_candidates_observed(
        &self,
        consumer: &dyn PairConsumer,
        workers: usize,
        telemetry: Option<&WorkerTelemetry>,
    ) -> Step1Stats {
        let _ = telemetry;
        self.join_candidates(consumer, workers)
    }

    /// [`join_candidates_observed`](CandidateSource::join_candidates_observed)
    /// with an optional cooperative [`CancelToken`]: backends that honor
    /// it stop delivering candidates at their next batch/tile boundary
    /// once the token reads cancelled, reporting the partial counts
    /// accumulated so far. The default implementation ignores the token
    /// (delivery simply runs to completion), so third-party sources keep
    /// compiling unchanged.
    fn join_candidates_controlled(
        &self,
        consumer: &dyn PairConsumer,
        workers: usize,
        telemetry: Option<&WorkerTelemetry>,
        cancel: Option<&CancelToken>,
    ) -> Step1Stats {
        let _ = cancel;
        self.join_candidates_observed(consumer, workers, telemetry)
    }

    /// Appends every id of the primary relation whose MBR contains `p`.
    fn point_candidates(&self, p: Point, out: &mut Vec<ObjectId>) -> SelectionStats;

    /// Appends every id of the primary relation whose MBR intersects
    /// `window`.
    fn window_candidates(&self, window: Rect, out: &mut Vec<ObjectId>) -> SelectionStats;

    /// One shared descent for a *batch* of point probes: candidates of
    /// query `i` are appended to `out` contiguously (segment length =
    /// `stats[i].candidates`), in exactly the order
    /// [`point_candidates`](CandidateSource::point_candidates) would
    /// produce for each query alone. Backends override this to share
    /// per-probe setup (the R*-source holds its simulated-buffer lock
    /// once for the whole batch); the default simply loops.
    fn point_candidates_batch(
        &self,
        points: &[Point],
        out: &mut Vec<ObjectId>,
        stats: &mut Vec<SelectionStats>,
    ) {
        for &p in points {
            stats.push(self.point_candidates(p, out));
        }
    }

    /// Batched counterpart of
    /// [`window_candidates`](CandidateSource::window_candidates) — same
    /// contract as
    /// [`point_candidates_batch`](CandidateSource::point_candidates_batch).
    fn window_candidates_batch(
        &self,
        windows: &[Rect],
        out: &mut Vec<ObjectId>,
        stats: &mut Vec<SelectionStats>,
    ) {
        for &w in windows {
            stats.push(self.window_candidates(w, out));
        }
    }
}

impl dyn CandidateSource + '_ {
    /// Convenience over
    /// [`join_candidates`](CandidateSource::join_candidates): streams
    /// every candidate to one closure on the calling thread.
    pub fn stream_candidates(
        &self,
        sink: &mut (dyn FnMut(ObjectId, ObjectId) + Send),
    ) -> Step1Stats {
        let consumer = FnConsumer::new(sink);
        self.join_candidates(&consumer, 1)
    }
}

/// Pre-built Step-0 artifacts of one registered dataset that the Step-1
/// backends can share instead of rebuilding: the paged R*-tree (`None`
/// when the dataset was registered for a grid backend, which indexes
/// nothing at registration).
#[derive(Clone, Default)]
pub(crate) struct SharedStep1 {
    pub tree: Option<Arc<RStarTree>>,
}

/// Builds the configured backend over a relation pair (Step 1 of a join).
pub fn join_source<'a>(
    config: &JoinConfig,
    rel_a: &'a Relation,
    rel_b: &'a Relation,
) -> Box<dyn CandidateSource + 'a> {
    join_source_with(
        config,
        rel_a.into(),
        rel_b.into(),
        SharedStep1::default(),
        SharedStep1::default(),
    )
}

/// [`join_source`] over explicit handles plus optionally pre-built shared
/// trees (the resident engine's path: Step 0 ran at dataset registration).
pub(crate) fn join_source_with<'a>(
    config: &JoinConfig,
    rel_a: RelHandle<'a>,
    rel_b: RelHandle<'a>,
    shared_a: SharedStep1,
    shared_b: SharedStep1,
) -> Box<dyn CandidateSource + 'a> {
    match config.backend {
        Backend::RStarTraversal => {
            let tree_a = shared_a
                .tree
                .unwrap_or_else(|| Arc::new(build_tree(config, &rel_a)));
            let tree_b = shared_b
                .tree
                .unwrap_or_else(|| Arc::new(build_tree(config, &rel_b)));
            Box::new(RStarSource::new(config, tree_a, Some(tree_b)))
        }
        Backend::PartitionedSweep {
            tiles_per_axis,
            threads,
        } => Box::new(GridSource::new(
            config,
            rel_a,
            Some(rel_b),
            tiles_per_axis,
            threads,
        )),
    }
}

/// Builds the configured backend over one relation (Step 1 of selection
/// queries; a join over this source is a self-join).
pub fn selection_source<'a>(
    config: &JoinConfig,
    relation: &'a Relation,
) -> Box<dyn CandidateSource + 'a> {
    selection_source_with(config, relation.into(), SharedStep1::default())
}

/// [`selection_source`] over an explicit handle plus an optionally
/// pre-built shared tree.
pub(crate) fn selection_source_with<'a>(
    config: &JoinConfig,
    relation: RelHandle<'a>,
    shared: SharedStep1,
) -> Box<dyn CandidateSource + 'a> {
    match config.backend {
        Backend::RStarTraversal => {
            let tree = shared
                .tree
                .unwrap_or_else(|| Arc::new(build_tree(config, &relation)));
            Box::new(RStarSource::new(config, tree, None))
        }
        Backend::PartitionedSweep {
            tiles_per_axis,
            threads,
        } => Box::new(GridSource::new(
            config,
            relation,
            None,
            tiles_per_axis,
            threads,
        )),
    }
}

/// Step 0 for one relation under the configured [`TreeLoader`]: STR bulk
/// loading by default (the whole relation is in hand), incremental R*
/// insertion on request. The engine calls this once per registered
/// dataset; the one-shot paths call it per source.
pub(crate) fn build_tree(config: &JoinConfig, relation: &Relation) -> RStarTree {
    let layout = PageLayout::with_extra_bytes(config.page_size, config.extra_leaf_bytes());
    let keys = relation.iter().map(|o| (o.mbr(), o.id));
    match config.loader {
        TreeLoader::Str => RStarTree::bulk_load(layout, keys),
        TreeLoader::Incremental => RStarTree::insert_all(layout, keys),
    }
}

/// The default backend: paged R*-trees, synchronized traversal, LRU
/// buffer I/O accounting. Trees are `Arc`-shared so registered datasets
/// pay Step 0 once; the simulated I/O buffer is per-source state behind a
/// mutex (locked once per join run / once per selection probe).
struct RStarSource {
    tree_a: Arc<RStarTree>,
    /// `None` for single-relation (selection) sources; joins then run
    /// `tree_a ⋈ tree_a`.
    tree_b: Option<Arc<RStarTree>>,
    buffer: Mutex<LruBuffer>,
    /// Candidate pairs per batched delivery / cross-thread chunk.
    batch: usize,
    /// Kernel path for the traversal's wide scans, resolved once at
    /// source construction.
    dispatch: KernelDispatch,
}

impl RStarSource {
    fn new(config: &JoinConfig, tree_a: Arc<RStarTree>, tree_b: Option<Arc<RStarTree>>) -> Self {
        RStarSource {
            tree_a,
            tree_b,
            buffer: Mutex::new(LruBuffer::with_bytes(config.buffer_bytes, config.page_size)),
            batch: config.batch_pairs.max(1),
            dispatch: config.kernel_dispatch(),
        }
    }
}

impl CandidateSource for RStarSource {
    fn name(&self) -> &'static str {
        "rstar-traversal"
    }

    fn join_candidates(&self, consumer: &dyn PairConsumer, workers: usize) -> Step1Stats {
        self.join_candidates_controlled(consumer, workers, None, None)
    }

    fn join_candidates_observed(
        &self,
        consumer: &dyn PairConsumer,
        workers: usize,
        telemetry: Option<&WorkerTelemetry>,
    ) -> Step1Stats {
        self.join_candidates_controlled(consumer, workers, telemetry, None)
    }

    fn join_candidates_controlled(
        &self,
        consumer: &dyn PairConsumer,
        workers: usize,
        telemetry: Option<&WorkerTelemetry>,
        cancel: Option<&CancelToken>,
    ) -> Step1Stats {
        let tree_a = &*self.tree_a;
        let tree_b = self.tree_b.as_deref().unwrap_or(tree_a);
        let batch = self.batch;
        // The traversal is single-producer: all chunks come off lane 0.
        let lane = telemetry.map(|t| t.backend_lane(0));
        // One lock for the whole traversal: the simulated I/O buffer is
        // inherently serial state. Concurrent runs of a shared prepared
        // join serialize here (Steps 2–3 still parallelize per run).
        // Poison is recovered: a sink panic can unwind through the
        // traversal while this guard is live, and the buffer is only
        // I/O accounting — always safe to reuse.
        let mut buffer = self
            .buffer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let buffer = &mut *buffer;
        if workers <= 1 {
            // Serial: the traversal's chunks double as sink batches — one
            // virtual dispatch (and one batched classification
            // downstream) per `batch` pairs, order unchanged.
            let mut sink = consumer.attach();
            let join = tree_join_chunked_observed_with(
                self.dispatch,
                tree_a,
                tree_b,
                buffer,
                batch,
                lane,
                cancel,
                |chunk| sink.consume_batch(&chunk),
            );
            return Step1Stats {
                join,
                partition: None,
                workers_fed: 1,
                peak_buffered: 0,
            };
        }

        // Fan-out: the traversal is inherently serial (one I/O buffer),
        // so it runs on the calling thread and pushes bounded chunks
        // into one shared queue that `workers` sink threads drain —
        // whichever worker is idle takes the next chunk, so a slow
        // chunk never head-of-line-blocks the others. The chunk size
        // and queue capacity cap the candidates in flight at
        // [`fused_buffer_bound`]; `peak_buffered` records the observed
        // maximum.
        let buffered = AtomicU64::new(0);
        let peak = AtomicU64::new(0);
        let (tx, rx) = mpsc::sync_channel::<Vec<(ObjectId, ObjectId)>>(workers * FUSED_QUEUE_DEPTH);
        // `mpsc::Receiver` is single-consumer; the mutex turns it into a
        // shared work queue (locked per chunk, not per pair). Lock
        // poisoning is ignored deliberately: a panicking worker must not
        // take the queue down with it (see below).
        let rx = Mutex::new(rx);
        let recv = |rx: &Mutex<mpsc::Receiver<Vec<(ObjectId, ObjectId)>>>| {
            rx.lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .recv()
        };
        // First worker panic, parked here until every thread joined.
        // Rethrowing *inside* a scoped thread would make `scope` itself
        // panic with a generic payload, losing the `WorkerPanic` the
        // run boundary downcasts — so workers deposit the payload and
        // the calling thread resumes it after the scope.
        let caught: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let join = std::thread::scope(|scope| {
            for _ in 0..workers {
                let (buffered, rx, recv, caught) = (&buffered, &rx, &recv, &caught);
                scope.spawn(move || {
                    // A panic in the sink (filter/exact code downstream)
                    // must not deadlock: if this worker simply died, the
                    // bounded queue could fill and block the producer
                    // forever inside the scope. So catch the panic, keep
                    // draining the queue so the producer always
                    // finishes, then park the payload for the caller.
                    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let mut sink = consumer.attach();
                        while let Ok(chunk) = recv(rx) {
                            // Chunk boundary == batch boundary: the whole
                            // run crosses one virtual dispatch.
                            sink.consume_batch(&chunk);
                            buffered.fetch_sub(chunk.len() as u64, Ordering::Relaxed);
                        }
                    }));
                    if let Err(panic) = attempt {
                        while let Ok(chunk) = recv(rx) {
                            buffered.fetch_sub(chunk.len() as u64, Ordering::Relaxed);
                        }
                        let mut slot = caught
                            .lock()
                            .unwrap_or_else(|poisoned| poisoned.into_inner());
                        if slot.is_none() {
                            *slot = Some(panic);
                        }
                    }
                });
            }
            let join = tree_join_chunked_observed_with(
                self.dispatch,
                tree_a,
                tree_b,
                buffer,
                batch,
                lane,
                cancel,
                |chunk| {
                    let now = buffered.fetch_add(chunk.len() as u64, Ordering::Relaxed)
                        + chunk.len() as u64;
                    peak.fetch_max(now, Ordering::Relaxed);
                    tx.send(chunk).expect("queue receiver alive");
                },
            );
            drop(tx); // workers drain and exit; the scope joins them
            join
        });
        if let Some(panic) = caught
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
        {
            std::panic::resume_unwind(panic);
        }
        Step1Stats {
            join,
            partition: None,
            workers_fed: workers as u64,
            peak_buffered: peak.load(Ordering::Relaxed),
        }
    }

    fn point_candidates(&self, p: Point, out: &mut Vec<ObjectId>) -> SelectionStats {
        let mut buffer = self
            .buffer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let before = buffer.stats().physical;
        let hits = self.tree_a.point_query(p, &mut buffer);
        let stats = SelectionStats {
            candidates: hits.len() as u64,
            physical_reads: buffer.stats().physical - before,
        };
        out.extend(hits);
        stats
    }

    fn window_candidates(&self, window: Rect, out: &mut Vec<ObjectId>) -> SelectionStats {
        let mut buffer = self
            .buffer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let before = buffer.stats().physical;
        let hits = self.tree_a.window_query(window, &mut buffer);
        let stats = SelectionStats {
            candidates: hits.len() as u64,
            physical_reads: buffer.stats().physical - before,
        };
        out.extend(hits);
        stats
    }

    // The batched probes take the simulated-buffer lock once for the
    // whole batch: concurrent cross-request probes merged by a serving
    // front descend back-to-back over a warm buffer instead of paying a
    // lock handoff (and a likely-evicted root path) per query. Candidate
    // ids and their order are identical to the per-query methods.
    fn point_candidates_batch(
        &self,
        points: &[Point],
        out: &mut Vec<ObjectId>,
        stats: &mut Vec<SelectionStats>,
    ) {
        let mut buffer = self
            .buffer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        for &p in points {
            let before = buffer.stats().physical;
            let hits = self.tree_a.point_query(p, &mut buffer);
            stats.push(SelectionStats {
                candidates: hits.len() as u64,
                physical_reads: buffer.stats().physical - before,
            });
            out.extend(hits);
        }
    }

    fn window_candidates_batch(
        &self,
        windows: &[Rect],
        out: &mut Vec<ObjectId>,
        stats: &mut Vec<SelectionStats>,
    ) {
        let mut buffer = self
            .buffer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        for &w in windows {
            let before = buffer.stats().physical;
            let hits = self.tree_a.window_query(w, &mut buffer);
            stats.push(SelectionStats {
                candidates: hits.len() as u64,
                physical_reads: buffer.stats().physical - before,
            });
            out.extend(hits);
        }
    }
}

/// One relation's `(MBR, id)` list — a side of the partitioned join.
type MbrItems = Vec<(Rect, ObjectId)>;
type MbrItemsSlice<'b> = &'b [(Rect, ObjectId)];

/// The partitioned backend: uniform grid, per-tile plane sweeps,
/// reference-point deduplication, scoped-thread parallelism.
struct GridSource<'a> {
    rel_a: RelHandle<'a>,
    rel_b: Option<RelHandle<'a>>,
    tiles_per_axis: usize,
    threads: usize,
    /// Candidate pairs per batched sink delivery.
    batch: usize,
    /// Kernel path for the tile sweeps, resolved once at source
    /// construction.
    dispatch: KernelDispatch,
    /// Single-relation grid for selection probes, built on first use.
    index: OnceLock<GridIndex>,
    /// `(items_a, items_b)` MBR lists for joins, collected on first use
    /// and reused across repeated `PreparedJoin` runs (`items_b` is
    /// `None` for self-joins — side A doubles as side B).
    join_items: OnceLock<(MbrItems, Option<MbrItems>)>,
}

impl<'a> GridSource<'a> {
    fn new(
        config: &JoinConfig,
        rel_a: RelHandle<'a>,
        rel_b: Option<RelHandle<'a>>,
        tiles_per_axis: usize,
        threads: usize,
    ) -> Self {
        GridSource {
            rel_a,
            rel_b,
            tiles_per_axis,
            threads,
            batch: config.batch_pairs.max(1),
            dispatch: config.kernel_dispatch(),
            index: OnceLock::new(),
            join_items: OnceLock::new(),
        }
    }

    fn items(relation: &Relation) -> Vec<(Rect, ObjectId)> {
        relation.iter().map(|o| (o.mbr(), o.id)).collect()
    }

    fn join_items(&self) -> (MbrItemsSlice<'_>, MbrItemsSlice<'_>) {
        let (a, b) = self.join_items.get_or_init(|| {
            (
                Self::items(&self.rel_a),
                self.rel_b.as_deref().map(Self::items),
            )
        });
        let a: MbrItemsSlice = a;
        (a, b.as_deref().unwrap_or(a))
    }

    fn index(&self) -> &GridIndex {
        self.index
            .get_or_init(|| GridIndex::build(&Self::items(&self.rel_a), self.tiles_per_axis))
    }
}

impl CandidateSource for GridSource<'_> {
    fn name(&self) -> &'static str {
        "partitioned-sweep"
    }

    fn join_candidates(&self, consumer: &dyn PairConsumer, workers: usize) -> Step1Stats {
        self.join_candidates_controlled(consumer, workers, None, None)
    }

    fn join_candidates_observed(
        &self,
        consumer: &dyn PairConsumer,
        workers: usize,
        telemetry: Option<&WorkerTelemetry>,
    ) -> Step1Stats {
        self.join_candidates_controlled(consumer, workers, telemetry, None)
    }

    fn join_candidates_controlled(
        &self,
        consumer: &dyn PairConsumer,
        workers: usize,
        telemetry: Option<&WorkerTelemetry>,
        cancel: Option<&CancelToken>,
    ) -> Step1Stats {
        let (tiles_per_axis, threads, batch) = (self.tiles_per_axis, self.threads, self.batch);
        let (items_a, items_b) = self.join_items();
        let (stats, workers_fed) = if workers <= 1 {
            // Single downstream sink: tile sweeps may still parallelize
            // internally (the backend's own `threads` config) but funnel
            // into the calling thread in deterministic tile order —
            // re-batched caller-side so the sink still sees runs.
            let mut sink = consumer.attach();
            let mut buffer = PairBatchBuffer::new(&mut *sink, batch);
            let stats = partition_join_cancellable_with(
                self.dispatch,
                items_a,
                items_b,
                tiles_per_axis,
                threads,
                cancel,
                |id_a, id_b| buffer.pair(id_a, id_b),
            );
            drop(buffer); // flush the tail before the sink detaches
            if let Some(t) = telemetry {
                // Everything funneled through one caller-side lane, in
                // full batches plus one tail flush.
                let lane = t.backend_lane(0);
                let candidates = stats.candidates();
                lane.add_pairs(candidates);
                lane.add_batches(candidates.div_ceil(batch as u64));
                lane.record_buffered(candidates.min(batch as u64));
            }
            (stats, 1)
        } else {
            // Fused: every tile worker attaches its own sink and sweeps
            // straight into it in tile-boundary-flushed batches — nothing
            // is buffered across threads or funneled.
            let stats = partition_join_workers_observed_with(
                self.dispatch,
                items_a,
                items_b,
                tiles_per_axis,
                workers,
                batch,
                consumer,
                telemetry,
                cancel,
            );
            let fed = stats.threads as u64;
            (stats, fed)
        };
        Step1Stats {
            join: JoinStats {
                candidates: stats.candidates(),
                mbr_tests: stats.pair_tests,
                restriction_tests: 0,
                io: Default::default(),
            },
            partition: Some(PartitionSummary::from(&stats)),
            workers_fed,
            peak_buffered: 0,
        }
    }

    fn point_candidates(&self, p: Point, out: &mut Vec<ObjectId>) -> SelectionStats {
        let before = out.len();
        self.index().point_candidates(p, out);
        SelectionStats {
            candidates: (out.len() - before) as u64,
            physical_reads: 0,
        }
    }

    fn window_candidates(&self, window: Rect, out: &mut Vec<ObjectId>) -> SelectionStats {
        let before = out.len();
        self.index().window_candidates(window, out);
        SelectionStats {
            candidates: (out.len() - before) as u64,
            physical_reads: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted(mut v: Vec<(ObjectId, ObjectId)>) -> Vec<(ObjectId, ObjectId)> {
        v.sort_unstable();
        v
    }

    fn configs() -> [JoinConfig; 3] {
        [
            JoinConfig::default(),
            JoinConfig {
                backend: Backend::PartitionedSweep {
                    tiles_per_axis: 4,
                    threads: 2,
                },
                ..JoinConfig::default()
            },
            JoinConfig {
                backend: Backend::PartitionedSweep {
                    tiles_per_axis: 1,
                    threads: 1,
                },
                ..JoinConfig::default()
            },
        ]
    }

    #[test]
    fn backends_deliver_the_same_join_candidates() {
        let a = msj_datagen::small_carto(40, 24.0, 301);
        let b = msj_datagen::small_carto(40, 24.0, 302);
        let mut reference: Option<Vec<(ObjectId, ObjectId)>> = None;
        for config in configs() {
            let source = join_source(&config, &a, &b);
            let mut got = Vec::new();
            let stats = source.stream_candidates(&mut |x, y| got.push((x, y)));
            assert_eq!(stats.join.candidates, got.len() as u64, "{}", source.name());
            let got = sorted(got);
            match &reference {
                None => reference = Some(got),
                Some(expect) => assert_eq!(&got, expect, "{} diverged", source.name()),
            }
        }
    }

    #[test]
    fn partitioned_source_reports_partition_summary() {
        let a = msj_datagen::small_carto(30, 20.0, 311);
        let b = msj_datagen::small_carto(30, 20.0, 312);
        let config = JoinConfig {
            backend: Backend::PartitionedSweep {
                tiles_per_axis: 4,
                threads: 2,
            },
            ..JoinConfig::default()
        };
        let source = join_source(&config, &a, &b);
        let stats = source.stream_candidates(&mut |_, _| {});
        let summary = stats.partition.expect("partition summary");
        assert_eq!(summary.tiles_per_axis, 4);
        // Tiny input: the sweep may fall back to serial, but never exceeds
        // the requested worker count.
        assert!((1..=2).contains(&summary.threads));
        assert!(summary.replication_factor >= 1.0);
        assert!(summary.busiest_tile_candidates <= stats.join.candidates);
        // The R*-tree backend reports none.
        let rstar = join_source(&JoinConfig::default(), &a, &b);
        assert!(rstar.stream_candidates(&mut |_, _| {}).partition.is_none());
    }

    /// A sink panic (downstream filter/exact code) must propagate out of
    /// the R*-traversal fan-out, not deadlock the producer behind a full
    /// queue.
    #[test]
    #[should_panic]
    fn fused_fanout_propagates_sink_panics() {
        struct Exploding;
        impl PairConsumer for Exploding {
            fn attach(&self) -> Box<dyn msj_geom::PairSink + '_> {
                Box::new(|_: ObjectId, _: ObjectId| panic!("sink exploded"))
            }
        }
        let a = msj_datagen::small_carto(30, 20.0, 341);
        let b = msj_datagen::small_carto(30, 20.0, 342);
        let source = join_source(&JoinConfig::default(), &a, &b);
        source.join_candidates(&Exploding, 2);
    }

    #[test]
    fn selection_probes_agree_across_backends() {
        let rel = msj_datagen::small_carto(50, 24.0, 321);
        let world = rel.bounding_rect().unwrap();
        let sources: Vec<_> = configs()
            .iter()
            .map(|c| selection_source(c, &rel))
            .collect();
        for i in 0..30 {
            let p = Point::new(
                world.xmin() + world.width() * (i as f64 * 0.37).fract(),
                world.ymin() + world.height() * (i as f64 * 0.61).fract(),
            );
            let window = Rect::from_bounds(
                p.x,
                p.y,
                p.x + world.width() * 0.1,
                p.y + world.height() * 0.08,
            );
            let mut expect_point: Option<Vec<ObjectId>> = None;
            let mut expect_window: Option<Vec<ObjectId>> = None;
            for source in &sources {
                let mut got = Vec::new();
                let stats = source.point_candidates(p, &mut got);
                assert_eq!(stats.candidates, got.len() as u64);
                got.sort_unstable();
                match &expect_point {
                    None => expect_point = Some(got),
                    Some(e) => assert_eq!(&got, e, "{} point probe", source.name()),
                }
                let mut got = Vec::new();
                source.window_candidates(window, &mut got);
                got.sort_unstable();
                match &expect_window {
                    None => expect_window = Some(got),
                    Some(e) => assert_eq!(&got, e, "{} window probe", source.name()),
                }
            }
        }
    }

    #[test]
    fn self_join_source_works_without_second_relation() {
        let rel = msj_datagen::small_carto(25, 20.0, 331);
        for config in configs() {
            let source = selection_source(&config, &rel);
            let mut pairs = Vec::new();
            source.stream_candidates(&mut |x, y| pairs.push((x, y)));
            // Every object pairs with itself in a self-join.
            for o in rel.iter() {
                assert!(pairs.contains(&(o.id, o.id)), "{} missing ({0}, {0})", o.id);
            }
        }
    }
}

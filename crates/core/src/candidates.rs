//! Pluggable Step-1 candidate backends.
//!
//! Step 1 of the multi-step pipeline only has to deliver every pair of
//! objects whose MBRs intersect (for joins) or every object whose MBR
//! meets the query point/window (for selections); *how* the candidates
//! are found is an implementation choice. [`CandidateSource`] abstracts
//! that choice so the pipeline, the parallel executor and the query
//! processor are backend-agnostic:
//!
//! * [`Backend::RStarTraversal`] — the paper's synchronized R*-tree
//!   traversal ([BKS 93a]) with simulated paged I/O, the default;
//! * [`Backend::PartitionedSweep`] — the uniform-grid partitioned join of
//!   `msj-partition` (Tsitsigkos & Mamoulis 2019): per-tile plane sweeps
//!   with reference-point deduplication, executed over scoped threads.
//!
//! Both deliver the identical candidate *set*; downstream filter and
//! exact steps are provably unaffected (the property tests in
//! `tests/backend_agreement.rs` assert it).

use crate::config::{Backend, JoinConfig};
use msj_geom::{ObjectId, Point, Rect, Relation};
use msj_partition::{partition_join, GridIndex, PartitionStats};
use msj_sam::{tree_join, JoinStats, LruBuffer, PageLayout, RStarTree};

/// Step-1 statistics, backend detail included.
#[derive(Debug, Clone, Copy, Default)]
pub struct Step1Stats {
    /// The common MBR-join counters (candidates, comparison tests, I/O).
    /// For the partitioned backend, `mbr_tests` counts sweep y-overlap
    /// tests and the I/O counters stay zero (the grid is not paged).
    pub join: JoinStats,
    /// Partition detail when the partitioned backend ran.
    pub partition: Option<PartitionSummary>,
}

/// Copyable summary of a [`PartitionStats`] (the full per-tile candidate
/// vector lives on `msj_partition::PartitionStats`; this is the digest
/// that travels inside [`crate::MultiStepStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PartitionSummary {
    /// Tiles per grid side.
    pub tiles_per_axis: u64,
    /// Tiles that emitted at least one candidate.
    pub nonempty_tiles: u64,
    /// Candidates of the busiest tile (skew indicator).
    pub busiest_tile_candidates: u64,
    /// Extra `(rectangle, tile)` assignments created by replication.
    pub replicated_assignments: u64,
    /// Sweep matches suppressed by reference-point deduplication.
    pub dedup_skipped: u64,
    /// Worker threads the tile sweeps ran on.
    pub threads: u64,
    /// Mean tile assignments per input rectangle (1.0 = no replication).
    pub replication_factor: f64,
}

impl From<&PartitionStats> for PartitionSummary {
    fn from(stats: &PartitionStats) -> Self {
        PartitionSummary {
            tiles_per_axis: stats.tiles_per_axis as u64,
            nonempty_tiles: stats.nonempty_tiles() as u64,
            busiest_tile_candidates: stats.busiest_tile().map_or(0, |(_, c)| c),
            replicated_assignments: stats.replicated_a() + stats.replicated_b(),
            dedup_skipped: stats.dedup_skipped,
            threads: stats.threads as u64,
            replication_factor: stats.replication_factor(),
        }
    }
}

/// Step-1 statistics of one selection (point or window) probe.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SelectionStats {
    /// Candidate ids delivered (MBR hits).
    pub candidates: u64,
    /// Physical page reads of the probe (0 for the in-memory grid).
    pub physical_reads: u64,
}

/// A prepared Step-1 backend over one or two relations.
///
/// Join sources are built by [`join_source`] from two relations; query
/// processors build a [`selection_source`] over the queried relation.
/// Candidates stream to the sink on the calling thread — backends may
/// parallelize internally but must not call the sink concurrently.
pub trait CandidateSource {
    /// The backend's display name (used by reports and benches).
    fn name(&self) -> &'static str;

    /// Streams every candidate pair `(id_a, id_b)` with intersecting
    /// MBRs, each exactly once.
    fn join_candidates(&mut self, sink: &mut dyn FnMut(ObjectId, ObjectId)) -> Step1Stats;

    /// Appends every id of the primary relation whose MBR contains `p`.
    fn point_candidates(&mut self, p: Point, out: &mut Vec<ObjectId>) -> SelectionStats;

    /// Appends every id of the primary relation whose MBR intersects
    /// `window`.
    fn window_candidates(&mut self, window: Rect, out: &mut Vec<ObjectId>) -> SelectionStats;
}

/// Builds the configured backend over a relation pair (Step 1 of a join).
pub fn join_source<'a>(
    config: &JoinConfig,
    rel_a: &'a Relation,
    rel_b: &'a Relation,
) -> Box<dyn CandidateSource + 'a> {
    match config.backend {
        Backend::RStarTraversal => Box::new(RStarSource::for_join(config, rel_a, rel_b)),
        Backend::PartitionedSweep {
            tiles_per_axis,
            threads,
        } => Box::new(GridSource::new(rel_a, Some(rel_b), tiles_per_axis, threads)),
    }
}

/// Builds the configured backend over one relation (Step 1 of selection
/// queries; a join over this source is a self-join).
pub fn selection_source<'a>(
    config: &JoinConfig,
    relation: &'a Relation,
) -> Box<dyn CandidateSource + 'a> {
    match config.backend {
        Backend::RStarTraversal => Box::new(RStarSource::for_relation(config, relation)),
        Backend::PartitionedSweep {
            tiles_per_axis,
            threads,
        } => Box::new(GridSource::new(relation, None, tiles_per_axis, threads)),
    }
}

/// The default backend: paged R*-trees, synchronized traversal, LRU
/// buffer I/O accounting.
struct RStarSource {
    tree_a: RStarTree,
    /// `None` for single-relation (selection) sources; joins then run
    /// `tree_a ⋈ tree_a`.
    tree_b: Option<RStarTree>,
    buffer: LruBuffer,
}

impl RStarSource {
    fn layout(config: &JoinConfig) -> PageLayout {
        PageLayout::with_extra_bytes(config.page_size, config.extra_leaf_bytes())
    }

    fn for_join(config: &JoinConfig, rel_a: &Relation, rel_b: &Relation) -> Self {
        let layout = Self::layout(config);
        RStarSource {
            tree_a: RStarTree::bulk_insert(layout, rel_a.iter().map(|o| (o.mbr(), o.id))),
            tree_b: Some(RStarTree::bulk_insert(
                layout,
                rel_b.iter().map(|o| (o.mbr(), o.id)),
            )),
            buffer: LruBuffer::with_bytes(config.buffer_bytes, config.page_size),
        }
    }

    fn for_relation(config: &JoinConfig, relation: &Relation) -> Self {
        let layout = Self::layout(config);
        RStarSource {
            tree_a: RStarTree::bulk_insert(layout, relation.iter().map(|o| (o.mbr(), o.id))),
            tree_b: None,
            buffer: LruBuffer::with_bytes(config.buffer_bytes, config.page_size),
        }
    }
}

impl CandidateSource for RStarSource {
    fn name(&self) -> &'static str {
        "rstar-traversal"
    }

    fn join_candidates(&mut self, sink: &mut dyn FnMut(ObjectId, ObjectId)) -> Step1Stats {
        let tree_b = self.tree_b.as_ref().unwrap_or(&self.tree_a);
        let join = tree_join(&self.tree_a, tree_b, &mut self.buffer, sink);
        Step1Stats {
            join,
            partition: None,
        }
    }

    fn point_candidates(&mut self, p: Point, out: &mut Vec<ObjectId>) -> SelectionStats {
        let before = self.buffer.stats().physical;
        let hits = self.tree_a.point_query(p, &mut self.buffer);
        let stats = SelectionStats {
            candidates: hits.len() as u64,
            physical_reads: self.buffer.stats().physical - before,
        };
        out.extend(hits);
        stats
    }

    fn window_candidates(&mut self, window: Rect, out: &mut Vec<ObjectId>) -> SelectionStats {
        let before = self.buffer.stats().physical;
        let hits = self.tree_a.window_query(window, &mut self.buffer);
        let stats = SelectionStats {
            candidates: hits.len() as u64,
            physical_reads: self.buffer.stats().physical - before,
        };
        out.extend(hits);
        stats
    }
}

/// The partitioned backend: uniform grid, per-tile plane sweeps,
/// reference-point deduplication, scoped-thread parallelism.
struct GridSource<'a> {
    rel_a: &'a Relation,
    rel_b: Option<&'a Relation>,
    tiles_per_axis: usize,
    threads: usize,
    /// Single-relation grid for selection probes, built on first use.
    index: Option<GridIndex>,
}

impl<'a> GridSource<'a> {
    fn new(
        rel_a: &'a Relation,
        rel_b: Option<&'a Relation>,
        tiles_per_axis: usize,
        threads: usize,
    ) -> Self {
        GridSource {
            rel_a,
            rel_b,
            tiles_per_axis,
            threads,
            index: None,
        }
    }

    fn items(relation: &Relation) -> Vec<(Rect, ObjectId)> {
        relation.iter().map(|o| (o.mbr(), o.id)).collect()
    }

    fn index(&mut self) -> &GridIndex {
        let (rel_a, tiles) = (self.rel_a, self.tiles_per_axis);
        self.index
            .get_or_insert_with(|| GridIndex::build(&Self::items(rel_a), tiles))
    }
}

impl CandidateSource for GridSource<'_> {
    fn name(&self) -> &'static str {
        "partitioned-sweep"
    }

    fn join_candidates(&mut self, sink: &mut dyn FnMut(ObjectId, ObjectId)) -> Step1Stats {
        let items_a = Self::items(self.rel_a);
        let items_b = self.rel_b.map(Self::items);
        let items_b = items_b.as_deref().unwrap_or(&items_a);
        let mut candidates = 0u64;
        let stats = partition_join(
            &items_a,
            items_b,
            self.tiles_per_axis,
            self.threads,
            |id_a, id_b| {
                candidates += 1;
                sink(id_a, id_b);
            },
        );
        Step1Stats {
            join: JoinStats {
                candidates,
                mbr_tests: stats.pair_tests,
                restriction_tests: 0,
                io: Default::default(),
            },
            partition: Some(PartitionSummary::from(&stats)),
        }
    }

    fn point_candidates(&mut self, p: Point, out: &mut Vec<ObjectId>) -> SelectionStats {
        let before = out.len();
        self.index().point_candidates(p, out);
        SelectionStats {
            candidates: (out.len() - before) as u64,
            physical_reads: 0,
        }
    }

    fn window_candidates(&mut self, window: Rect, out: &mut Vec<ObjectId>) -> SelectionStats {
        let before = out.len();
        self.index().window_candidates(window, out);
        SelectionStats {
            candidates: (out.len() - before) as u64,
            physical_reads: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted(mut v: Vec<(ObjectId, ObjectId)>) -> Vec<(ObjectId, ObjectId)> {
        v.sort_unstable();
        v
    }

    fn configs() -> [JoinConfig; 3] {
        [
            JoinConfig::default(),
            JoinConfig {
                backend: Backend::PartitionedSweep {
                    tiles_per_axis: 4,
                    threads: 2,
                },
                ..JoinConfig::default()
            },
            JoinConfig {
                backend: Backend::PartitionedSweep {
                    tiles_per_axis: 1,
                    threads: 1,
                },
                ..JoinConfig::default()
            },
        ]
    }

    #[test]
    fn backends_deliver_the_same_join_candidates() {
        let a = msj_datagen::small_carto(40, 24.0, 301);
        let b = msj_datagen::small_carto(40, 24.0, 302);
        let mut reference: Option<Vec<(ObjectId, ObjectId)>> = None;
        for config in configs() {
            let mut source = join_source(&config, &a, &b);
            let mut got = Vec::new();
            let stats = source.join_candidates(&mut |x, y| got.push((x, y)));
            assert_eq!(stats.join.candidates, got.len() as u64, "{}", source.name());
            let got = sorted(got);
            match &reference {
                None => reference = Some(got),
                Some(expect) => assert_eq!(&got, expect, "{} diverged", source.name()),
            }
        }
    }

    #[test]
    fn partitioned_source_reports_partition_summary() {
        let a = msj_datagen::small_carto(30, 20.0, 311);
        let b = msj_datagen::small_carto(30, 20.0, 312);
        let config = JoinConfig {
            backend: Backend::PartitionedSweep {
                tiles_per_axis: 4,
                threads: 2,
            },
            ..JoinConfig::default()
        };
        let mut source = join_source(&config, &a, &b);
        let stats = source.join_candidates(&mut |_, _| {});
        let summary = stats.partition.expect("partition summary");
        assert_eq!(summary.tiles_per_axis, 4);
        // Tiny input: the sweep may fall back to serial, but never exceeds
        // the requested worker count.
        assert!((1..=2).contains(&summary.threads));
        assert!(summary.replication_factor >= 1.0);
        assert!(summary.busiest_tile_candidates <= stats.join.candidates);
        // The R*-tree backend reports none.
        let mut rstar = join_source(&JoinConfig::default(), &a, &b);
        assert!(rstar.join_candidates(&mut |_, _| {}).partition.is_none());
    }

    #[test]
    fn selection_probes_agree_across_backends() {
        let rel = msj_datagen::small_carto(50, 24.0, 321);
        let world = rel.bounding_rect().unwrap();
        let mut sources: Vec<_> = configs()
            .iter()
            .map(|c| selection_source(c, &rel))
            .collect();
        for i in 0..30 {
            let p = Point::new(
                world.xmin() + world.width() * (i as f64 * 0.37).fract(),
                world.ymin() + world.height() * (i as f64 * 0.61).fract(),
            );
            let window = Rect::from_bounds(
                p.x,
                p.y,
                p.x + world.width() * 0.1,
                p.y + world.height() * 0.08,
            );
            let mut expect_point: Option<Vec<ObjectId>> = None;
            let mut expect_window: Option<Vec<ObjectId>> = None;
            for source in &mut sources {
                let mut got = Vec::new();
                let stats = source.point_candidates(p, &mut got);
                assert_eq!(stats.candidates, got.len() as u64);
                got.sort_unstable();
                match &expect_point {
                    None => expect_point = Some(got),
                    Some(e) => assert_eq!(&got, e, "{} point probe", source.name()),
                }
                let mut got = Vec::new();
                source.window_candidates(window, &mut got);
                got.sort_unstable();
                match &expect_window {
                    None => expect_window = Some(got),
                    Some(e) => assert_eq!(&got, e, "{} window probe", source.name()),
                }
            }
        }
    }

    #[test]
    fn self_join_source_works_without_second_relation() {
        let rel = msj_datagen::small_carto(25, 20.0, 331);
        for config in configs() {
            let mut source = selection_source(&config, &rel);
            let mut pairs = Vec::new();
            source.join_candidates(&mut |x, y| pairs.push((x, y)));
            // Every object pairs with itself in a self-join.
            for o in rel.iter() {
                assert!(pairs.contains(&(o.id, o.id)), "{} missing ({0}, {0})", o.id);
            }
        }
    }
}

//! The resident engine: registered datasets, owned prepared joins, and a
//! unified query-serving surface.
//!
//! The paper's whole economy is that Step-0 preprocessing — R*-trees,
//! approximation stores, raster signatures, TR*-tree object
//! representations — is built *once* and amortized over many executions
//! ("time and storage is invested in the representation of the spatial
//! objects", §4.2). A [`SpatialEngine`] makes that shape first-class:
//!
//! * [`SpatialEngine::register`] runs Step 0 for one relation and
//!   **owns** the result behind [`Arc`] — the returned [`DatasetHandle`]
//!   is a cheap, clonable, thread-safe reference;
//! * [`SpatialEngine::prepare_join`] assembles (and caches) an owned
//!   [`PreparedJoin`] — **no borrowed lifetime** — from the two
//!   datasets' shared Step-0 state plus the pair-level raster
//!   signatures; it can be held in an `Arc`, shared across threads, and
//!   re-run indefinitely, each run byte-identical in its response set;
//! * join, self-join, point and window (selection) queries all go
//!   through one [`Request`]/[`Response`] surface —
//!   [`SpatialEngine::submit`] for a single query,
//!   [`SpatialEngine::submit_batch`] for a batch — and every response
//!   carries the §5 cost-model accounting ([`Admission`]): the
//!   admission-time estimate next to the observed breakdown, including
//!   the measured Step-2a decided-rate fed back as an observed
//!   parameter;
//! * execution of join requests is admission-controlled: configure
//!   [`SpatialEngine::with_admission_limit`] and the engine refuses
//!   (with [`EngineError::AdmissionDenied`]) any join whose §5 modeled
//!   cost — from the prepared join's observed history, or the a-priori
//!   estimate before a first run — exceeds the limit.
//!
//! ```
//! use msj_core::{JoinConfig, Request, Response, SpatialEngine};
//!
//! let engine = SpatialEngine::new(JoinConfig::default());
//! let forests = engine.register(msj_datagen::small_carto(24, 20.0, 7));
//! let cities = engine.register(msj_datagen::small_carto(24, 20.0, 8));
//!
//! // A resident prepared join: Step 0 is already paid; every run is
//! // Steps 1–3 only.
//! let prepared = engine.prepare_join(&forests, &cities);
//! let first = prepared.run();
//!
//! // The same join through the serving surface, plus a point probe.
//! let responses = engine.submit_batch([
//!     Request::Join { a: forests.id(), b: cities.id(), execution: None },
//!     Request::Point { dataset: forests.id(), point: msj_geom::Point::new(0.0, 0.0) },
//! ]);
//! let Ok(Response::Join(join)) = &responses[0] else { panic!() };
//! assert_eq!(join.pairs, first.pairs);
//! assert!(responses[1].is_ok());
//! ```

use crate::candidates::{self, SharedStep1};
use crate::config::{Backend, JoinConfig};
use crate::cost::{estimate_cost, figure18_cost, CostBreakdown, CostModelParams, ExactCostKind};
use crate::execution::{Execution, RunError, ScopedPreparedJoin};
use crate::filter::GeometricFilter;
use crate::pipeline::JoinResult;
use crate::queries::{QueryStats, SelectionState};
use crate::stats::MultiStepStats;
use msj_approx::RasterStore;
use msj_approx::{ConservativeStore, ProgressiveStore};
use msj_exact::{ExactAlgorithm, ExactProcessor, OpCounts, TrStarStore};
use msj_fault::{FaultConfig, FaultSession};
use msj_geom::{CancelReason, CancelToken, ObjectId, Point, Rect, RelHandle, Relation};
use msj_obs::{
    LaneRole, MetricsRegistry, ObsConfig, Span, Step, StepSpans, Trace, TraceRing, TraceSteps,
};
use msj_sam::RStarTree;
use msj_store::{DatasetParts, Section, Store};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Identifier of a dataset registered on one engine (assigned in
/// registration order).
pub type DatasetId = u32;

/// One registered dataset: the relation (always resident) plus a
/// residency slot for its Step-0 artifacts.
///
/// The artifacts live behind an `RwLock<Option<…>>` so a store-backed
/// engine can **evict** a cold dataset's artifacts under a byte budget
/// and re-materialize them on next touch — from the persistent store
/// when one is armed (a linear repack of the segment's columns), from
/// the relation otherwise (a full Step-0 rebuild). In-flight work is
/// never invalidated: anything using the artifacts holds the `Arc`, so
/// eviction only drops this state's reference.
struct DatasetState {
    id: DatasetId,
    relation: Arc<Relation>,
    /// Wall-clock of this dataset's share of Step 0 at registration (or
    /// of the store load that materialized it on an opened engine).
    step0_nanos: u64,
    /// Bytes this dataset's artifacts account for under the residency
    /// budget: the segment file size when a store is armed, 0 otherwise
    /// (no store means no budget and no eviction).
    bytes: u64,
    artifacts: RwLock<Option<Arc<DatasetArtifacts>>>,
}

/// Every per-relation Step-0 artifact the engine's configuration calls
/// for, all `Arc`-shared — the evictable half of a [`DatasetState`].
struct DatasetArtifacts {
    /// The paged R*-tree (only under [`Backend::RStarTraversal`]; the
    /// partitioned backend indexes lazily inside its sources).
    tree: Option<Arc<RStarTree>>,
    conservative: Option<Arc<ConservativeStore>>,
    progressive: Option<Arc<ProgressiveStore>>,
    /// TR*-tree object representations (only when the exact step is
    /// [`ExactAlgorithm::TrStar`]).
    trstar: Option<Arc<TrStarStore>>,
    /// Resident selection state serving point/window queries.
    selection: SelectionState<'static>,
}

/// A cheap, clonable, thread-safe reference to a registered dataset.
#[derive(Clone)]
pub struct DatasetHandle {
    state: Arc<DatasetState>,
}

impl DatasetHandle {
    /// The dataset's engine-assigned id (what [`Request`]s name).
    pub fn id(&self) -> DatasetId {
        self.state.id
    }

    /// The registered relation.
    pub fn relation(&self) -> &Arc<Relation> {
        &self.state.relation
    }

    /// Objects in the relation.
    pub fn len(&self) -> usize {
        self.state.relation.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.state.relation.is_empty()
    }

    /// Nanoseconds spent on this dataset's Step-0 preprocessing at
    /// registration.
    pub fn step0_nanos(&self) -> u64 {
        self.state.step0_nanos
    }
}

impl std::fmt::Debug for DatasetHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DatasetHandle")
            .field("id", &self.state.id)
            .field("objects", &self.state.relation.len())
            .finish()
    }
}

/// Per-run statistics a [`PreparedJoin`] retains as admission history
/// ([`PreparedJoin::run_history`]).
pub const RUN_HISTORY: usize = 32;

/// `reason` labels of `msj_degraded_mode_total`, pre-registered so the
/// family renders at zero from the first scrape.
const DEGRADED_REASONS: [&str; 3] = ["raster_checksum", "fault_injected", "store_corrupt"];

/// `kind` labels of `msj_request_errors_total` — one per
/// [`EngineError`] variant (the canonical list lives on
/// [`EngineError::ALL_KINDS`] so wire mappings outside this crate can
/// assert exhaustiveness).
const ERROR_KINDS: [&str; 6] = EngineError::ALL_KINDS;

/// `site` labels of `msj_fault_injected_total` — the
/// [`msj_fault::FaultKind::site`] names, engine-internal sites and the
/// wire-level sites a network front injects at.
const FAULT_SITES: [&str; 9] = [
    "worker_panic",
    "slow_worker",
    "raster_corrupt",
    "store_corrupt",
    "cancel_at_batch",
    "conn_reset",
    "partial_write",
    "slow_client",
    "drop_before_reply",
];

/// Shared observability state of one engine: the metrics registry plus
/// the trace ring, `Arc`-co-owned by every [`PreparedJoin`] so direct
/// `prepared.run()` calls record exactly like submitted requests.
struct EngineObs {
    registry: MetricsRegistry,
    traces: TraceRing,
    /// Kernel dispatch label (`"scalar"`/`"sse2"`/`"avx2"`) the engine's
    /// batched loops run on — stamped onto every trace.
    dispatch: &'static str,
}

impl EngineObs {
    fn new(config: ObsConfig, dispatch: msj_geom::KernelDispatch) -> Self {
        let registry = MetricsRegistry::with_enabled(config.enabled);
        // Describe and pre-register the whole metric schema up front:
        // exporters render every family from the first scrape on, at
        // zero, instead of families popping into existence per request.
        registry.describe(
            "msj_request_latency_nanos",
            "End-to-end request latency in nanoseconds, by request kind",
        );
        registry.describe(
            "msj_step_nanos_total",
            "Cumulative pipeline wall-clock nanoseconds, by step",
        );
        registry.describe(
            "msj_admission_accept_total",
            "Join requests admitted under the section-5 cost model",
        );
        registry.describe(
            "msj_admission_shed_total",
            "Join requests refused by the admission limit",
        );
        registry.describe(
            "msj_admission_error_ratio",
            "Relative error of the latest admission estimate vs the observed cost",
        );
        registry.describe(
            "msj_prepared_cache_hits_total",
            "prepare_join calls served from the prepared-join cache",
        );
        registry.describe(
            "msj_prepared_cache_misses_total",
            "prepare_join calls that built pair-level Step-0 state",
        );
        registry.describe(
            "msj_prepared_cache_evictions_total",
            "Prepared joins evicted by the LRU count cap",
        );
        registry.describe(
            "msj_kernel_dispatch",
            "Selected kernel dispatch path (1 = active), by path",
        );
        registry.describe(
            "msj_datasets_registered_total",
            "Datasets registered on the engine (Step-0 runs)",
        );
        registry.describe(
            "msj_registration_nanos",
            "Step-0 registration wall-clock nanoseconds per dataset",
        );
        registry.describe(
            "msj_worker_pairs_total",
            "Candidate pairs handled by execution workers, by lane role",
        );
        registry.describe(
            "msj_worker_batches_total",
            "Batches flushed by execution workers, by lane role",
        );
        registry.describe(
            "msj_request_cancelled_total",
            "Join requests stopped by explicit cooperative cancellation",
        );
        registry.describe(
            "msj_deadline_exceeded_total",
            "Join requests stopped because their deadline expired",
        );
        registry.describe(
            "msj_worker_panics_total",
            "Worker panics contained at the run boundary",
        );
        registry.describe(
            "msj_degraded_mode_total",
            "Joins that fell back to the filter-only path, by reason",
        );
        registry.describe(
            "msj_request_errors_total",
            "Requests that returned an error, by error kind",
        );
        registry.describe(
            "msj_fault_injected_total",
            "Deterministic fault injections that fired, by site",
        );
        registry.describe(
            "msj_store_bytes",
            "Resident artifact-store bytes, by dataset (0 when evicted)",
        );
        registry.describe(
            "msj_store_load_nanos",
            "Wall-clock nanoseconds per artifact load from the persistent store",
        );
        registry.describe(
            "msj_store_evictions_total",
            "Dataset artifact sets evicted by the residency byte budget",
        );
        registry.describe(
            "msj_store_checksum_failures_total",
            "Store sections that failed checksum or shape validation at load, by section",
        );
        for kind in ["join", "self_join", "point", "window"] {
            registry.histogram("msj_request_latency_nanos", &[("kind", kind)]);
        }
        for step in Step::ALL {
            registry.counter("msj_step_nanos_total", &[("step", step.name())]);
        }
        for role in [LaneRole::Backend, LaneRole::Consumer] {
            registry.counter("msj_worker_pairs_total", &[("role", role.as_str())]);
            registry.counter("msj_worker_batches_total", &[("role", role.as_str())]);
        }
        for reason in DEGRADED_REASONS {
            registry.counter("msj_degraded_mode_total", &[("reason", reason)]);
        }
        for kind in ERROR_KINDS {
            registry.counter("msj_request_errors_total", &[("kind", kind)]);
        }
        for site in FAULT_SITES {
            registry.counter("msj_fault_injected_total", &[("site", site)]);
        }
        for section in Section::ALL {
            registry.counter(
                "msj_store_checksum_failures_total",
                &[("section", section.name())],
            );
        }
        registry.counter("msj_store_evictions_total", &[]);
        registry.histogram("msj_store_load_nanos", &[]);
        registry.counter("msj_request_cancelled_total", &[]);
        registry.counter("msj_deadline_exceeded_total", &[]);
        registry.counter("msj_worker_panics_total", &[]);
        registry.counter("msj_admission_accept_total", &[]);
        registry.counter("msj_admission_shed_total", &[]);
        registry.counter("msj_prepared_cache_hits_total", &[]);
        registry.counter("msj_prepared_cache_misses_total", &[]);
        registry.counter("msj_prepared_cache_evictions_total", &[]);
        registry.counter("msj_datasets_registered_total", &[]);
        registry.histogram("msj_registration_nanos", &[]);
        registry.gauge("msj_admission_error_ratio", &[]);
        // The dispatch gauge family carries every path the engine could
        // run on; the selected one sits at 1.
        for path in ["scalar", "sse2", "avx2"] {
            registry.gauge("msj_kernel_dispatch", &[("path", path)]);
        }
        if registry.is_enabled() {
            registry
                .gauge("msj_kernel_dispatch", &[("path", dispatch.label())])
                .set(1.0);
        }
        EngineObs {
            registry,
            traces: TraceRing::new(config.trace_capacity),
            dispatch: dispatch.label(),
        }
    }
}

/// An **owned** prepared join — the resident counterpart of
/// [`ScopedPreparedJoin`], with no borrowed lifetime: both datasets'
/// Step-0 state is co-owned behind `Arc`, so the value can be cached,
/// moved, held in an `Arc` and executed from any thread, indefinitely.
///
/// Every run produces the identical response set (canonically sorted
/// under fused execution); the only run-to-run drift is the simulated
/// LRU buffer of the R*-traversal staying warm (later runs report fewer
/// physical reads). The [`RUN_HISTORY`] most recent runs' statistics are
/// retained as the admission history the engine's §5 cost model
/// estimates from.
pub struct PreparedJoin {
    a: DatasetHandle,
    b: DatasetHandle,
    exact_cost_kind: ExactCostKind,
    scoped: ScopedPreparedJoin<'static>,
    /// Request-kind label of every run (`"join"` / `"self_join"`).
    kind: &'static str,
    /// §5 constants for the trace-time estimate.
    params: CostModelParams,
    /// The owning engine's registry/trace ring.
    obs: Arc<EngineObs>,
    /// Resolved fault-injection plan (disabled in production).
    fault: FaultConfig,
    /// Engine-shared latch: an armed plan fires at most once per engine,
    /// so the run after an injected failure is fault-free — exactly the
    /// recover-and-serve sequence the chaos suite exercises.
    fault_spent: Arc<AtomicBool>,
    /// Engine-configured default deadline armed per run when the caller
    /// passes no token of their own.
    deadline: Option<Duration>,
    /// `Some(reason)` when Step 2a was disabled for this pair because
    /// its raster signatures failed verification (degraded mode).
    degraded: Option<&'static str>,
    /// Bounded ring of per-run statistics, newest last (admission
    /// history).
    history: Mutex<VecDeque<MultiStepStats>>,
}

impl PreparedJoin {
    /// Runs Steps 1–3 under the engine-configured execution policy.
    ///
    /// Panics on cancellation / worker panic; use [`Self::try_run`] when
    /// a deadline or fault plan is armed.
    pub fn run(&self) -> JoinResult {
        self.run_with(self.scoped.execution())
    }

    /// Runs Steps 1–3 under an explicit policy, panicking on failure.
    pub fn run_with(&self, execution: Execution) -> JoinResult {
        match self.try_run_with(execution, None) {
            Ok(result) => result,
            Err(err) => panic!("prepared join failed: {err}"),
        }
    }

    /// Runs Steps 1–3 under the engine-configured execution policy,
    /// surfacing deadline / cancellation / worker-panic failures as
    /// structured errors.
    pub fn try_run(&self) -> Result<JoinResult, EngineError> {
        self.try_run_with(self.scoped.execution(), None)
    }

    /// Runs Steps 1–3 under an explicit policy. Every run — successful
    /// or failed — records into the owning engine's metrics registry
    /// (and trace ring, when tracing is on): direct runs and submitted
    /// requests are indistinguishable to the exporters.
    ///
    /// When `cancel` is `None` and the engine configures a default
    /// deadline, a fresh token armed with that deadline governs the run.
    /// A caller-supplied token always wins (its deadline, if any, is the
    /// caller's business).
    pub fn try_run_with(
        &self,
        execution: Execution,
        cancel: Option<&CancelToken>,
    ) -> Result<JoinResult, EngineError> {
        let own_token = match (cancel, self.deadline) {
            (None, Some(deadline)) => Some(CancelToken::with_deadline(deadline)),
            _ => None,
        };
        let cancel = cancel.or(own_token.as_ref());
        let session = if self.fault_spent.load(Ordering::Acquire) {
            FaultSession::inert()
        } else {
            FaultSession::new(self.fault)
        };
        let enabled = self.obs.registry.is_enabled();
        // The trace carries the estimate the run would have been
        // admitted under — taken before this run extends the history.
        let estimated_s =
            (enabled && self.obs.traces.enabled()).then(|| self.admission_estimate(&self.params).0);
        let t_run = enabled.then(Span::start);
        let outcome = self.scoped.try_run_with(execution, cancel, &session);
        let latency_nanos = t_run.map_or(0, |t| t.elapsed_nanos());
        if let Some(site) = session.fired() {
            self.fault_spent.store(true, Ordering::Release);
            if enabled {
                self.obs
                    .registry
                    .counter("msj_fault_injected_total", &[("site", site)])
                    .inc();
            }
        }
        match outcome {
            Ok(result) => {
                {
                    let mut history = self
                        .history
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                    if history.len() == RUN_HISTORY {
                        history.pop_front();
                    }
                    history.push_back(result.stats);
                }
                if enabled {
                    self.record_run(&result, latency_nanos, estimated_s.unwrap_or(0.0));
                }
                Ok(result)
            }
            Err(run_err) => {
                let err = match run_err {
                    RunError::Cancelled {
                        reason: CancelReason::DeadlineExpired,
                        elapsed,
                        partial_candidates,
                    } => EngineError::DeadlineExceeded {
                        elapsed,
                        partial_candidates,
                    },
                    RunError::Cancelled {
                        reason: CancelReason::Explicit,
                        partial_candidates,
                        ..
                    } => EngineError::Cancelled { partial_candidates },
                    RunError::Panicked { worker, message } => {
                        EngineError::WorkerPanicked { worker, message }
                    }
                };
                if enabled {
                    self.record_failure(&err, latency_nanos, estimated_s.unwrap_or(0.0));
                }
                Err(err)
            }
        }
    }

    /// Publishes one failed run: the per-cause counter and (when
    /// tracing) a trace whose kind names the failure. The per-kind
    /// `msj_request_errors_total` counter is incremented once at the
    /// request surface, not here, so a submitted request is never
    /// double-counted.
    fn record_failure(&self, err: &EngineError, latency_nanos: u64, estimated_s: f64) {
        let reg = &self.obs.registry;
        let (trace_kind, partial) = match err {
            EngineError::DeadlineExceeded {
                partial_candidates, ..
            } => {
                reg.counter("msj_deadline_exceeded_total", &[]).inc();
                ("join_deadline", *partial_candidates)
            }
            EngineError::Cancelled { partial_candidates } => {
                reg.counter("msj_request_cancelled_total", &[]).inc();
                ("join_cancelled", *partial_candidates)
            }
            EngineError::WorkerPanicked { .. } => {
                reg.counter("msj_worker_panics_total", &[]).inc();
                ("join_panic", 0)
            }
            _ => ("join_error", 0),
        };
        if self.obs.traces.enabled() {
            self.obs.traces.push(Trace {
                seq: self.obs.traces.next_seq(),
                kind: trace_kind,
                datasets: self.datasets(),
                admitted: true,
                estimated_s,
                latency_nanos,
                candidates: partial,
                results: 0,
                dispatch: self.obs.dispatch,
                steps: TraceSteps::default(),
            });
        }
    }

    /// `Some(reason)` when this pair runs in degraded mode — its raster
    /// signatures failed verification, so Step 2a is disabled and every
    /// candidate surviving Step 2 goes to exact geometry. Answers stay
    /// correct; only the §4 filter speedup is lost.
    pub fn degraded_reason(&self) -> Option<&'static str> {
        self.degraded
    }

    /// Publishes one finished run: latency histogram, per-step counters,
    /// worker-lane aggregates and (when tracing) the request trace.
    fn record_run(&self, result: &JoinResult, latency_nanos: u64, estimated_s: f64) {
        let reg = &self.obs.registry;
        let s = &result.stats;
        reg.histogram("msj_request_latency_nanos", &[("kind", self.kind)])
            .record(latency_nanos);
        for (step, nanos) in [
            (Step::Step1, s.step1_nanos),
            (Step::Step2, s.step2_nanos),
            (Step::Step2a, s.step2a_nanos),
            (Step::Step3, s.step3_nanos),
        ] {
            reg.counter("msj_step_nanos_total", &[("step", step.name())])
                .add(nanos);
        }
        let mut pairs = [0u64; 2];
        let mut batches = [0u64; 2];
        for lane in &result.worker_lanes {
            let i = match lane.role {
                LaneRole::Backend => 0,
                LaneRole::Consumer => 1,
            };
            pairs[i] += lane.pairs;
            batches[i] += lane.batches;
        }
        for (i, role) in [LaneRole::Backend, LaneRole::Consumer]
            .into_iter()
            .enumerate()
        {
            reg.counter("msj_worker_pairs_total", &[("role", role.as_str())])
                .add(pairs[i]);
            reg.counter("msj_worker_batches_total", &[("role", role.as_str())])
                .add(batches[i]);
        }
        if self.obs.traces.enabled() {
            self.obs.traces.push(Trace {
                seq: self.obs.traces.next_seq(),
                kind: self.kind,
                datasets: self.datasets(),
                admitted: true,
                estimated_s,
                latency_nanos,
                candidates: s.mbr_join.candidates,
                results: s.result_pairs,
                dispatch: self.obs.dispatch,
                steps: TraceSteps {
                    step0_nanos: s.step0_nanos,
                    step1_nanos: s.step1_nanos,
                    step2_nanos: s.step2_nanos,
                    step2a_nanos: s.step2a_nanos,
                    step3_nanos: s.step3_nanos,
                },
            });
        }
    }

    /// The joined dataset ids `(a, b)`.
    pub fn datasets(&self) -> (DatasetId, DatasetId) {
        (self.a.id(), self.b.id())
    }

    /// Statistics of the most recent run, if any ran yet.
    pub fn last_stats(&self) -> Option<MultiStepStats> {
        // Plain-data ring: a panic mid-push can't leave it half-written,
        // so recover from poisoning instead of cascading the panic.
        self.history
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .back()
            .copied()
    }

    /// Statistics of up to [`RUN_HISTORY`] most recent runs, oldest
    /// first.
    pub fn run_history(&self) -> Vec<MultiStepStats> {
        self.history
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .iter()
            .copied()
            .collect()
    }

    /// The §5 modeled cost this join would be admitted under right now:
    /// the observed history when a run happened (`from_history = true`),
    /// the a-priori estimate otherwise.
    pub fn admission_estimate(&self, params: &CostModelParams) -> (f64, bool) {
        match self.last_stats() {
            Some(stats) => (
                figure18_cost(&stats, self.exact_cost_kind, params).total_s(),
                true,
            ),
            None => (
                a_priori_estimate(self.a.len(), self.b.len(), self.exact_cost_kind, params),
                false,
            ),
        }
    }
}

/// The §5 estimate for a join that never ran: on the paper's
/// cartographic workloads each object meets on the order of one join
/// partner (Table 2), so the larger side bounds the expected candidate
/// count. Needs only the dataset sizes — admission can refuse a request
/// before any pair-level Step 0 is built.
fn a_priori_estimate(
    len_a: usize,
    len_b: usize,
    kind: ExactCostKind,
    params: &CostModelParams,
) -> f64 {
    estimate_cost(len_a.max(len_b) as u64, 0, kind, params).total_s()
}

/// One query against the serving surface ([`SpatialEngine::submit`]).
///
/// Datasets are named by [`DatasetId`] (from [`DatasetHandle::id`]) so a
/// request is `Copy` and batches are cheap to assemble.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Request {
    /// Intersection join of two registered datasets, optionally under an
    /// execution-policy override (`None` = the engine's configured
    /// policy).
    Join {
        a: DatasetId,
        b: DatasetId,
        execution: Option<Execution>,
    },
    /// Intersection self-join of one dataset (every pair `(i, j)` of the
    /// dataset with intersecting regions, `i == j` included).
    SelfJoin {
        dataset: DatasetId,
        execution: Option<Execution>,
    },
    /// Point selection: every object whose region contains the point
    /// (closed semantics).
    Point { dataset: DatasetId, point: Point },
    /// Window selection: every object whose region intersects the window
    /// (closed semantics).
    Window { dataset: DatasetId, window: Rect },
}

/// §5 cost-model accounting attached to every response: the
/// admission-time estimate next to the breakdown observed for the
/// execution that actually ran (including the measured filter yield and
/// Step-2a decided-rate as observed parameters).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Admission {
    /// Modeled total cost (seconds) this request was admitted under.
    pub estimated_s: f64,
    /// Whether the estimate came from observed history of the same
    /// prepared state (`true`) or the a-priori model (`false`).
    pub from_history: bool,
    /// The §5 breakdown of the execution that ran, estimated vs.
    /// observed filter yield included.
    pub cost: CostBreakdown,
}

/// Outcome of a join-shaped request.
#[derive(Debug, Clone)]
pub struct JoinResponse {
    /// The response set: pairs whose regions intersect.
    pub pairs: Vec<(ObjectId, ObjectId)>,
    pub stats: MultiStepStats,
    pub admission: Admission,
}

/// Outcome of a selection-shaped (point/window) request.
#[derive(Debug, Clone)]
pub struct SelectionResponse {
    /// Objects satisfying the selection.
    pub ids: Vec<ObjectId>,
    pub stats: QueryStats,
    /// Weighted exact-geometry operations of the final step.
    pub exact_ops: OpCounts,
    pub admission: Admission,
}

/// Outcome of one [`Request`].
#[derive(Debug, Clone)]
pub enum Response {
    Join(JoinResponse),
    Selection(SelectionResponse),
}

impl Response {
    /// The attached §5 accounting, whatever the request shape.
    pub fn admission(&self) -> &Admission {
        match self {
            Response::Join(r) => &r.admission,
            Response::Selection(r) => &r.admission,
        }
    }
}

/// Why the engine refused — or had to abandon — a request.
///
/// `#[non_exhaustive]`: match with a wildcard arm; the failure surface
/// can grow (a future network front will add transport-shaped errors).
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The request names a dataset id this engine never registered.
    UnknownDataset(DatasetId),
    /// The §5 modeled cost exceeds the configured admission limit.
    AdmissionDenied {
        estimated_s: f64,
        limit_s: f64,
        /// Whether `estimated_s` came from the observed run history of a
        /// cached prepared join (`true`) or the a-priori size-based
        /// model (`false`) — a network front turns this estimate into a
        /// retry-after hint, and the provenance travels with it.
        from_history: bool,
    },
    /// The request outlived its deadline and was stopped cooperatively
    /// at the next batch boundary.
    DeadlineExceeded {
        /// Wall-clock from token arming to the stop.
        elapsed: Duration,
        /// Step-1 candidates delivered before the stop.
        partial_candidates: u64,
    },
    /// The request's cancel token was cancelled explicitly.
    Cancelled {
        /// Step-1 candidates delivered before the stop.
        partial_candidates: u64,
    },
    /// A worker thread panicked mid-run; the panic was contained at the
    /// run boundary and the engine (datasets, caches, metrics) stays
    /// fully serviceable.
    WorkerPanicked {
        /// Attach-order index of the panicking worker.
        worker: usize,
        /// The rendered panic payload.
        message: String,
    },
    /// The pair's Step-2a raster signatures failed verification and the
    /// configuration forbids the degraded filter-only fallback
    /// ([`JoinConfig::allow_degraded`] is `false`).
    DegradedUnavailable {
        /// What failed verification.
        reason: &'static str,
    },
}

impl EngineError {
    /// Every [`kind`](EngineError::kind) label, one per variant, in
    /// declaration order. Frontends that map engine errors onto another
    /// surface (e.g. `msj-serve`'s wire statuses) iterate this list in a
    /// completeness test so a new variant cannot ship unmapped.
    pub const ALL_KINDS: [&'static str; 6] = [
        "unknown_dataset",
        "admission_denied",
        "deadline_exceeded",
        "cancelled",
        "worker_panicked",
        "degraded_unavailable",
    ];

    /// The stable `kind` label this error is counted under in
    /// `msj_request_errors_total`.
    pub fn kind(&self) -> &'static str {
        match self {
            EngineError::UnknownDataset(_) => "unknown_dataset",
            EngineError::AdmissionDenied { .. } => "admission_denied",
            EngineError::DeadlineExceeded { .. } => "deadline_exceeded",
            EngineError::Cancelled { .. } => "cancelled",
            EngineError::WorkerPanicked { .. } => "worker_panicked",
            EngineError::DegradedUnavailable { .. } => "degraded_unavailable",
        }
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownDataset(id) => write!(f, "unknown dataset id {id}"),
            EngineError::AdmissionDenied {
                estimated_s,
                limit_s,
                ..
            } => write!(
                f,
                "admission denied: modeled cost {estimated_s:.3}s exceeds limit {limit_s:.3}s"
            ),
            EngineError::DeadlineExceeded {
                elapsed,
                partial_candidates,
            } => write!(
                f,
                "deadline exceeded after {elapsed:?} ({partial_candidates} candidates delivered)"
            ),
            EngineError::Cancelled { partial_candidates } => write!(
                f,
                "request cancelled ({partial_candidates} candidates delivered)"
            ),
            EngineError::WorkerPanicked { worker, message } => {
                write!(f, "worker {worker} panicked: {message}")
            }
            EngineError::DegradedUnavailable { reason } => write!(
                f,
                "raster signatures unavailable ({reason}) and degraded mode is disabled"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// Configuration of the engine's **persistent Step-0 artifact store**
/// (`msj-store`): a directory of page-aligned, per-section checksummed
/// segment files plus an optional dataset-residency byte budget.
///
/// * [`SpatialEngine::with_store`] arms write-through: every
///   [`SpatialEngine::register`] also persists the dataset's artifacts,
///   and every first preparation of a raster-enabled pair persists the
///   pair's raster signatures.
/// * [`SpatialEngine::open`] restarts from such a directory: registered
///   datasets come back in id order with their artifacts **loaded** (a
///   linear repack of the segment columns — no hulls, MERs, trapezoids
///   or STR packing recomputed) instead of rebuilt.
/// * With a byte budget set, the engine keeps at most that many artifact
///   bytes resident: the stalest dataset's artifacts are evicted and
///   re-materialized from the store on next touch, so the registered
///   set may exceed RAM.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    root: PathBuf,
    byte_budget: Option<u64>,
}

impl StoreConfig {
    /// A store rooted at `root` (created if absent), with no residency
    /// budget — everything registered stays resident.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        StoreConfig {
            root: root.into(),
            byte_budget: None,
        }
    }

    /// Caps resident artifact bytes: beyond `bytes`, the
    /// least-recently-touched datasets' artifacts are evicted (and
    /// reloaded from the store on next touch).
    pub fn with_byte_budget(mut self, bytes: u64) -> Self {
        self.byte_budget = Some(bytes);
        self
    }

    /// The store's root directory.
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }

    /// The residency byte budget, if one is set.
    pub fn byte_budget(&self) -> Option<u64> {
        self.byte_budget
    }
}

/// The armed store of a [`SpatialEngine`]: segment I/O plus the
/// dataset-residency accounting the byte budget evicts by.
struct StoreBackend {
    store: Store,
    byte_budget: Option<u64>,
    residency: Mutex<Residency>,
}

/// LRU accounting of resident dataset artifacts: recency stamps plus
/// the resident byte total the budget is enforced against.
struct Residency {
    clock: u64,
    /// Per resident dataset: (artifact bytes, recency stamp).
    resident: HashMap<DatasetId, (u64, u64)>,
}

impl Residency {
    fn total(&self) -> u64 {
        self.resident.values().map(|&(bytes, _)| bytes).sum()
    }

    /// Upserts `id` as most recently used.
    fn touch(&mut self, id: DatasetId, bytes: u64) {
        self.clock += 1;
        let clock = self.clock;
        self.resident.insert(id, (bytes, clock));
    }

    /// The stalest resident dataset, excluding `keep`.
    fn stalest(&self, keep: DatasetId) -> Option<DatasetId> {
        self.resident
            .iter()
            .filter(|(&id, _)| id != keep)
            .min_by_key(|(_, &(_, stamp))| stamp)
            .map(|(&id, _)| id)
    }
}

/// Fingerprint of the configuration fields that shape Step-0 artifacts
/// (tree layout, approximation kinds, exact representations, raster
/// grid). A persisted segment whose tag differs was built under an
/// incompatible configuration; the engine rebuilds from the relation
/// instead of loading it.
fn config_tag(config: &JoinConfig) -> u64 {
    let mut bytes = Vec::with_capacity(64);
    bytes.push(match config.backend {
        Backend::RStarTraversal => 1u8,
        Backend::PartitionedSweep { .. } => 2,
    });
    bytes.extend((config.page_size as u64).to_le_bytes());
    bytes.push(config.conservative.map_or(0xFF, |k| k.code()));
    bytes.push(config.progressive.map_or(0xFF, |k| k.code()));
    match config.exact {
        ExactAlgorithm::TrStar { max_entries } => {
            bytes.push(1);
            bytes.extend((max_entries as u64).to_le_bytes());
        }
        _ => bytes.push(0),
    }
    bytes.push(match config.loader {
        crate::config::TreeLoader::Str => 0,
        crate::config::TreeLoader::Incremental => 1,
    });
    bytes.push(config.raster.enabled as u8);
    bytes.extend(config.raster.grid_bits.to_le_bytes());
    msj_geom::fnv1a64(&bytes)
}

/// The deterministic byte index a fired `store_corrupt` fault flips:
/// one splitmix64 draw from the plan seed, reduced to the section
/// length. Engine-side so the corruption flows through the *store's*
/// verification path exactly like real media corruption would.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The resident spatial query engine (see the module docs).
///
/// All methods take `&self`; the engine is `Send + Sync` and intended to
/// be shared (`Arc<SpatialEngine>`) across serving threads.
pub struct SpatialEngine {
    config: JoinConfig,
    params: CostModelParams,
    /// The §5 admission limit in seconds, stored as `f64` bits so it can
    /// be tightened or lifted at runtime through `&self` (a serving
    /// front adjusts it under load). `+inf` means *no limit*.
    admission_limit_bits: AtomicU64,
    /// Fault-injection plan resolved once at construction: the config's
    /// plan when set, else whatever `MSJ_FAULT_SEED`/`MSJ_FAULT_PLAN`
    /// name, else disabled. Resolving here keeps the per-run path free
    /// of env lookups.
    fault: FaultConfig,
    /// Shared into every prepared join: set once the plan fires, so the
    /// injected fault happens at most once per engine.
    fault_spent: Arc<AtomicBool>,
    /// Registry + trace ring, `Arc`-shared into every prepared join.
    obs: Arc<EngineObs>,
    datasets: RwLock<Vec<Arc<DatasetState>>>,
    /// Prepared-join cache keyed by dataset-id pair, LRU-capped at
    /// [`JoinConfig::prepared_cache_cap`].
    prepared: Mutex<PreparedCache>,
    /// The persistent artifact store, when armed
    /// ([`SpatialEngine::with_store`] / [`SpatialEngine::open`]).
    store: Option<StoreBackend>,
    /// Fingerprint of the artifact-shaping configuration fields,
    /// stamped into every written segment and checked on every load.
    tag: u64,
}

/// The engine's prepared-join cache: id-pair keyed, bounded by an LRU
/// count cap. Entries carry a recency stamp refreshed on every hit; an
/// insert beyond the cap evicts the stalest pair (its Step-0 state is
/// rebuilt transparently on next use — results are unaffected, only the
/// pair-level build cost is paid again).
struct PreparedCache {
    cap: usize,
    clock: u64,
    map: HashMap<(DatasetId, DatasetId), (Arc<PreparedJoin>, u64)>,
}

impl PreparedCache {
    fn new(cap: usize) -> Self {
        PreparedCache {
            cap: cap.max(1),
            clock: 0,
            map: HashMap::new(),
        }
    }

    /// Cache lookup; a hit refreshes the entry's recency stamp.
    fn get(&mut self, key: (DatasetId, DatasetId)) -> Option<Arc<PreparedJoin>> {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(&key).map(|(join, stamp)| {
            *stamp = clock;
            join.clone()
        })
    }

    /// Inserts `built` unless the key landed concurrently (the first
    /// insert wins — callers build outside the lock), then evicts
    /// least-recently-used entries beyond the cap. Returns the `Arc`
    /// actually cached and the number of evictions.
    fn insert(
        &mut self,
        key: (DatasetId, DatasetId),
        built: Arc<PreparedJoin>,
    ) -> (Arc<PreparedJoin>, u64) {
        self.clock += 1;
        let entry = self.map.entry(key).or_insert((built, 0));
        entry.1 = self.clock;
        let served = entry.0.clone();
        let mut evicted = 0;
        while self.map.len() > self.cap {
            let stalest = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(&k, _)| k);
            match stalest {
                Some(k) => {
                    self.map.remove(&k);
                    evicted += 1;
                }
                None => break,
            }
        }
        (served, evicted)
    }
}

impl SpatialEngine {
    /// An engine applying `config` to every dataset it registers and
    /// every query it serves.
    pub fn new(config: JoinConfig) -> Self {
        let fault = if config.fault.enabled() {
            config.fault
        } else {
            FaultConfig::from_env()
        };
        SpatialEngine {
            obs: Arc::new(EngineObs::new(config.obs, config.kernel_dispatch())),
            prepared: Mutex::new(PreparedCache::new(config.prepared_cache_cap)),
            tag: config_tag(&config),
            config,
            params: CostModelParams::default(),
            admission_limit_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            fault,
            fault_spent: Arc::new(AtomicBool::new(false)),
            datasets: RwLock::new(Vec::new()),
            store: None,
        }
    }

    /// Arms the persistent artifact store: every subsequent
    /// [`SpatialEngine::register`] writes the dataset's Step-0 artifacts
    /// through to a segment file under `store.root()`, pair raster
    /// signatures persist on first preparation, and the residency budget
    /// (if set) starts evicting cold datasets' artifacts.
    pub fn with_store(mut self, store: StoreConfig) -> io::Result<Self> {
        self.store = Some(StoreBackend {
            store: Store::open(&store.root)?,
            byte_budget: store.byte_budget,
            residency: Mutex::new(Residency {
                clock: 0,
                resident: HashMap::new(),
            }),
        });
        Ok(self)
    }

    /// Re-opens an engine from a persisted store: every dataset written
    /// by a previous engine's write-through comes back registered, in id
    /// order, with its Step-0 artifacts **loaded** from the segment
    /// files (checksums verified per section) instead of rebuilt — the
    /// store's cold-start path. Corrupt artifact sections degrade to a
    /// rebuild from the relation (counted under
    /// `msj_degraded_mode_total{reason="store_corrupt"}`); a corrupt
    /// manifest or relation section fails the open, since there is
    /// nothing to rebuild from.
    pub fn open(config: JoinConfig, store: StoreConfig) -> io::Result<Self> {
        let engine = SpatialEngine::new(config).with_store(store)?;
        let backend = engine.store.as_ref().expect("store just armed");
        let ids = backend.store.dataset_ids()?;
        for (slot, id) in ids.iter().enumerate() {
            if *id != slot as DatasetId {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("store is missing dataset {slot} (found id {id})"),
                ));
            }
        }
        for id in ids {
            engine.load_dataset(id)?;
        }
        Ok(engine)
    }

    /// Whether a persistent store is armed.
    pub fn store_armed(&self) -> bool {
        self.store.is_some()
    }

    /// The engine's metrics registry: always present (and always
    /// renderable via [`MetricsRegistry::snapshot_json`] /
    /// [`MetricsRegistry::render_prometheus`]); with
    /// [`ObsConfig::disabled`] it stays at the described schema and
    /// records nothing.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.obs.registry
    }

    /// The retained request traces, oldest first — empty unless the
    /// engine was configured with [`ObsConfig::with_traces`].
    pub fn recent_traces(&self) -> Vec<Trace> {
        self.obs.traces.recent()
    }

    /// Overrides the §5 cost constants used for admission estimates.
    pub fn with_cost_model(mut self, params: CostModelParams) -> Self {
        self.params = params;
        self
    }

    /// Enables admission control: join requests whose §5 modeled cost
    /// exceeds `limit_s` seconds are refused with
    /// [`EngineError::AdmissionDenied`] instead of executed.
    pub fn with_admission_limit(self, limit_s: f64) -> Self {
        self.set_admission_limit(Some(limit_s));
        self
    }

    /// Sets or lifts the admission limit at runtime (`None` = admit
    /// everything). Takes `&self`: a serving front tightens the limit
    /// under load without exclusive access to the engine.
    pub fn set_admission_limit(&self, limit_s: Option<f64>) {
        let value = limit_s.unwrap_or(f64::INFINITY);
        self.admission_limit_bits
            .store(value.to_bits(), Ordering::Release);
    }

    /// The currently configured admission limit, if any.
    pub fn admission_limit(&self) -> Option<f64> {
        let value = f64::from_bits(self.admission_limit_bits.load(Ordering::Acquire));
        (value != f64::INFINITY).then_some(value)
    }

    /// The §5 cost the engine would model for `request` right now,
    /// plus whether that estimate is history-informed (`true` when the
    /// pair is already prepared and carries observed run statistics).
    /// `None` when the request names an unregistered dataset.
    ///
    /// This is the read-only face of the admission estimate: a network
    /// front uses it to derive `retry_after` hints for requests it
    /// sheds *before* they reach the engine (full queue, connection
    /// cap), keeping those hints on the same model admission itself
    /// applies. Selections are modeled as one index descent of
    /// page-access cost (coarse, a-priori — selections keep no
    /// per-pair history).
    pub fn estimate_request(&self, request: &Request) -> Option<(f64, bool)> {
        let pair = match *request {
            Request::Join { a, b, .. } => Some((a, b)),
            Request::SelfJoin { dataset, .. } => Some((dataset, dataset)),
            Request::Point { dataset, .. } | Request::Window { dataset, .. } => {
                let handle = self.dataset(dataset)?;
                // One root-to-leaf descent plus a leaf page, in the
                // model's page-access currency.
                let depth = (handle.len().max(2) as f64).log2().ceil().max(1.0);
                return Some(((depth + 1.0) * self.params.page_access_ms / 1000.0, false));
            }
        };
        let (a, b) = pair.expect("join-shaped request");
        let (ha, hb) = (self.dataset(a)?, self.dataset(b)?);
        Some(match self.cached_join((ha.id(), hb.id())) {
            Some(prepared) => prepared.admission_estimate(&self.params),
            None => (
                a_priori_estimate(ha.len(), hb.len(), self.exact_cost_kind(), &self.params),
                false,
            ),
        })
    }

    /// The configuration every dataset and query runs under.
    pub fn config(&self) -> &JoinConfig {
        &self.config
    }

    /// The §5 cost constants admission estimates use.
    pub fn cost_model(&self) -> &CostModelParams {
        &self.params
    }

    /// Registers a relation: runs its share of Step 0 (index build,
    /// approximation stores, exact-step representations — whatever the
    /// engine configuration calls for) and takes ownership of the
    /// results. Accepts an owned [`Relation`] or an existing
    /// `Arc<Relation>` (no copy either way).
    pub fn register(&self, relation: impl Into<Arc<Relation>>) -> DatasetHandle {
        let relation = relation.into();
        let enabled = self.obs.registry.is_enabled();
        let t_step0 = enabled.then(Instant::now);
        let artifacts = self.build_artifacts(&relation);
        let step0_nanos = t_step0.map_or(0, |t| t.elapsed().as_nanos() as u64);
        if enabled {
            let reg = &self.obs.registry;
            reg.counter("msj_datasets_registered_total", &[]).inc();
            reg.histogram("msj_registration_nanos", &[])
                .record(step0_nanos);
            reg.counter("msj_step_nanos_total", &[("step", Step::Step0.name())])
                .add(step0_nanos);
        }
        // Dataset/cache guards protect plain data (Vec pushes, HashMap
        // inserts) that a worker panic can't leave half-written — the
        // panic is contained at the run boundary before any guard here
        // unwinds — so recover from poisoning rather than cascading.
        let mut datasets = self
            .datasets
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let id = datasets.len() as DatasetId;
        // Write-through: the id is assigned under the datasets lock, so
        // the segment write happens here too — registration is cold
        // relative to serving, and concurrent registers must not race
        // for the same segment file.
        let bytes = self.persist_dataset(id, &relation, &artifacts).unwrap_or(0);
        let state = Arc::new(DatasetState {
            id,
            relation,
            step0_nanos,
            bytes,
            artifacts: RwLock::new(Some(Arc::new(artifacts))),
        });
        datasets.push(state.clone());
        drop(datasets);
        self.note_resident(&state);
        self.evict_over_budget(id);
        DatasetHandle { state }
    }

    /// Runs one relation's share of Step 0 under the engine
    /// configuration — the rebuild path of registration and of any load
    /// whose stored sections cannot be used.
    fn build_artifacts(&self, relation: &Arc<Relation>) -> DatasetArtifacts {
        let tree = matches!(self.config.backend, Backend::RStarTraversal)
            .then(|| Arc::new(candidates::build_tree(&self.config, relation)));
        let conservative = self
            .config
            .conservative
            .map(|k| Arc::new(ConservativeStore::build(k, relation)));
        let progressive = self
            .config
            .progressive
            .map(|k| Arc::new(ProgressiveStore::build(k, relation)));
        let trstar = match self.config.exact {
            ExactAlgorithm::TrStar { max_entries } => {
                Some(Arc::new(TrStarStore::build(relation, max_entries)))
            }
            _ => None,
        };
        let selection = SelectionState::from_shared_with_step1(
            RelHandle::from(relation.clone()),
            &self.config,
            SharedStep1 { tree: tree.clone() },
            conservative.clone(),
            progressive.clone(),
        );
        DatasetArtifacts {
            tree,
            conservative,
            progressive,
            trstar,
            selection,
        }
    }

    /// Writes one dataset's artifacts through to the armed store;
    /// returns the segment size. `None` when no store is armed or the
    /// write failed — the engine keeps serving from memory either way.
    fn persist_dataset(
        &self,
        id: DatasetId,
        relation: &Relation,
        artifacts: &DatasetArtifacts,
    ) -> Option<u64> {
        let backend = self.store.as_ref()?;
        let parts = DatasetParts {
            relation,
            tree: artifacts.tree.as_ref().map(|t| t.export()),
            conservative: artifacts.conservative.as_ref().and_then(|c| c.export()),
            progressive: artifacts.progressive.as_ref().map(|p| p.export()),
            trstar: artifacts.trstar.as_ref().map(|t| t.export()),
        };
        backend.store.write_dataset(id, self.tag, &parts).ok()
    }

    /// Runs `read` with the engine's `store_corrupt` fault plan armed as
    /// the store's tamper hook (a seed-deterministic single-byte flip in
    /// the named section, applied *before* checksum verification so the
    /// corruption flows through the store's real detection path), and
    /// counts the injection if it fired.
    fn with_store_fault<T>(&self, read: impl FnOnce(Option<msj_store::Tamper<'_>>) -> T) -> T {
        let session = if self.fault_spent.load(Ordering::Acquire) {
            FaultSession::inert()
        } else {
            FaultSession::new(self.fault)
        };
        let mut fired = false;
        let mut hook = |section: Section, bytes: &mut [u8]| {
            if let Some(seed) = session.corrupt_store(section.name()) {
                fired = true;
                if !bytes.is_empty() {
                    let idx = (splitmix64(seed) % bytes.len() as u64) as usize;
                    bytes[idx] ^= 1;
                }
            }
        };
        let out = read(Some(&mut hook));
        if fired {
            self.fault_spent.store(true, Ordering::Release);
            if self.obs.registry.is_enabled() {
                self.obs
                    .registry
                    .counter("msj_fault_injected_total", &[("site", "store_corrupt")])
                    .inc();
            }
        }
        out
    }

    /// Decodes a segment's artifact sections into resident artifacts —
    /// a linear repack of the stored columns, no Step-0 recomputation.
    /// Any corrupt or missing section is rebuilt from `relation`
    /// (answers stay identical; only that section's load speedup is
    /// lost); failed section names accumulate into `corrupt`.
    fn artifacts_from_sections(
        &self,
        relation: &Arc<Relation>,
        tree: Option<Result<msj_sam::TreeExport, msj_store::SectionError>>,
        conservative: Option<Result<msj_approx::ConsExport, msj_store::SectionError>>,
        progressive: Option<Result<msj_approx::ProgExport, msj_store::SectionError>>,
        trstar: Option<Result<msj_exact::TrStarExport, msj_store::SectionError>>,
        corrupt: &mut Vec<&'static str>,
    ) -> DatasetArtifacts {
        let tree = match (matches!(self.config.backend, Backend::RStarTraversal), tree) {
            (false, _) => None,
            (true, Some(Ok(export))) => match RStarTree::from_export(export) {
                Ok(t) => Some(Arc::new(t)),
                Err(_) => {
                    corrupt.push(Section::Tree.name());
                    Some(Arc::new(candidates::build_tree(&self.config, relation)))
                }
            },
            (true, other) => {
                if other.is_some() {
                    corrupt.push(Section::Tree.name());
                }
                Some(Arc::new(candidates::build_tree(&self.config, relation)))
            }
        };
        let conservative = match (self.config.conservative, conservative) {
            (None, _) => None,
            (Some(_), Some(Ok(export))) => match ConservativeStore::from_export(export) {
                Ok(c) => Some(Arc::new(c)),
                Err(_) => {
                    corrupt.push(Section::Conservative.name());
                    let k = self.config.conservative.expect("matched Some");
                    Some(Arc::new(ConservativeStore::build(k, relation)))
                }
            },
            (Some(k), other) => {
                if other.is_some() {
                    corrupt.push(Section::Conservative.name());
                }
                Some(Arc::new(ConservativeStore::build(k, relation)))
            }
        };
        let progressive = match (self.config.progressive, progressive) {
            (None, _) => None,
            (Some(_), Some(Ok(export))) => match ProgressiveStore::from_export(export) {
                Ok(p) => Some(Arc::new(p)),
                Err(_) => {
                    corrupt.push(Section::Progressive.name());
                    let k = self.config.progressive.expect("matched Some");
                    Some(Arc::new(ProgressiveStore::build(k, relation)))
                }
            },
            (Some(k), other) => {
                if other.is_some() {
                    corrupt.push(Section::Progressive.name());
                }
                Some(Arc::new(ProgressiveStore::build(k, relation)))
            }
        };
        let trstar = match (self.config.exact, trstar) {
            (ExactAlgorithm::TrStar { .. }, Some(Ok(export))) => {
                match TrStarStore::from_export(export) {
                    Ok(t) => Some(Arc::new(t)),
                    Err(_) => {
                        corrupt.push(Section::TrStar.name());
                        let ExactAlgorithm::TrStar { max_entries } = self.config.exact else {
                            unreachable!("matched TrStar");
                        };
                        Some(Arc::new(TrStarStore::build(relation, max_entries)))
                    }
                }
            }
            (ExactAlgorithm::TrStar { max_entries }, other) => {
                if other.is_some() {
                    corrupt.push(Section::TrStar.name());
                }
                Some(Arc::new(TrStarStore::build(relation, max_entries)))
            }
            _ => None,
        };
        let selection = SelectionState::from_shared_with_step1(
            RelHandle::from(relation.clone()),
            &self.config,
            SharedStep1 { tree: tree.clone() },
            conservative.clone(),
            progressive.clone(),
        );
        DatasetArtifacts {
            tree,
            conservative,
            progressive,
            trstar,
            selection,
        }
    }

    /// Publishes one finished store load: wall-clock plus any
    /// per-section failures and the degraded-fallback count.
    fn record_store_load(&self, nanos: u64, corrupt: &[&'static str]) {
        if !self.obs.registry.is_enabled() {
            return;
        }
        let reg = &self.obs.registry;
        reg.histogram("msj_store_load_nanos", &[]).record(nanos);
        for section in corrupt {
            reg.counter("msj_store_checksum_failures_total", &[("section", section)])
                .inc();
        }
        if !corrupt.is_empty() {
            reg.counter("msj_degraded_mode_total", &[("reason", "store_corrupt")])
                .inc();
        }
    }

    /// Registers one persisted dataset on an opening engine — the
    /// cold-start path of [`SpatialEngine::open`].
    fn load_dataset(&self, id: DatasetId) -> io::Result<()> {
        let backend = self.store.as_ref().expect("load_dataset requires a store");
        let enabled = self.obs.registry.is_enabled();
        let t_load = enabled.then(Instant::now);
        let load = self.with_store_fault(|tamper| backend.store.read_dataset(id, tamper))?;
        let msj_store::DatasetLoad {
            config_tag,
            bytes,
            relation,
            tree,
            conservative,
            progressive,
            trstar,
        } = load;
        let mut corrupt: Vec<&'static str> = Vec::new();
        let relation = match relation {
            Ok(rel) => Arc::new(rel),
            Err(_) => {
                // The relation is the one section with no rebuild
                // source; its corruption fails the open.
                self.record_store_load(
                    t_load.map_or(0, |t| t.elapsed().as_nanos() as u64),
                    &[Section::Relation.name()],
                );
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("dataset {id}: relation section corrupt"),
                ));
            }
        };
        let (artifacts, bytes) = if config_tag == self.tag {
            (
                self.artifacts_from_sections(
                    &relation,
                    tree,
                    conservative,
                    progressive,
                    trstar,
                    &mut corrupt,
                ),
                bytes,
            )
        } else {
            // The segment was written under an artifact-shaping
            // configuration this engine does not run: rebuild everything
            // from the relation and refresh the segment in place.
            let artifacts = self.build_artifacts(&relation);
            let bytes = self
                .persist_dataset(id, &relation, &artifacts)
                .unwrap_or(bytes);
            (artifacts, bytes)
        };
        let step0_nanos = t_load.map_or(0, |t| t.elapsed().as_nanos() as u64);
        self.record_store_load(step0_nanos, &corrupt);
        let mut datasets = self
            .datasets
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        debug_assert_eq!(datasets.len() as DatasetId, id, "open loads ids in order");
        let state = Arc::new(DatasetState {
            id,
            relation,
            step0_nanos,
            bytes,
            artifacts: RwLock::new(Some(Arc::new(artifacts))),
        });
        datasets.push(state.clone());
        drop(datasets);
        self.note_resident(&state);
        self.evict_over_budget(id);
        Ok(())
    }

    /// The dataset's artifacts, re-materializing them first if the
    /// residency budget evicted them: a store load when a usable segment
    /// exists, a Step-0 rebuild from the relation otherwise. Refreshes
    /// the dataset's LRU recency either way.
    fn artifacts(&self, state: &Arc<DatasetState>) -> Arc<DatasetArtifacts> {
        let resident = state
            .artifacts
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone();
        if let Some(artifacts) = resident {
            self.note_resident(state);
            return artifacts;
        }
        // Materialize outside every lock: a concurrent double
        // materialization is deterministic over the same inputs and the
        // first publish wins.
        let built = Arc::new(self.materialize(state));
        let artifacts = {
            let mut guard = state
                .artifacts
                .write()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            if guard.is_none() {
                *guard = Some(built);
            }
            guard.clone().expect("just published")
        };
        self.note_resident(state);
        self.evict_over_budget(state.id);
        artifacts
    }

    /// Re-materializes evicted artifacts (see [`SpatialEngine::artifacts`]).
    fn materialize(&self, state: &DatasetState) -> DatasetArtifacts {
        if let Some(backend) = &self.store {
            let enabled = self.obs.registry.is_enabled();
            let t_load = enabled.then(Instant::now);
            let load = self.with_store_fault(|tamper| backend.store.read_dataset(state.id, tamper));
            if let Ok(load) = load {
                if load.config_tag == self.tag {
                    let mut corrupt: Vec<&'static str> = Vec::new();
                    // The relation is already resident; only the
                    // artifact sections matter here.
                    let artifacts = self.artifacts_from_sections(
                        &state.relation,
                        load.tree,
                        load.conservative,
                        load.progressive,
                        load.trstar,
                        &mut corrupt,
                    );
                    self.record_store_load(
                        t_load.map_or(0, |t| t.elapsed().as_nanos() as u64),
                        &corrupt,
                    );
                    return artifacts;
                }
            }
        }
        self.build_artifacts(&state.relation)
    }

    /// Marks `state` most-recently-used in the residency accounting and
    /// publishes its resident bytes. No-op without an armed store.
    fn note_resident(&self, state: &DatasetState) {
        let Some(backend) = &self.store else { return };
        backend
            .residency
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .touch(state.id, state.bytes);
        if self.obs.registry.is_enabled() {
            let label = state.id.to_string();
            self.obs
                .registry
                .gauge("msj_store_bytes", &[("dataset", label.as_str())])
                .set(state.bytes as f64);
        }
    }

    /// Evicts least-recently-touched datasets' artifacts until the
    /// resident total fits the byte budget. `keep` (the dataset that
    /// triggered the check) is evicted only when nothing else is left —
    /// a budget smaller than a single dataset still serves correctly,
    /// just re-materializing on every touch.
    fn evict_over_budget(&self, keep: DatasetId) {
        let Some(backend) = &self.store else { return };
        let Some(budget) = backend.byte_budget else {
            return;
        };
        loop {
            let victim = {
                let mut residency = backend
                    .residency
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                if residency.total() <= budget {
                    return;
                }
                let victim = residency
                    .stalest(keep)
                    .or_else(|| residency.resident.keys().next().copied());
                match victim {
                    Some(id) => {
                        residency.resident.remove(&id);
                        id
                    }
                    None => return,
                }
            };
            self.drop_artifacts(victim);
        }
    }

    /// Drops one dataset's resident artifacts and every prepared join
    /// holding them (prepared pair state over an evicted dataset would
    /// otherwise keep the artifacts alive). In-flight runs keep their
    /// `Arc`s and finish unaffected.
    fn drop_artifacts(&self, id: DatasetId) {
        let state = self
            .datasets
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .get(id as usize)
            .cloned();
        if let Some(state) = state {
            *state
                .artifacts
                .write()
                .unwrap_or_else(|poisoned| poisoned.into_inner()) = None;
        }
        self.prepared
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .map
            .retain(|&(a, b), _| a != id && b != id);
        if self.obs.registry.is_enabled() {
            let label = id.to_string();
            self.obs
                .registry
                .gauge("msj_store_bytes", &[("dataset", label.as_str())])
                .set(0.0);
            self.obs
                .registry
                .counter("msj_store_evictions_total", &[])
                .inc();
        }
    }

    /// The handle of a registered dataset (`None` for unknown ids).
    pub fn dataset(&self, id: DatasetId) -> Option<DatasetHandle> {
        self.datasets
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .get(id as usize)
            .map(|state| DatasetHandle {
                state: state.clone(),
            })
    }

    /// Number of registered datasets.
    pub fn num_datasets(&self) -> usize {
        self.datasets
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .len()
    }

    fn require(&self, id: DatasetId) -> Result<DatasetHandle, EngineError> {
        self.dataset(id).ok_or(EngineError::UnknownDataset(id))
    }

    fn exact_cost_kind(&self) -> ExactCostKind {
        match self.config.exact {
            ExactAlgorithm::TrStar { .. } => ExactCostKind::TrStar,
            _ => ExactCostKind::PlaneSweep,
        }
    }

    /// Panics unless `handle` was registered on *this* engine: foreign
    /// handles carry their own engine's ids, and admitting one would
    /// poison the id-keyed prepared-join cache with results computed
    /// over the wrong datasets.
    fn assert_registered(&self, handle: &DatasetHandle) {
        let owned = self
            .datasets
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .get(handle.id() as usize)
            .is_some_and(|state| Arc::ptr_eq(state, &handle.state));
        assert!(
            owned,
            "dataset handle {} was not registered on this engine",
            handle.id()
        );
    }

    /// The cached prepared join of a dataset-id pair, if one was built
    /// (refreshes the pair's LRU recency).
    fn cached_join(&self, key: (DatasetId, DatasetId)) -> Option<Arc<PreparedJoin>> {
        self.prepared
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .get(key)
    }

    /// The owned prepared join of two registered datasets, building it
    /// on first use and serving the cached `Arc` afterwards. A self-join
    /// is `prepare_join(&h, &h)`. Panics if either handle was registered
    /// on a different engine.
    ///
    /// Per-dataset Step-0 state (trees, approximation stores, TR*
    /// representations) is *shared* with the datasets — only the
    /// pair-level state (the raster signatures on the pair's shared
    /// grid, the Step-1 source wiring) is built here.
    pub fn prepare_join(&self, a: &DatasetHandle, b: &DatasetHandle) -> Arc<PreparedJoin> {
        match self.try_prepare_join(a, b) {
            Ok(prepared) => prepared,
            Err(err) => panic!("prepare_join failed: {err}"),
        }
    }

    /// [`Self::prepare_join`] surfacing preparation failures — today
    /// only [`EngineError::DegradedUnavailable`], when the pair's raster
    /// signatures fail verification and [`JoinConfig::allow_degraded`]
    /// is off — as structured errors.
    pub fn try_prepare_join(
        &self,
        a: &DatasetHandle,
        b: &DatasetHandle,
    ) -> Result<Arc<PreparedJoin>, EngineError> {
        self.assert_registered(a);
        self.assert_registered(b);
        let key = (a.id(), b.id());
        let enabled = self.obs.registry.is_enabled();
        if let Some(prepared) = self.cached_join(key) {
            if enabled {
                self.obs
                    .registry
                    .counter("msj_prepared_cache_hits_total", &[])
                    .inc();
            }
            return Ok(prepared);
        }
        if enabled {
            self.obs
                .registry
                .counter("msj_prepared_cache_misses_total", &[])
                .inc();
        }
        // Build outside the cache lock so a slow pair-level Step 0 never
        // blocks requests for other pairs; a concurrent double build is
        // harmless (both are deterministic over the same shared state)
        // and the first insert wins.
        let built = Arc::new(self.build_prepared(a, b)?);
        let (served, evicted) = self
            .prepared
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .insert(key, built);
        if enabled && evicted > 0 {
            self.obs
                .registry
                .counter("msj_prepared_cache_evictions_total", &[])
                .add(evicted);
        }
        Ok(served)
    }

    fn build_prepared(
        &self,
        a: &DatasetHandle,
        b: &DatasetHandle,
    ) -> Result<PreparedJoin, EngineError> {
        let enabled = self.obs.registry.is_enabled();
        let t_pair = enabled.then(Instant::now);
        let (sa, sb) = (&a.state, &b.state);
        let arts_a = self.artifacts(sa);
        let arts_b = if Arc::ptr_eq(sa, sb) {
            arts_a.clone()
        } else {
            self.artifacts(sb)
        };
        let source = candidates::join_source_with(
            &self.config,
            RelHandle::from(sa.relation.clone()),
            RelHandle::from(sb.relation.clone()),
            SharedStep1 {
                tree: arts_a.tree.clone(),
            },
            SharedStep1 {
                tree: arts_b.tree.clone(),
            },
        );
        let mut filter = GeometricFilter::from_shared(
            arts_a.conservative.clone(),
            arts_b.conservative.clone(),
            arts_a.progressive.clone(),
            arts_b.progressive.clone(),
            self.config.false_area_test,
        );
        // Degraded mode: the raster stores carry build-time checksums;
        // a mismatch (or an injected `raster_corrupt` fault) means Step
        // 2a would filter with untrustworthy signatures — and a
        // persisted pair segment whose raster sections fail *their*
        // checksums means the same thing one media generation earlier.
        // The fallback strips the rasters for this pair — every Step-2
        // survivor goes to exact geometry, answers stay correct, only
        // the §4 filter speedup is lost.
        let mut degraded = None;
        if self.config.raster.enabled {
            // Store-backed pairs load their persisted signatures (a
            // linear repack onto the shared grid, checksums verified)
            // instead of re-rasterizing; misses and stale tags rebuild
            // and write through.
            let mut attached = false;
            let mut corrupt: Vec<&'static str> = Vec::new();
            if let Some(backend) = &self.store {
                let read = self.with_store_fault(|tamper| {
                    backend.store.read_pair_raster(sa.id, sb.id, tamper)
                });
                if let Ok(Some(load)) = read {
                    if load.config_tag == self.tag {
                        match (load.raster_a, load.raster_b) {
                            (Ok(ea), Ok(eb)) => {
                                match (RasterStore::from_export(ea), RasterStore::from_export(eb)) {
                                    (Ok(ra), Ok(rb)) => {
                                        filter =
                                            filter.with_shared_raster(Arc::new(ra), Arc::new(rb));
                                        attached = true;
                                    }
                                    (ra, rb) => {
                                        if ra.is_err() {
                                            corrupt.push(Section::RasterA.name());
                                        }
                                        if rb.is_err() {
                                            corrupt.push(Section::RasterB.name());
                                        }
                                        degraded = Some("store_corrupt");
                                    }
                                }
                            }
                            (ra, rb) => {
                                if ra.is_err() {
                                    corrupt.push(Section::RasterA.name());
                                }
                                if rb.is_err() {
                                    corrupt.push(Section::RasterB.name());
                                }
                                degraded = Some("store_corrupt");
                            }
                        }
                    }
                }
            }
            if enabled {
                for section in &corrupt {
                    self.obs
                        .registry
                        .counter("msj_store_checksum_failures_total", &[("section", section)])
                        .inc();
                }
            }
            if degraded.is_none() && !attached {
                // Pair-level Step 0: both relations rasterized on one
                // shared grid (signatures are only comparable on the
                // same grid, so they cannot be a per-dataset artifact).
                filter =
                    filter.with_raster(&sa.relation, &sb.relation, self.config.raster.grid_bits);
                if let Some(backend) = &self.store {
                    if let Some((ra, rb)) = filter.raster_stores() {
                        let _ = backend.store.write_pair_raster(
                            sa.id,
                            sb.id,
                            self.tag,
                            &ra.export(),
                            &rb.export(),
                        );
                    }
                }
            }
            let session = if self.fault_spent.load(Ordering::Acquire) {
                FaultSession::inert()
            } else {
                FaultSession::new(self.fault)
            };
            if degraded.is_none() {
                if session.corrupt_raster() {
                    self.fault_spent.store(true, Ordering::Release);
                    degraded = Some("fault_injected");
                } else if !filter.verify_raster() {
                    degraded = Some("raster_checksum");
                }
            }
            if let Some(reason) = degraded {
                if !self.config.allow_degraded {
                    return Err(EngineError::DegradedUnavailable { reason });
                }
                filter.strip_raster();
                if self.obs.registry.is_enabled() {
                    self.obs
                        .registry
                        .counter("msj_degraded_mode_total", &[("reason", reason)])
                        .inc();
                    if let Some(site) = session.fired() {
                        self.obs
                            .registry
                            .counter("msj_fault_injected_total", &[("site", site)])
                            .inc();
                    }
                }
                if self.obs.traces.enabled() {
                    self.obs.traces.push(Trace {
                        seq: self.obs.traces.next_seq(),
                        kind: "degraded_mode",
                        datasets: (a.id(), b.id()),
                        admitted: true,
                        estimated_s: 0.0,
                        latency_nanos: 0,
                        candidates: 0,
                        results: 0,
                        dispatch: self.obs.dispatch,
                        steps: TraceSteps::default(),
                    });
                }
            }
        }
        let filter = filter.with_dispatch(self.config.kernel_dispatch());
        let exact = ExactProcessor::from_shared(
            self.config.exact,
            RelHandle::from(sa.relation.clone()),
            RelHandle::from(sb.relation.clone()),
            arts_a.trstar.clone(),
            arts_b.trstar.clone(),
        );
        // A self-join shares one dataset on both sides — count its
        // registration cost once.
        let datasets_step0 = if Arc::ptr_eq(sa, sb) {
            sa.step0_nanos
        } else {
            sa.step0_nanos + sb.step0_nanos
        };
        let step0_nanos = datasets_step0 + t_pair.map_or(0, |t| t.elapsed().as_nanos() as u64);
        Ok(PreparedJoin {
            exact_cost_kind: self.exact_cost_kind(),
            scoped: ScopedPreparedJoin::from_parts(
                self.config.execution,
                source,
                filter,
                exact,
                step0_nanos,
                self.config.obs,
            ),
            kind: if a.id() == b.id() {
                "self_join"
            } else {
                "join"
            },
            params: self.params,
            obs: self.obs.clone(),
            fault: self.fault,
            fault_spent: self.fault_spent.clone(),
            deadline: self.config.deadline,
            degraded,
            history: Mutex::new(VecDeque::with_capacity(RUN_HISTORY)),
            a: a.clone(),
            b: b.clone(),
        })
    }

    /// Point selection against a registered dataset (three steps: index
    /// probe, approximation filter, exact containment).
    pub fn point_query(&self, dataset: &DatasetHandle, point: Point) -> SelectionResponse {
        let artifacts = self.artifacts(&dataset.state);
        let mut exact_ops = OpCounts::new();
        if !self.obs.registry.is_enabled() {
            let (ids, stats) = artifacts.selection.point_query(point, &mut exact_ops);
            return self.selection_response(ids, stats, exact_ops);
        }
        let spans = StepSpans::new();
        let t_req = Span::start();
        let (ids, stats) =
            artifacts
                .selection
                .point_query_observed(point, &mut exact_ops, Some(&spans));
        self.record_selection(
            "point",
            dataset,
            &spans,
            t_req.elapsed_nanos(),
            &stats,
            &ids,
        );
        self.selection_response(ids, stats, exact_ops)
    }

    /// Window selection against a registered dataset.
    pub fn window_query(&self, dataset: &DatasetHandle, window: Rect) -> SelectionResponse {
        let artifacts = self.artifacts(&dataset.state);
        let mut exact_ops = OpCounts::new();
        if !self.obs.registry.is_enabled() {
            let (ids, stats) = artifacts.selection.window_query(window, &mut exact_ops);
            return self.selection_response(ids, stats, exact_ops);
        }
        let spans = StepSpans::new();
        let t_req = Span::start();
        let (ids, stats) =
            artifacts
                .selection
                .window_query_observed(window, &mut exact_ops, Some(&spans));
        self.record_selection(
            "window",
            dataset,
            &spans,
            t_req.elapsed_nanos(),
            &stats,
            &ids,
        );
        self.selection_response(ids, stats, exact_ops)
    }

    /// Serves a *batch* of point queries against one dataset through a
    /// single shared Step-1 descent and one filter pass (the
    /// cross-request batching path of a serving front). Each response is
    /// identical to what [`point_query`](SpatialEngine::point_query)
    /// returns for the same point — ids, filter counts and exact-op
    /// counts agree exactly; only the simulated-buffer physical-read
    /// attribution can differ, because the batch keeps the buffer warm.
    pub fn point_query_batch(
        &self,
        dataset: &DatasetHandle,
        points: &[Point],
    ) -> Vec<SelectionResponse> {
        let artifacts = self.artifacts(&dataset.state);
        let mut merged_ops = OpCounts::new();
        if !self.obs.registry.is_enabled() {
            return artifacts
                .selection
                .point_query_batch(points, &mut merged_ops, None)
                .into_iter()
                .map(|(ids, stats, ops)| self.selection_response(ids, stats, ops))
                .collect();
        }
        let spans = StepSpans::new();
        let t_req = Span::start();
        let raw = artifacts
            .selection
            .point_query_batch(points, &mut merged_ops, Some(&spans));
        self.record_selection_batch("point", dataset, &spans, t_req.elapsed_nanos(), &raw);
        raw.into_iter()
            .map(|(ids, stats, ops)| self.selection_response(ids, stats, ops))
            .collect()
    }

    /// Batched window queries — the window-shaped counterpart of
    /// [`point_query_batch`](SpatialEngine::point_query_batch), with the
    /// same identical-per-query contract.
    pub fn window_query_batch(
        &self,
        dataset: &DatasetHandle,
        windows: &[Rect],
    ) -> Vec<SelectionResponse> {
        let artifacts = self.artifacts(&dataset.state);
        let mut merged_ops = OpCounts::new();
        if !self.obs.registry.is_enabled() {
            return artifacts
                .selection
                .window_query_batch(windows, &mut merged_ops, None)
                .into_iter()
                .map(|(ids, stats, ops)| self.selection_response(ids, stats, ops))
                .collect();
        }
        let spans = StepSpans::new();
        let t_req = Span::start();
        let raw = artifacts
            .selection
            .window_query_batch(windows, &mut merged_ops, Some(&spans));
        self.record_selection_batch("window", dataset, &spans, t_req.elapsed_nanos(), &raw);
        raw.into_iter()
            .map(|(ids, stats, ops)| self.selection_response(ids, stats, ops))
            .collect()
    }

    /// Publishes one finished selection batch: per-query latency samples
    /// (the batch wall-clock amortized over its queries — the number a
    /// serving percentile should see), step counters added **once** for
    /// the whole batch, and one trace per query.
    fn record_selection_batch(
        &self,
        kind: &'static str,
        dataset: &DatasetHandle,
        spans: &StepSpans,
        batch_nanos: u64,
        raw: &[(Vec<ObjectId>, QueryStats, OpCounts)],
    ) {
        if raw.is_empty() {
            return;
        }
        let reg = &self.obs.registry;
        let amortized = batch_nanos / raw.len() as u64;
        let hist = reg.histogram("msj_request_latency_nanos", &[("kind", kind)]);
        for _ in raw {
            hist.record(amortized);
        }
        for step in [Step::Step1, Step::Step2, Step::Step3] {
            reg.counter("msj_step_nanos_total", &[("step", step.name())])
                .add(spans.get(step));
        }
        if self.obs.traces.enabled() {
            for (ids, stats, _) in raw {
                self.obs.traces.push(Trace {
                    seq: self.obs.traces.next_seq(),
                    kind,
                    datasets: (dataset.id(), dataset.id()),
                    admitted: true,
                    estimated_s: 0.0,
                    latency_nanos: amortized,
                    candidates: stats.candidates,
                    results: ids.len() as u64,
                    dispatch: self.obs.dispatch,
                    steps: TraceSteps::default(),
                });
            }
        }
    }

    /// Publishes one finished selection: latency histogram, per-step
    /// counters and (when tracing) the request trace.
    fn record_selection(
        &self,
        kind: &'static str,
        dataset: &DatasetHandle,
        spans: &StepSpans,
        latency_nanos: u64,
        stats: &QueryStats,
        ids: &[ObjectId],
    ) {
        let reg = &self.obs.registry;
        reg.histogram("msj_request_latency_nanos", &[("kind", kind)])
            .record(latency_nanos);
        for step in [Step::Step1, Step::Step2, Step::Step3] {
            reg.counter("msj_step_nanos_total", &[("step", step.name())])
                .add(spans.get(step));
        }
        if self.obs.traces.enabled() {
            self.obs.traces.push(Trace {
                seq: self.obs.traces.next_seq(),
                kind,
                datasets: (dataset.id(), dataset.id()),
                admitted: true,
                estimated_s: 0.0,
                latency_nanos,
                candidates: stats.candidates,
                results: ids.len() as u64,
                dispatch: self.obs.dispatch,
                steps: TraceSteps {
                    step0_nanos: 0,
                    step1_nanos: spans.get(Step::Step1),
                    step2_nanos: spans.get(Step::Step2),
                    step2a_nanos: 0,
                    step3_nanos: spans.get(Step::Step3),
                },
            });
        }
    }

    fn selection_response(
        &self,
        ids: Vec<ObjectId>,
        stats: QueryStats,
        exact_ops: OpCounts,
    ) -> SelectionResponse {
        // The §5 model applied to one selection: every index page read
        // plus one object access + exact test per unidentified candidate.
        let kind = self.exact_cost_kind();
        let access_factor = match kind {
            ExactCostKind::PlaneSweep => 1.0,
            ExactCostKind::TrStar => self.params.trstar_access_factor,
        };
        let identified = stats.filter_false_hits + stats.filter_hits;
        let cost = CostBreakdown {
            mbr_join_s: stats.physical_reads as f64 * self.params.page_access_ms / 1000.0,
            object_access_s: stats.exact_tests as f64 * self.params.page_access_ms * access_factor
                / 1000.0,
            exact_test_s: stats.exact_tests as f64
                * match kind {
                    ExactCostKind::PlaneSweep => self.params.sweep_exact_ms,
                    ExactCostKind::TrStar => self.params.trstar_exact_ms,
                }
                / 1000.0,
            filter_yield_estimated: self.params.expected_filter_yield,
            filter_yield_observed: if stats.candidates == 0 {
                0.0
            } else {
                identified as f64 / stats.candidates as f64
            },
            raster_decided_observed: 0.0,
        };
        SelectionResponse {
            ids,
            stats,
            exact_ops,
            admission: Admission {
                estimated_s: cost.total_s(),
                from_history: false,
                cost,
            },
        }
    }

    fn run_join_request(
        &self,
        a: DatasetId,
        b: DatasetId,
        execution: Option<Execution>,
        cancel: Option<&CancelToken>,
    ) -> Result<Response, EngineError> {
        // A token cancelled before any work begins short-circuits the
        // whole request — no admission, no preparation.
        if let Some(token) = cancel {
            if token.is_cancelled() {
                let err = match token.reason() {
                    Some(CancelReason::DeadlineExpired) => EngineError::DeadlineExceeded {
                        elapsed: token.elapsed(),
                        partial_candidates: 0,
                    },
                    _ => EngineError::Cancelled {
                        partial_candidates: 0,
                    },
                };
                if self.obs.registry.is_enabled() {
                    let name = match err {
                        EngineError::DeadlineExceeded { .. } => "msj_deadline_exceeded_total",
                        _ => "msj_request_cancelled_total",
                    };
                    self.obs.registry.counter(name, &[]).inc();
                }
                return Err(err);
            }
        }
        let (ha, hb) = (self.require(a)?, self.require(b)?);
        // Admission runs before any pair-level Step 0 is built: a
        // request the limit refuses must not pay the preparation the
        // limit exists to avoid. History is consulted when the pair was
        // already prepared; otherwise the a-priori size-based estimate
        // decides.
        let (estimated_s, from_history) = match self.cached_join((ha.id(), hb.id())) {
            Some(prepared) => prepared.admission_estimate(&self.params),
            None => (
                a_priori_estimate(ha.len(), hb.len(), self.exact_cost_kind(), &self.params),
                false,
            ),
        };
        let enabled = self.obs.registry.is_enabled();
        if let Some(limit_s) = self.admission_limit() {
            if estimated_s > limit_s {
                if enabled {
                    self.obs
                        .registry
                        .counter("msj_admission_shed_total", &[])
                        .inc();
                }
                if self.obs.traces.enabled() {
                    self.obs.traces.push(Trace {
                        seq: self.obs.traces.next_seq(),
                        kind: if a == b { "self_join" } else { "join" },
                        datasets: (a, b),
                        admitted: false,
                        estimated_s,
                        latency_nanos: 0,
                        candidates: 0,
                        results: 0,
                        dispatch: self.obs.dispatch,
                        steps: TraceSteps::default(),
                    });
                }
                return Err(EngineError::AdmissionDenied {
                    estimated_s,
                    limit_s,
                    from_history,
                });
            }
        }
        if enabled {
            self.obs
                .registry
                .counter("msj_admission_accept_total", &[])
                .inc();
        }
        let prepared = self.try_prepare_join(&ha, &hb)?;
        let result = prepared.try_run_with(execution.unwrap_or(self.config.execution), cancel)?;
        let cost = figure18_cost(&result.stats, self.exact_cost_kind(), &self.params);
        if enabled {
            // §5 feedback: how far the admission-time estimate missed
            // the cost the run actually modeled out to.
            let observed_s = cost.total_s();
            if observed_s > 0.0 {
                self.obs
                    .registry
                    .gauge("msj_admission_error_ratio", &[])
                    .set((estimated_s - observed_s).abs() / observed_s);
            }
        }
        Ok(Response::Join(JoinResponse {
            pairs: result.pairs,
            stats: result.stats,
            admission: Admission {
                estimated_s,
                from_history,
                cost,
            },
        }))
    }

    /// Serves one request.
    pub fn submit(&self, request: Request) -> Result<Response, EngineError> {
        self.submit_inner(request, None)
    }

    /// Serves one request under a caller-owned cancel token. Cancel the
    /// token from any thread (or arm it with a deadline via
    /// [`CancelToken::with_deadline`]) and the request stops
    /// cooperatively at the next batch boundary, returning
    /// [`EngineError::Cancelled`] / [`EngineError::DeadlineExceeded`].
    /// The engine stays fully serviceable afterwards.
    pub fn submit_with_cancel(
        &self,
        request: Request,
        cancel: &CancelToken,
    ) -> Result<Response, EngineError> {
        self.submit_inner(request, Some(cancel))
    }

    fn submit_inner(
        &self,
        request: Request,
        cancel: Option<&CancelToken>,
    ) -> Result<Response, EngineError> {
        let result = match request {
            Request::Join { a, b, execution } => self.run_join_request(a, b, execution, cancel),
            Request::SelfJoin { dataset, execution } => {
                self.run_join_request(dataset, dataset, execution, cancel)
            }
            Request::Point { dataset, point } => self
                .require(dataset)
                .map(|handle| Response::Selection(self.point_query(&handle, point))),
            Request::Window { dataset, window } => self
                .require(dataset)
                .map(|handle| Response::Selection(self.window_query(&handle, window))),
        };
        // One increment per failed request, whatever the failure path —
        // deeper layers own the cause-specific counters.
        if let Err(err) = &result {
            if self.obs.registry.is_enabled() {
                self.obs
                    .registry
                    .counter("msj_request_errors_total", &[("kind", err.kind())])
                    .inc();
            }
        }
        result
    }

    /// Serves a batch of requests in order, one result per request.
    /// Failures are per-request — a denied or malformed request never
    /// blocks the rest of the batch.
    pub fn submit_batch(
        &self,
        requests: impl IntoIterator<Item = Request>,
    ) -> Vec<Result<Response, EngineError>> {
        requests.into_iter().map(|r| self.submit(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::MultiStepJoin;

    const _: () = {
        const fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SpatialEngine>();
        assert_send_sync::<PreparedJoin>();
        assert_send_sync::<DatasetHandle>();
    };

    fn sorted(mut v: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
        v.sort_unstable();
        v
    }

    #[test]
    fn engine_join_matches_one_shot_pipeline() {
        let a = msj_datagen::small_carto(40, 24.0, 1001);
        let b = msj_datagen::small_carto(40, 24.0, 1002);
        let expect = MultiStepJoin::new(JoinConfig::default()).execute(&a, &b);
        let engine = SpatialEngine::new(JoinConfig::default());
        let (ha, hb) = (engine.register(a), engine.register(b));
        assert_eq!((ha.id(), hb.id()), (0, 1));
        let prepared = engine.prepare_join(&ha, &hb);
        let got = prepared.run();
        assert_eq!(got.pairs, expect.pairs);
        assert_eq!(got.stats.exact_ops, expect.stats.exact_ops);
        assert_eq!(
            got.stats.mbr_join.candidates,
            expect.stats.mbr_join.candidates
        );
        // The cache serves the same prepared join again.
        assert!(Arc::ptr_eq(&prepared, &engine.prepare_join(&ha, &hb)));
    }

    #[test]
    fn prepared_cache_evicts_least_recently_used_beyond_cap() {
        let engine = SpatialEngine::new(JoinConfig::builder().prepared_cache_cap(2).build());
        let a = engine.register(msj_datagen::small_carto(12, 16.0, 2001));
        let b = engine.register(msj_datagen::small_carto(12, 16.0, 2002));
        let c = engine.register(msj_datagen::small_carto(12, 16.0, 2003));
        let ab = engine.prepare_join(&a, &b);
        let ac = engine.prepare_join(&a, &c);
        let expect_ac = ac.run().pairs;
        // Touch (a,b) so (a,c) is the stalest pair, then overflow the cap.
        assert!(Arc::ptr_eq(&ab, &engine.prepare_join(&a, &b)));
        let _bc = engine.prepare_join(&b, &c);
        assert_eq!(
            engine
                .metrics()
                .snapshot()
                .counter("msj_prepared_cache_evictions_total"),
            1
        );
        // The touched pair survived; the evicted pair is rebuilt on next
        // use (fresh Arc, identical results).
        assert!(Arc::ptr_eq(&ab, &engine.prepare_join(&a, &b)));
        let rebuilt = engine.prepare_join(&a, &c);
        assert!(!Arc::ptr_eq(&ac, &rebuilt));
        assert_eq!(rebuilt.run().pairs, expect_ac);
    }

    #[test]
    fn kernel_dispatch_gauge_marks_the_selected_path() {
        let engine = SpatialEngine::new(JoinConfig::default());
        let snap = engine.metrics().snapshot();
        let label = JoinConfig::default().kernel_dispatch().label();
        assert_eq!(
            snap.gauge(&format!("msj_kernel_dispatch{{path=\"{label}\"}}")),
            1.0
        );
        // Forcing scalar moves the marker.
        let scalar = SpatialEngine::new(JoinConfig::builder().force_scalar(true).build());
        let snap = scalar.metrics().snapshot();
        assert_eq!(snap.gauge("msj_kernel_dispatch{path=\"scalar\"}"), 1.0);
        // Traces carry the same label per request.
        let traced = SpatialEngine::new(
            JoinConfig::builder()
                .obs(msj_obs::ObsConfig::with_traces(8))
                .build(),
        );
        let h = traced.register(msj_datagen::small_carto(10, 16.0, 2004));
        let _ = traced.prepare_join(&h, &h).run();
        let traces = traced.recent_traces();
        assert!(!traces.is_empty());
        assert!(traces
            .iter()
            .all(|t| t.dispatch == traced.config().kernel_dispatch().label()));
    }

    #[test]
    fn submit_surface_covers_all_request_shapes() {
        let rel = msj_datagen::small_carto(40, 24.0, 1003);
        let world = rel.bounding_rect().unwrap();
        let engine = SpatialEngine::new(JoinConfig::default());
        let h = engine.register(rel.clone());
        let p = Point::new(
            world.xmin() + world.width() * 0.4,
            world.ymin() + world.height() * 0.6,
        );
        let w = Rect::from_bounds(
            p.x,
            p.y,
            p.x + world.width() * 0.1,
            p.y + world.height() * 0.1,
        );
        let responses = engine.submit_batch([
            Request::SelfJoin {
                dataset: h.id(),
                execution: Some(Execution::Fused { threads: 2 }),
            },
            Request::Point {
                dataset: h.id(),
                point: p,
            },
            Request::Window {
                dataset: h.id(),
                window: w,
            },
            Request::Point {
                dataset: 99,
                point: p,
            },
        ]);
        let Ok(Response::Join(join)) = &responses[0] else {
            panic!("self-join failed: {:?}", responses[0].as_ref().err());
        };
        // Self-join ground truth by exhaustive scan.
        let mut expect = Vec::new();
        let mut counts = OpCounts::new();
        for oa in rel.iter() {
            for ob in rel.iter() {
                if oa.mbr().intersects(&ob.mbr())
                    && msj_exact::quadratic_intersects(&oa.region, &ob.region, &mut counts)
                {
                    expect.push((oa.id, ob.id));
                }
            }
        }
        assert_eq!(sorted(join.pairs.clone()), sorted(expect));
        let Ok(Response::Selection(point)) = &responses[1] else {
            panic!("point query failed");
        };
        let expect_point: Vec<ObjectId> = rel
            .iter()
            .filter(|o| o.region.contains_point(p))
            .map(|o| o.id)
            .collect();
        let mut got = point.ids.clone();
        got.sort_unstable();
        assert_eq!(got, expect_point);
        assert!(matches!(responses[2], Ok(Response::Selection(_))));
        assert!(matches!(responses[3], Err(EngineError::UnknownDataset(99))));
    }

    #[test]
    #[should_panic(expected = "not registered on this engine")]
    fn foreign_handles_are_rejected() {
        let rel = msj_datagen::small_carto(10, 16.0, 1009);
        let this = SpatialEngine::new(JoinConfig::default());
        let other = SpatialEngine::new(JoinConfig::default());
        let mine = this.register(rel.clone());
        let foreign = other.register(rel);
        // A foreign handle must never reach the id-keyed cache.
        let _ = this.prepare_join(&mine, &foreign);
    }

    #[test]
    fn admission_refuses_before_preparing() {
        let a = msj_datagen::small_carto(30, 24.0, 1010);
        let b = msj_datagen::small_carto(30, 24.0, 1011);
        let engine = SpatialEngine::new(JoinConfig::default()).with_admission_limit(0.0);
        let (ha, hb) = (engine.register(a), engine.register(b));
        let denied = engine.submit(Request::Join {
            a: ha.id(),
            b: hb.id(),
            execution: None,
        });
        assert!(matches!(denied, Err(EngineError::AdmissionDenied { .. })));
        // The refused join never built (or cached) pair-level state.
        assert!(engine.cached_join((ha.id(), hb.id())).is_none());
    }

    #[test]
    fn responses_carry_cost_accounting() {
        let a = msj_datagen::small_carto(40, 24.0, 1004);
        let b = msj_datagen::small_carto(40, 24.0, 1005);
        let engine = SpatialEngine::new(JoinConfig::default());
        let (ha, hb) = (engine.register(a), engine.register(b));
        let first = engine
            .submit(Request::Join {
                a: ha.id(),
                b: hb.id(),
                execution: None,
            })
            .unwrap();
        // First submission: a-priori estimate.
        assert!(!first.admission().from_history);
        assert!(first.admission().estimated_s > 0.0);
        let Response::Join(first) = &first else {
            panic!()
        };
        assert!(first.admission.cost.filter_yield_observed > 0.0);
        assert!(first.admission.cost.raster_decided_observed > 0.0);
        // Second submission: the estimate comes from the observed run.
        let second = engine
            .submit(Request::Join {
                a: ha.id(),
                b: hb.id(),
                execution: None,
            })
            .unwrap();
        assert!(second.admission().from_history);
        let observed = figure18_cost(&first.stats, ExactCostKind::TrStar, engine.cost_model());
        assert!((second.admission().estimated_s - observed.total_s()).abs() < 1e-9);
    }

    #[test]
    fn admission_limit_refuses_expensive_joins() {
        let a = msj_datagen::small_carto(30, 24.0, 1006);
        let b = msj_datagen::small_carto(30, 24.0, 1007);
        let engine = SpatialEngine::new(JoinConfig::default()).with_admission_limit(0.0);
        let (ha, hb) = (engine.register(a), engine.register(b));
        let denied = engine.submit(Request::Join {
            a: ha.id(),
            b: hb.id(),
            execution: None,
        });
        assert!(
            matches!(denied, Err(EngineError::AdmissionDenied { .. })),
            "zero budget must refuse every join: {denied:?}"
        );
        // Selections are not admission-controlled (they are the cheap
        // traffic admission control protects).
        let world = ha.relation().bounding_rect().unwrap();
        let ok = engine.submit(Request::Point {
            dataset: ha.id(),
            point: Point::new(world.xmin(), world.ymin()),
        });
        assert!(ok.is_ok());
    }

    #[test]
    fn metrics_and_traces_populate_after_requests() {
        let a = msj_datagen::small_carto(40, 24.0, 1012);
        let b = msj_datagen::small_carto(40, 24.0, 1013);
        let world = a.bounding_rect().unwrap();
        let engine =
            SpatialEngine::new(JoinConfig::builder().obs(ObsConfig::with_traces(8)).build());
        let (ha, hb) = (engine.register(a), engine.register(b));
        let p = Point::new(
            world.xmin() + world.width() * 0.5,
            world.ymin() + world.height() * 0.5,
        );
        let w = Rect::from_bounds(
            p.x,
            p.y,
            p.x + world.width() * 0.1,
            p.y + world.height() * 0.1,
        );
        let responses = engine.submit_batch([
            Request::Join {
                a: ha.id(),
                b: hb.id(),
                execution: None,
            },
            Request::Point {
                dataset: ha.id(),
                point: p,
            },
            Request::Window {
                dataset: ha.id(),
                window: w,
            },
        ]);
        assert!(responses.iter().all(|r| r.is_ok()));
        let snap = engine.metrics().snapshot();
        assert_eq!(snap.counter("msj_datasets_registered_total"), 2);
        assert_eq!(snap.counter("msj_admission_accept_total"), 1);
        assert_eq!(snap.counter("msj_prepared_cache_misses_total"), 1);
        for kind in ["join", "point", "window"] {
            let key = format!("msj_request_latency_nanos{{kind=\"{kind}\"}}");
            let hist = snap
                .histogram(&key)
                .unwrap_or_else(|| panic!("{key} missing"));
            assert_eq!(hist.count, 1, "{key}");
            assert!(hist.sum > 0, "{key} recorded no time");
        }
        assert!(snap.counter("msj_step_nanos_total{step=\"step0\"}") > 0);
        assert!(snap.counter("msj_step_nanos_total{step=\"step1\"}") > 0);
        // Both exporters render the live values.
        let prom = engine.metrics().render_prometheus();
        for family in [
            "msj_request_latency_nanos",
            "msj_step_nanos_total",
            "msj_admission_shed_total",
        ] {
            assert!(prom.contains(family), "{family} missing from exposition");
        }
        assert!(engine
            .metrics()
            .snapshot_json()
            .contains(msj_obs::SNAPSHOT_SCHEMA));
        // The ring carries one trace per request, newest last.
        let traces = engine.recent_traces();
        assert_eq!(traces.len(), 3);
        assert!(traces.iter().all(|t| t.admitted));
        let join_trace = traces
            .iter()
            .find(|t| t.kind == "join")
            .expect("join trace");
        assert!(join_trace.candidates > 0);
        assert!(join_trace.estimated_s > 0.0);
        assert_eq!(join_trace.datasets, (ha.id(), hb.id()));
    }

    #[test]
    fn disabled_obs_is_silent_and_changes_nothing() {
        let a = msj_datagen::small_carto(40, 24.0, 1014);
        let b = msj_datagen::small_carto(40, 24.0, 1015);
        let on = SpatialEngine::new(JoinConfig::default());
        let off = SpatialEngine::new(JoinConfig::builder().obs(ObsConfig::disabled()).build());
        let (oa, ob) = (on.register(a.clone()), on.register(b.clone()));
        let (fa, fb) = (off.register(a), off.register(b));
        let want = on.prepare_join(&oa, &ob).run();
        let got = off.prepare_join(&fa, &fb).run();
        assert_eq!(got.pairs, want.pairs);
        assert_eq!(got.stats.exact_ops, want.stats.exact_ops);
        // Disabled means zero clock reads: every wall-clock stat is zero
        // and the registry stays empty.
        assert_eq!(got.stats.step0_nanos, 0);
        assert_eq!(
            got.stats.step1_nanos + got.stats.step2_nanos + got.stats.step3_nanos,
            0
        );
        assert!(got.worker_lanes.is_empty());
        let snap = off.metrics().snapshot();
        assert_eq!(snap.counter("msj_datasets_registered_total"), 0);
        assert_eq!(snap.counter("msj_request_latency_nanos{kind=\"join\"}"), 0);
        assert!(off.recent_traces().is_empty());
        // The enabled engine recorded the same traffic.
        assert!(
            on.metrics()
                .snapshot()
                .counter("msj_step_nanos_total{step=\"step1\"}")
                > 0
        );
    }

    #[test]
    fn run_history_is_a_bounded_ring() {
        let a = msj_datagen::small_carto(12, 16.0, 1016);
        let b = msj_datagen::small_carto(12, 16.0, 1017);
        let engine = SpatialEngine::new(JoinConfig::default());
        let (ha, hb) = (engine.register(a), engine.register(b));
        let prepared = engine.prepare_join(&ha, &hb);
        for _ in 0..RUN_HISTORY + 5 {
            prepared.run();
        }
        let history = prepared.run_history();
        assert_eq!(history.len(), RUN_HISTORY);
        assert_eq!(
            history.last().unwrap().result_pairs,
            prepared.last_stats().unwrap().result_pairs
        );
        assert!(history
            .iter()
            .all(|s| s.result_pairs == prepared.last_stats().unwrap().result_pairs));
    }

    #[test]
    fn shed_requests_are_counted_and_traced() {
        let a = msj_datagen::small_carto(30, 24.0, 1018);
        let b = msj_datagen::small_carto(30, 24.0, 1019);
        let engine =
            SpatialEngine::new(JoinConfig::builder().obs(ObsConfig::with_traces(4)).build())
                .with_admission_limit(0.0);
        let (ha, hb) = (engine.register(a), engine.register(b));
        let denied = engine.submit(Request::Join {
            a: ha.id(),
            b: hb.id(),
            execution: None,
        });
        assert!(matches!(denied, Err(EngineError::AdmissionDenied { .. })));
        let snap = engine.metrics().snapshot();
        assert_eq!(snap.counter("msj_admission_shed_total"), 1);
        assert_eq!(snap.counter("msj_admission_accept_total"), 0);
        let traces = engine.recent_traces();
        assert_eq!(traces.len(), 1);
        assert!(!traces[0].admitted);
        assert_eq!(traces[0].results, 0);
    }

    /// Satellite: the retry-after hint a network front derives from an
    /// `AdmissionDenied` must come from the history-informed §5 estimate
    /// when the pair has run before, and from the a-priori size-based
    /// estimate otherwise — `from_history` pins which path produced it.
    #[test]
    fn admission_denied_provenance_pins_history_and_a_priori_paths() {
        let engine = SpatialEngine::new(JoinConfig::default());
        let a = engine.register(msj_datagen::small_carto(30, 24.0, 1301));
        let b = engine.register(msj_datagen::small_carto(30, 24.0, 1302));
        let request = Request::Join {
            a: a.id(),
            b: b.id(),
            execution: None,
        };
        // Fresh pair, tight limit: the a-priori estimate decides.
        engine.set_admission_limit(Some(0.0));
        match engine.submit(request) {
            Err(EngineError::AdmissionDenied {
                from_history,
                estimated_s,
                ..
            }) => {
                assert!(!from_history, "no run history exists yet");
                assert!(estimated_s > 0.0);
            }
            other => panic!("expected AdmissionDenied, got {other:?}"),
        }
        // Lift the limit, run once (history forms), tighten again: the
        // observed-history estimate decides.
        engine.set_admission_limit(None);
        assert_eq!(engine.admission_limit(), None);
        engine.submit(request).expect("admitted without a limit");
        engine.set_admission_limit(Some(0.0));
        assert_eq!(engine.admission_limit(), Some(0.0));
        match engine.submit(request) {
            Err(EngineError::AdmissionDenied {
                from_history,
                estimated_s,
                ..
            }) => {
                assert!(from_history, "the pair ran; history must decide");
                assert!(estimated_s > 0.0);
            }
            other => panic!("expected AdmissionDenied, got {other:?}"),
        }
    }

    #[test]
    fn engine_batched_selections_match_serial_responses() {
        let rel = msj_datagen::small_carto(60, 24.0, 1401);
        let world = rel.bounding_rect().unwrap();
        let engine = SpatialEngine::new(JoinConfig::default());
        let h = engine.register(rel);
        let points: Vec<Point> = (0..20)
            .map(|i| {
                Point::new(
                    world.xmin() + world.width() * (i as f64 * 0.37).fract(),
                    world.ymin() + world.height() * (i as f64 * 0.61).fract(),
                )
            })
            .collect();
        let windows: Vec<Rect> = (0..12)
            .map(|i| {
                let cx = world.xmin() + world.width() * (i as f64 * 0.31).fract();
                let cy = world.ymin() + world.height() * (i as f64 * 0.47).fract();
                let side = world.width() * (0.01 + 0.08 * (i as f64 * 0.13).fract());
                Rect::from_bounds(cx, cy, cx + side, cy + side)
            })
            .collect();
        let batched = engine.point_query_batch(&h, &points);
        assert_eq!(batched.len(), points.len());
        for (i, &p) in points.iter().enumerate() {
            let serial = engine.point_query(&h, p);
            assert_eq!(batched[i].ids, serial.ids, "point {p:?}");
            assert_eq!(batched[i].exact_ops, serial.exact_ops);
            assert_eq!(batched[i].stats.candidates, serial.stats.candidates);
            assert_eq!(batched[i].stats.exact_tests, serial.stats.exact_tests);
        }
        let batched = engine.window_query_batch(&h, &windows);
        assert_eq!(batched.len(), windows.len());
        for (i, w) in windows.iter().enumerate() {
            let serial = engine.window_query(&h, *w);
            assert_eq!(batched[i].ids, serial.ids, "window {w:?}");
            assert_eq!(batched[i].exact_ops, serial.exact_ops);
            assert_eq!(batched[i].stats.candidates, serial.stats.candidates);
            assert_eq!(batched[i].stats.exact_tests, serial.stats.exact_tests);
        }
        // The batched path records one latency sample per query.
        let snap = engine.metrics().snapshot();
        let hist = snap
            .histogram("msj_request_latency_nanos{kind=\"point\"}")
            .expect("point latency family exists");
        assert_eq!(hist.count, 2 * points.len() as u64);
    }

    /// Satellite requirement: one test that matches on *every*
    /// `EngineError` variant, so adding a variant without Display/kind
    /// coverage fails here first.
    #[test]
    fn engine_error_matches_display_and_kind_on_every_variant() {
        let variants: Vec<EngineError> = vec![
            EngineError::UnknownDataset(7),
            EngineError::AdmissionDenied {
                estimated_s: 2.0,
                limit_s: 1.0,
                from_history: false,
            },
            EngineError::DeadlineExceeded {
                elapsed: Duration::from_millis(12),
                partial_candidates: 34,
            },
            EngineError::Cancelled {
                partial_candidates: 5,
            },
            EngineError::WorkerPanicked {
                worker: 2,
                message: "boom".into(),
            },
            EngineError::DegradedUnavailable {
                reason: "raster_checksum",
            },
        ];
        for err in variants {
            // The enum is #[non_exhaustive]; the wildcard arm is the
            // forward-compatibility seam every caller needs (redundant
            // only inside the defining crate, hence the allow).
            #[allow(unreachable_patterns)]
            let expected_kind = match &err {
                EngineError::UnknownDataset(id) => {
                    assert_eq!(*id, 7);
                    "unknown_dataset"
                }
                EngineError::AdmissionDenied {
                    estimated_s,
                    limit_s,
                    from_history,
                } => {
                    assert!(estimated_s > limit_s);
                    assert!(!from_history);
                    "admission_denied"
                }
                EngineError::DeadlineExceeded {
                    elapsed,
                    partial_candidates,
                } => {
                    assert_eq!(*elapsed, Duration::from_millis(12));
                    assert_eq!(*partial_candidates, 34);
                    "deadline_exceeded"
                }
                EngineError::Cancelled { partial_candidates } => {
                    assert_eq!(*partial_candidates, 5);
                    "cancelled"
                }
                EngineError::WorkerPanicked { worker, message } => {
                    assert_eq!(*worker, 2);
                    assert_eq!(message, "boom");
                    "worker_panicked"
                }
                EngineError::DegradedUnavailable { reason } => {
                    assert_eq!(*reason, "raster_checksum");
                    "degraded_unavailable"
                }
                _ => unreachable!("non_exhaustive wildcard"),
            };
            assert_eq!(err.kind(), expected_kind);
            assert!(ERROR_KINDS.contains(&err.kind()));
            let shown = err.to_string();
            assert!(!shown.is_empty());
            let dyn_err: &dyn std::error::Error = &err;
            assert_eq!(dyn_err.to_string(), shown);
        }
    }

    #[test]
    fn expired_deadline_returns_deadline_exceeded_and_engine_recovers() {
        let a = msj_datagen::small_carto(60, 24.0, 1101);
        let b = msj_datagen::small_carto(60, 24.0, 1102);
        let engine = SpatialEngine::new(JoinConfig::default());
        let (ha, hb) = (engine.register(a), engine.register(b));
        for execution in [Execution::Serial, Execution::Fused { threads: 4 }] {
            // Baseline under this exact policy (serial keeps Step-1
            // order; fused sorts canonically).
            let expect = match engine
                .submit(Request::Join {
                    a: ha.id(),
                    b: hb.id(),
                    execution: Some(execution),
                })
                .unwrap()
            {
                Response::Join(resp) => resp.pairs,
                other => panic!("expected a join response, got {other:?}"),
            };
            // A token whose deadline already passed stops the run at the
            // first batch boundary.
            let token = CancelToken::with_deadline(Duration::ZERO);
            let err = engine
                .submit_with_cancel(
                    Request::Join {
                        a: ha.id(),
                        b: hb.id(),
                        execution: Some(execution),
                    },
                    &token,
                )
                .unwrap_err();
            match err {
                EngineError::DeadlineExceeded { elapsed, .. } => {
                    assert!(elapsed >= Duration::ZERO)
                }
                other => panic!("expected DeadlineExceeded, got {other:?}"),
            }
            // Same engine, same request, fresh token: byte-identical.
            let clean = engine
                .submit(Request::Join {
                    a: ha.id(),
                    b: hb.id(),
                    execution: Some(execution),
                })
                .unwrap();
            match clean {
                Response::Join(resp) => assert_eq!(resp.pairs, expect),
                other => panic!("expected a join response, got {other:?}"),
            }
        }
        let snap = engine.metrics().snapshot();
        assert!(snap.counter("msj_deadline_exceeded_total") >= 2);
        assert_eq!(
            snap.counter("msj_request_errors_total{kind=\"deadline_exceeded\"}"),
            2
        );
    }

    #[test]
    fn config_deadline_arms_a_token_per_request() {
        let a = msj_datagen::small_carto(60, 24.0, 1103);
        let b = msj_datagen::small_carto(60, 24.0, 1104);
        let engine = SpatialEngine::new(JoinConfig::builder().deadline(Duration::ZERO).build());
        let (ha, hb) = (engine.register(a), engine.register(b));
        let err = engine
            .submit(Request::Join {
                a: ha.id(),
                b: hb.id(),
                execution: None,
            })
            .unwrap_err();
        assert!(matches!(err, EngineError::DeadlineExceeded { .. }));
    }

    #[test]
    fn explicit_cancellation_returns_cancelled() {
        let a = msj_datagen::small_carto(40, 24.0, 1105);
        let b = msj_datagen::small_carto(40, 24.0, 1106);
        let engine = SpatialEngine::new(JoinConfig::default());
        let (ha, hb) = (engine.register(a), engine.register(b));
        let token = CancelToken::new();
        token.cancel();
        let err = engine
            .submit_with_cancel(
                Request::Join {
                    a: ha.id(),
                    b: hb.id(),
                    execution: None,
                },
                &token,
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::Cancelled { .. }));
        assert_eq!(
            engine
                .metrics()
                .snapshot()
                .counter("msj_request_cancelled_total"),
            1
        );
    }

    #[test]
    fn injected_cancel_fault_stops_mid_run() {
        let a = msj_datagen::small_carto(80, 24.0, 1107);
        let b = msj_datagen::small_carto(80, 24.0, 1108);
        let engine = SpatialEngine::new(
            JoinConfig::builder()
                .batch_pairs(16)
                .fault(FaultConfig::seeded(
                    3,
                    msj_fault::FaultKind::CancelAtBatch { batch: 0 },
                ))
                .build(),
        );
        let (ha, hb) = (engine.register(a), engine.register(b));
        let token = CancelToken::new();
        let err = engine
            .submit_with_cancel(
                Request::Join {
                    a: ha.id(),
                    b: hb.id(),
                    execution: None,
                },
                &token,
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::Cancelled { .. }), "{err:?}");
        // The injected fault is one-shot per engine: the retry completes.
        let clean = engine.submit(Request::Join {
            a: ha.id(),
            b: hb.id(),
            execution: None,
        });
        assert!(clean.is_ok());
        let snap = engine.metrics().snapshot();
        assert_eq!(
            snap.counter("msj_fault_injected_total{site=\"cancel_at_batch\"}"),
            1
        );
    }

    #[test]
    fn injected_worker_panic_is_contained_and_engine_stays_clean() {
        let a = msj_datagen::small_carto(80, 24.0, 1109);
        let b = msj_datagen::small_carto(80, 24.0, 1110);
        for execution in [Execution::Serial, Execution::Fused { threads: 4 }] {
            // Fault-free reference under this exact policy.
            let baseline = {
                let engine = SpatialEngine::new(JoinConfig::builder().execution(execution).build());
                let (ha, hb) = (engine.register(a.clone()), engine.register(b.clone()));
                engine.prepare_join(&ha, &hb).run().pairs
            };
            for seed in [1u64, 42, 977] {
                // Small batches guarantee every run sees at least
                // BATCH_SPREAD batch boundaries, so the seeded fault
                // always lands.
                let engine = SpatialEngine::new(
                    JoinConfig::builder()
                        .execution(execution)
                        .batch_pairs(8)
                        .fault(FaultConfig::seeded(seed, msj_fault::FaultKind::WorkerPanic))
                        .build(),
                );
                let (ha, hb) = (engine.register(a.clone()), engine.register(b.clone()));
                let request = Request::Join {
                    a: ha.id(),
                    b: hb.id(),
                    execution: None,
                };
                let err = engine.submit(request).unwrap_err();
                match &err {
                    EngineError::WorkerPanicked { message, .. } => {
                        assert!(message.contains("injected fault"), "{message}")
                    }
                    other => panic!("expected WorkerPanicked, got {other:?}"),
                }
                // The panic never poisons engine state: the identical
                // request on the same instance completes byte-identically
                // to the fault-free engine.
                let clean = engine
                    .submit(Request::Join {
                        a: ha.id(),
                        b: hb.id(),
                        execution: None,
                    })
                    .unwrap();
                match clean {
                    Response::Join(resp) => assert_eq!(resp.pairs, baseline),
                    other => panic!("expected a join response, got {other:?}"),
                }
                let snap = engine.metrics().snapshot();
                assert_eq!(snap.counter("msj_worker_panics_total"), 1);
                assert_eq!(
                    snap.counter("msj_fault_injected_total{site=\"worker_panic\"}"),
                    1
                );
            }
        }
    }

    #[test]
    fn injected_raster_corruption_degrades_and_answers_stay_correct() {
        let a = msj_datagen::small_carto(60, 24.0, 1111);
        let b = msj_datagen::small_carto(60, 24.0, 1112);
        let baseline = {
            let engine = SpatialEngine::new(JoinConfig::default());
            let (ha, hb) = (engine.register(a.clone()), engine.register(b.clone()));
            engine.prepare_join(&ha, &hb).run().pairs
        };
        let engine = SpatialEngine::new(
            JoinConfig::builder()
                .obs(ObsConfig::with_traces(8))
                .fault(FaultConfig::seeded(5, msj_fault::FaultKind::RasterCorrupt))
                .build(),
        );
        let (ha, hb) = (engine.register(a.clone()), engine.register(b.clone()));
        let prepared = engine.prepare_join(&ha, &hb);
        assert_eq!(prepared.degraded_reason(), Some("fault_injected"));
        // Filter-only path: answers identical, Step 2a simply absent.
        let result = prepared.run();
        assert_eq!(result.pairs, baseline);
        assert_eq!(result.stats.raster_hits + result.stats.raster_drops, 0);
        let snap = engine.metrics().snapshot();
        assert_eq!(
            snap.counter("msj_degraded_mode_total{reason=\"fault_injected\"}"),
            1
        );
        assert_eq!(
            snap.counter("msj_fault_injected_total{site=\"raster_corrupt\"}"),
            1
        );
        assert!(engine
            .recent_traces()
            .iter()
            .any(|t| t.kind == "degraded_mode"));
        // With the fallback forbidden, the same corruption is an error.
        let strict = SpatialEngine::new(
            JoinConfig::builder()
                .allow_degraded(false)
                .fault(FaultConfig::seeded(5, msj_fault::FaultKind::RasterCorrupt))
                .build(),
        );
        let (sa, sb) = (strict.register(a), strict.register(b));
        let err = strict
            .try_prepare_join(&sa, &sb)
            .err()
            .expect("strict engine must refuse the corrupted pair");
        assert_eq!(
            err,
            EngineError::DegradedUnavailable {
                reason: "fault_injected"
            }
        );
    }

    #[test]
    fn failed_requests_are_traced_and_counted_per_kind() {
        let a = msj_datagen::small_carto(40, 24.0, 1113);
        let b = msj_datagen::small_carto(40, 24.0, 1114);
        let engine = SpatialEngine::new(
            JoinConfig::builder()
                .obs(ObsConfig::with_traces(8))
                .batch_pairs(8)
                .fault(FaultConfig::seeded(9, msj_fault::FaultKind::WorkerPanic))
                .build(),
        );
        let (ha, hb) = (engine.register(a), engine.register(b));
        let err = engine
            .submit(Request::Join {
                a: ha.id(),
                b: hb.id(),
                execution: None,
            })
            .unwrap_err();
        assert!(matches!(err, EngineError::WorkerPanicked { .. }));
        let traces = engine.recent_traces();
        assert!(traces.iter().any(|t| t.kind == "join_panic"));
        let prom = engine.metrics().render_prometheus();
        assert!(prom.contains("msj_worker_panics_total 1"));
        assert!(prom.contains("msj_request_errors_total{kind=\"worker_panicked\"} 1"));
    }

    #[test]
    fn engine_selections_match_linear_scan() {
        let rel = msj_datagen::small_carto(60, 24.0, 1008);
        let world = rel.bounding_rect().unwrap();
        for config in [JoinConfig::default(), JoinConfig::version1()] {
            let engine = SpatialEngine::new(config);
            let h = engine.register(rel.clone());
            for i in 0..25 {
                let p = Point::new(
                    world.xmin() + world.width() * (i as f64 * 0.37).fract(),
                    world.ymin() + world.height() * (i as f64 * 0.61).fract(),
                );
                let mut got = engine.point_query(&h, p).ids;
                got.sort_unstable();
                let mut expect: Vec<ObjectId> = rel
                    .iter()
                    .filter(|o| o.region.contains_point(p))
                    .map(|o| o.id)
                    .collect();
                expect.sort_unstable();
                assert_eq!(got, expect, "point {p:?}");
                let side = world.width() * 0.07;
                let w = Rect::from_bounds(p.x, p.y, p.x + side, p.y + side);
                let mut got = engine.window_query(&h, w).ids;
                got.sort_unstable();
                let mut expect: Vec<ObjectId> = rel
                    .iter()
                    .filter(|o| msj_exact::window::region_intersects_rect_reference(&o.region, &w))
                    .map(|o| o.id)
                    .collect();
                expect.sort_unstable();
                assert_eq!(got, expect, "window {w:?}");
            }
        }
    }
}

//! Configuration of the multi-step join processor.

use crate::execution::Execution;
use msj_approx::{ConservativeKind, ProgressiveKind};
use msj_exact::ExactAlgorithm;
use msj_fault::FaultConfig;
use msj_obs::ObsConfig;
use std::time::Duration;

/// The Step-1 candidate backend (see [`crate::candidates`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Synchronized R*-tree traversal with paged I/O accounting — the
    /// paper's MBR-join and the default.
    #[default]
    RStarTraversal,
    /// Uniform-grid partitioned plane sweep with reference-point
    /// deduplication, tiles executed over scoped threads
    /// (`msj-partition`).
    PartitionedSweep {
        /// Tiles per grid side (the grid has `tiles_per_axis²` tiles).
        tiles_per_axis: usize,
        /// Worker threads for the tile sweeps (0 = available
        /// parallelism).
        threads: usize,
    },
}

impl Backend {
    /// A partitioned backend sized for the machine: ~4 tiles per
    /// available core on each axis works well across the repro
    /// workloads.
    pub fn partitioned_auto() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Backend::PartitionedSweep {
            tiles_per_axis: (2 * cores).clamp(4, 64),
            threads: 0,
        }
    }
}

/// How Step 0 builds the R*-trees of [`Backend::RStarTraversal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TreeLoader {
    /// Sort-tile-recursive bulk loading ([`msj_sam::RStarTree::bulk_load`])
    /// — one sort plus a linear packing pass per level, fully packed
    /// pages. The default: Step 0 always has the whole relation in hand.
    #[default]
    Str,
    /// N top-down R* insertions
    /// ([`msj_sam::RStarTree::insert_all`]) — what a dynamically grown
    /// tree looks like (~70 % page fill, splits and forced reinserts).
    /// Use this to model the paper's incrementally maintained indexes.
    Incremental,
}

/// Default candidate batch size (pairs per
/// [`msj_geom::PairSink::consume_batch`] delivery and per cross-thread
/// chunk of the fused R*-traversal fan-out).
pub const DEFAULT_BATCH_PAIRS: usize = 1024;

/// Default [`JoinConfig::prepared_cache_cap`]: generous enough that
/// typical engines never evict, small enough to bound resident pair
/// state on engines joining many dataset combinations.
pub const DEFAULT_PREPARED_CACHE_CAP: usize = 64;

/// Configuration of the **Step-2a raster pre-filter**
/// ([`msj_approx::raster`]): Hilbert-interval signatures decided by a
/// merge-intersect, run on every candidate batch *before* the
/// conservative/progressive approximation chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RasterConfig {
    /// Whether the stage runs at all. On by default: the stage decides
    /// the majority of candidates for a few bitwise comparisons each.
    pub enabled: bool,
    /// `log2` of the grid cells per axis. `0` (the default) auto-sizes
    /// from the workload via [`msj_approx::auto_grid_bits`] — the §5
    /// cost-model tradeoff between decided candidates and signature
    /// bytes. Explicit values are clamped to
    /// [`msj_approx::MIN_GRID_BITS`]`..=`[`msj_approx::MAX_GRID_BITS`].
    pub grid_bits: u32,
}

impl Default for RasterConfig {
    fn default() -> Self {
        RasterConfig {
            enabled: true,
            grid_bits: 0,
        }
    }
}

impl RasterConfig {
    /// The stage disabled (candidates go straight to the conservative
    /// test, the pre-PR-4 behavior).
    pub const fn off() -> Self {
        RasterConfig {
            enabled: false,
            grid_bits: 0,
        }
    }

    /// Enabled with the grid auto-sized from the workload (the default).
    pub const fn auto() -> Self {
        RasterConfig {
            enabled: true,
            grid_bits: 0,
        }
    }

    /// Enabled at an explicit grid resolution (`0` = auto-size).
    pub const fn with_bits(grid_bits: u32) -> Self {
        RasterConfig {
            enabled: true,
            grid_bits,
        }
    }
}

/// Complete configuration of one spatial-join execution (and of a
/// resident [`crate::SpatialEngine`], which applies it to every dataset
/// it registers).
///
/// The struct is `#[non_exhaustive]`: outside `msj-core` it is
/// constructed through the presets ([`JoinConfig::default`],
/// [`JoinConfig::version1`]…) or the builder, never by struct literal —
/// so the configuration surface can grow without breaking callers.
///
/// ```
/// use msj_core::{Execution, JoinConfig, RasterConfig};
///
/// let config = JoinConfig::builder()
///     .execution(Execution::Fused { threads: 4 })
///     .raster(RasterConfig::auto())
///     .build();
/// assert_eq!(config.execution, Execution::Fused { threads: 4 });
/// ```
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinConfig {
    /// Step-1 candidate backend (R*-tree traversal unless configured
    /// otherwise).
    pub backend: Backend,
    /// R*-tree page size in bytes (the paper uses 2 KB and 4 KB).
    pub page_size: usize,
    /// LRU buffer size in bytes (128 KB in §3.4; 32 pages in §5).
    pub buffer_bytes: usize,
    /// Conservative approximation stored in addition to the MBR; `None`
    /// disables the false-hit filter (version 1 of §5).
    pub conservative: Option<ConservativeKind>,
    /// Progressive approximation stored in addition; `None` disables the
    /// hit filter.
    pub progressive: Option<ProgressiveKind>,
    /// Whether to run the false-area test (§3.3) on candidates that the
    /// progressive test could not identify.
    pub false_area_test: bool,
    /// The Step-2a raster-interval pre-filter. Enabled by default; the
    /// response set is identical either way (the stage only decides
    /// candidates it can prove).
    pub raster: RasterConfig,
    /// Exact geometry algorithm for the final step.
    pub exact: ExactAlgorithm,
    /// How Steps 2–3 are scheduled relative to Step 1: serially on the
    /// calling thread, or fused into the Step-1 workers
    /// ([`crate::execution`]).
    pub execution: Execution,
    /// How Step 0 builds the R*-trees: STR bulk loading (default) or
    /// incremental insertion. Join/query *results* are identical either
    /// way; page counts, I/O counters and candidate order differ.
    pub loader: TreeLoader,
    /// Candidate pairs per batched sink delivery
    /// ([`msj_geom::PairSink::consume_batch`]) and per cross-thread chunk
    /// of the fused R*-traversal fan-out. Larger batches amortize
    /// dispatch and synchronization; smaller ones bound latency and the
    /// in-flight candidate count. Clamped to at least 1.
    pub batch_pairs: usize,
    /// Runtime observability: step/request timing, worker telemetry and
    /// opt-in per-request traces ([`msj_obs::ObsConfig`]). Enabled by
    /// default (no traces); [`msj_obs::ObsConfig::disabled`] skips every
    /// clock read, leaving all `*_nanos` statistics at zero.
    pub obs: ObsConfig,
    /// Pin every hot-loop kernel to the scalar reference path instead of
    /// the widest SIMD path the CPU supports. Results are byte-identical
    /// either way (the agreement gate enforces it); this knob exists for
    /// A/B measurement and as a belt-and-braces escape hatch. The
    /// `MSJ_FORCE_SCALAR` environment variable forces scalar even when
    /// this is `false`.
    pub force_scalar: bool,
    /// Maximum prepared joins a [`crate::SpatialEngine`] keeps resident
    /// at once; the least-recently-used pair is evicted beyond the cap
    /// (and rebuilt transparently on next use). Clamped to at least 1.
    pub prepared_cache_cap: usize,
    /// Per-request wall-clock deadline. When set, every join request
    /// arms a [`msj_geom::CancelToken`] with this budget; a request that
    /// outlives it stops cooperatively at the next batch boundary and
    /// returns [`crate::EngineError::DeadlineExceeded`]. `None` (the
    /// default) means no deadline.
    pub deadline: Option<Duration>,
    /// Deterministic fault injection ([`msj_fault::FaultConfig`]).
    /// Disabled by default (one never-taken branch per batch); the
    /// `MSJ_FAULT_PLAN` / `MSJ_FAULT_SEED` environment variables arm a
    /// plan when this field is disabled.
    pub fault: FaultConfig,
    /// Whether a join whose Step-2a raster signatures fail their
    /// checksum may continue on the filter-only path (correct answers,
    /// degraded speed). `false` turns detected corruption into
    /// [`crate::EngineError::DegradedUnavailable`] instead. Defaults to
    /// `true`.
    pub allow_degraded: bool,
}

impl Default for JoinConfig {
    /// The paper's recommended configuration (§3.6, §5 version 3):
    /// 5-corner + MER in addition to the MBR, TR*-trees with M = 3 for
    /// the exact step, 4 KB pages, 128 KB LRU buffer.
    fn default() -> Self {
        JoinConfig {
            backend: Backend::RStarTraversal,
            page_size: 4096,
            buffer_bytes: 128 * 1024,
            conservative: Some(ConservativeKind::FiveCorner),
            progressive: Some(ProgressiveKind::Mer),
            false_area_test: false,
            raster: RasterConfig::default(),
            exact: ExactAlgorithm::TrStar { max_entries: 3 },
            execution: Execution::Serial,
            loader: TreeLoader::Str,
            batch_pairs: DEFAULT_BATCH_PAIRS,
            obs: ObsConfig::default(),
            force_scalar: false,
            prepared_cache_cap: DEFAULT_PREPARED_CACHE_CAP,
            deadline: None,
            fault: FaultConfig::disabled(),
            allow_degraded: true,
        }
    }
}

impl JoinConfig {
    /// §5 "version 1": no additional approximations (and no raster
    /// signatures — this version models the filterless join, every
    /// candidate reaching the exact step), plane-sweep exact step.
    pub fn version1() -> Self {
        JoinConfig {
            conservative: None,
            progressive: None,
            false_area_test: false,
            raster: RasterConfig::off(),
            exact: ExactAlgorithm::PlaneSweep { restrict: true },
            ..JoinConfig::default()
        }
    }

    /// §5 "version 2": 5-C and MER approximations, plane-sweep exact step.
    pub fn version2() -> Self {
        JoinConfig {
            conservative: Some(ConservativeKind::FiveCorner),
            progressive: Some(ProgressiveKind::Mer),
            false_area_test: false,
            exact: ExactAlgorithm::PlaneSweep { restrict: true },
            ..JoinConfig::default()
        }
    }

    /// §5 "version 3": 5-C + MER, TR*-tree exact step — the paper's final
    /// recommendation.
    pub fn version3() -> Self {
        JoinConfig::default()
    }

    /// Starts a builder seeded with the defaults
    /// ([`JoinConfig::default`], the paper's version 3).
    pub fn builder() -> JoinConfigBuilder {
        JoinConfigBuilder {
            config: JoinConfig::default(),
        }
    }

    /// Re-opens this configuration as a builder (the replacement for
    /// functional-update syntax on the now-`#[non_exhaustive]` struct:
    /// `JoinConfig::version2().to_builder().false_area_test(true).build()`).
    pub fn to_builder(self) -> JoinConfigBuilder {
        JoinConfigBuilder { config: self }
    }

    /// The kernel dispatch path this configuration selects: scalar when
    /// [`JoinConfig::force_scalar`] (or the `MSJ_FORCE_SCALAR`
    /// environment variable) is set, otherwise the widest path the CPU
    /// supports. Resolved once per join/engine and threaded to every
    /// kernel call site.
    pub fn kernel_dispatch(&self) -> msj_geom::KernelDispatch {
        msj_geom::KernelDispatch::select(self.force_scalar)
    }

    /// Extra leaf-entry bytes for the stored approximations (MBR itself
    /// and the 32-byte object info are part of the baseline layout).
    pub fn extra_leaf_bytes(&self) -> usize {
        let cons = self
            .conservative
            .map_or(0, |k| msj_approx::conservative_bytes(k, None));
        let prog = self.progressive.map_or(0, msj_approx::progressive_bytes);
        cons + prog
    }
}

/// Builder for [`JoinConfig`] — the only way to assemble a non-preset
/// configuration outside `msj-core`.
///
/// Every setter overrides one knob; unset knobs keep the seed value
/// ([`JoinConfig::builder`] seeds the defaults, [`JoinConfig::to_builder`]
/// seeds an existing configuration).
#[derive(Debug, Clone)]
pub struct JoinConfigBuilder {
    config: JoinConfig,
}

impl JoinConfigBuilder {
    /// Step-1 candidate backend.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.config.backend = backend;
        self
    }

    /// R*-tree page size in bytes.
    pub fn page_size(mut self, bytes: usize) -> Self {
        self.config.page_size = bytes;
        self
    }

    /// LRU buffer size in bytes.
    pub fn buffer_bytes(mut self, bytes: usize) -> Self {
        self.config.buffer_bytes = bytes;
        self
    }

    /// Conservative approximation stored in addition to the MBR
    /// (`None` disables the false-hit filter).
    pub fn conservative(mut self, kind: impl Into<Option<ConservativeKind>>) -> Self {
        self.config.conservative = kind.into();
        self
    }

    /// Progressive approximation stored in addition (`None` disables the
    /// hit filter).
    pub fn progressive(mut self, kind: impl Into<Option<ProgressiveKind>>) -> Self {
        self.config.progressive = kind.into();
        self
    }

    /// Whether to run the false-area test (§3.3).
    pub fn false_area_test(mut self, enabled: bool) -> Self {
        self.config.false_area_test = enabled;
        self
    }

    /// The Step-2a raster pre-filter stage.
    pub fn raster(mut self, raster: RasterConfig) -> Self {
        self.config.raster = raster;
        self
    }

    /// Exact geometry algorithm for the final step.
    pub fn exact(mut self, exact: ExactAlgorithm) -> Self {
        self.config.exact = exact;
        self
    }

    /// How Steps 2–3 are scheduled relative to Step 1.
    pub fn execution(mut self, execution: Execution) -> Self {
        self.config.execution = execution;
        self
    }

    /// How Step 0 builds the R*-trees.
    pub fn loader(mut self, loader: TreeLoader) -> Self {
        self.config.loader = loader;
        self
    }

    /// Candidate pairs per batched sink delivery (clamped to ≥ 1).
    pub fn batch_pairs(mut self, pairs: usize) -> Self {
        self.config.batch_pairs = pairs;
        self
    }

    /// Observability: step timing, worker telemetry, per-request traces.
    pub fn obs(mut self, obs: ObsConfig) -> Self {
        self.config.obs = obs;
        self
    }

    /// Pin every hot-loop kernel to the scalar reference path.
    pub fn force_scalar(mut self, force: bool) -> Self {
        self.config.force_scalar = force;
        self
    }

    /// Caps resident prepared joins (LRU eviction beyond `cap`).
    pub fn prepared_cache_cap(mut self, cap: usize) -> Self {
        self.config.prepared_cache_cap = cap;
        self
    }

    /// Per-request wall-clock deadline (`None` = unlimited).
    pub fn deadline(mut self, deadline: impl Into<Option<Duration>>) -> Self {
        self.config.deadline = deadline.into();
        self
    }

    /// Deterministic fault-injection plan
    /// ([`msj_fault::FaultConfig::disabled`] by default).
    pub fn fault(mut self, fault: FaultConfig) -> Self {
        self.config.fault = fault;
        self
    }

    /// Whether raster-corruption detection degrades to the filter-only
    /// path (`true`, default) or fails the request (`false`).
    pub fn allow_degraded(mut self, allow: bool) -> Self {
        self.config.allow_degraded = allow;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> JoinConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_version3() {
        assert_eq!(JoinConfig::default(), JoinConfig::version3());
        let c = JoinConfig::default();
        assert_eq!(c.conservative, Some(ConservativeKind::FiveCorner));
        assert_eq!(c.progressive, Some(ProgressiveKind::Mer));
        assert_eq!(c.exact, ExactAlgorithm::TrStar { max_entries: 3 });
    }

    #[test]
    fn version1_has_no_filter() {
        let c = JoinConfig::version1();
        assert!(c.conservative.is_none());
        assert!(c.progressive.is_none());
        assert_eq!(c.extra_leaf_bytes(), 0);
    }

    #[test]
    fn default_backend_is_rstar() {
        assert_eq!(JoinConfig::default().backend, Backend::RStarTraversal);
        assert_eq!(Backend::default(), Backend::RStarTraversal);
    }

    #[test]
    fn default_execution_is_serial() {
        assert_eq!(JoinConfig::default().execution, Execution::Serial);
    }

    #[test]
    fn partitioned_auto_is_bounded() {
        let Backend::PartitionedSweep {
            tiles_per_axis,
            threads,
        } = Backend::partitioned_auto()
        else {
            panic!("partitioned_auto must be a partitioned backend");
        };
        assert!((4..=64).contains(&tiles_per_axis));
        assert_eq!(threads, 0);
    }

    #[test]
    fn default_loader_is_str_and_batch_is_bounded() {
        let c = JoinConfig::default();
        assert_eq!(c.loader, TreeLoader::Str);
        assert_eq!(TreeLoader::default(), TreeLoader::Str);
        assert_eq!(c.batch_pairs, DEFAULT_BATCH_PAIRS);
        assert!(c.batch_pairs >= 1);
    }

    #[test]
    fn raster_defaults_on_with_auto_sizing() {
        let c = JoinConfig::default();
        assert!(c.raster.enabled);
        assert_eq!(c.raster.grid_bits, 0, "0 = auto-size");
        // Version 1 models the filterless join: no raster either.
        assert!(!JoinConfig::version1().raster.enabled);
        assert_eq!(RasterConfig::with_bits(8).grid_bits, 8);
        assert!(RasterConfig::with_bits(8).enabled);
        assert!(!RasterConfig::off().enabled);
    }

    #[test]
    fn builder_round_trips_and_overrides() {
        // Untouched builder == defaults.
        assert_eq!(JoinConfig::builder().build(), JoinConfig::default());
        // Every setter lands on its field.
        let c = JoinConfig::builder()
            .backend(Backend::PartitionedSweep {
                tiles_per_axis: 8,
                threads: 2,
            })
            .page_size(2048)
            .buffer_bytes(64 * 1024)
            .conservative(ConservativeKind::ConvexHull)
            .progressive(None)
            .false_area_test(true)
            .raster(RasterConfig::with_bits(7))
            .exact(ExactAlgorithm::Quadratic)
            .execution(Execution::Fused { threads: 3 })
            .loader(TreeLoader::Incremental)
            .batch_pairs(64)
            .obs(ObsConfig::disabled())
            .force_scalar(true)
            .prepared_cache_cap(3)
            .deadline(Duration::from_millis(250))
            .fault(FaultConfig::seeded(7, msj_fault::FaultKind::WorkerPanic))
            .allow_degraded(false)
            .build();
        assert_eq!(
            c.backend,
            Backend::PartitionedSweep {
                tiles_per_axis: 8,
                threads: 2
            }
        );
        assert_eq!(c.page_size, 2048);
        assert_eq!(c.buffer_bytes, 64 * 1024);
        assert_eq!(c.conservative, Some(ConservativeKind::ConvexHull));
        assert_eq!(c.progressive, None);
        assert!(c.false_area_test);
        assert_eq!(c.raster, RasterConfig::with_bits(7));
        assert_eq!(c.exact, ExactAlgorithm::Quadratic);
        assert_eq!(c.execution, Execution::Fused { threads: 3 });
        assert_eq!(c.loader, TreeLoader::Incremental);
        assert_eq!(c.batch_pairs, 64);
        assert_eq!(c.obs, ObsConfig::disabled());
        assert!(!c.obs.enabled);
        assert!(c.force_scalar);
        assert_eq!(c.kernel_dispatch(), msj_geom::KernelDispatch::Scalar);
        assert_eq!(c.prepared_cache_cap, 3);
        assert_eq!(c.deadline, Some(Duration::from_millis(250)));
        assert_eq!(
            c.fault,
            FaultConfig::seeded(7, msj_fault::FaultKind::WorkerPanic)
        );
        assert!(!c.allow_degraded);
        // Robustness knobs default to off / permissive.
        assert_eq!(JoinConfig::default().deadline, None);
        assert_eq!(JoinConfig::default().fault, FaultConfig::disabled());
        assert!(!JoinConfig::default().fault.enabled());
        assert!(JoinConfig::default().allow_degraded);
        assert!(!JoinConfig::default().force_scalar);
        assert_eq!(
            JoinConfig::default().prepared_cache_cap,
            DEFAULT_PREPARED_CACHE_CAP
        );
        // The default configuration keeps observability on (no traces).
        assert!(JoinConfig::default().obs.enabled);
        assert_eq!(JoinConfig::default().obs.trace_capacity, 0);
        // to_builder picks up a preset.
        let v2 = JoinConfig::version2().to_builder().build();
        assert_eq!(v2, JoinConfig::version2());
        assert_eq!(RasterConfig::auto(), RasterConfig::default());
    }

    #[test]
    fn extra_bytes_follow_storage_model() {
        // 5-C (40 B) + MER (16 B) = 56 B extra per leaf entry.
        assert_eq!(JoinConfig::version2().extra_leaf_bytes(), 56);
        let rmbr_mer = JoinConfig {
            conservative: Some(ConservativeKind::Rmbr),
            ..JoinConfig::default()
        };
        assert_eq!(rmbr_mer.extra_leaf_bytes(), 20 + 16);
    }
}

//! Step two: the geometric filter (§3), with a **compiled filter plan**.
//!
//! Candidates from the MBR-join are classified using the stored
//! approximations into *hits* (certainly intersecting), *false hits*
//! (certainly disjoint) and remaining *candidates* for the exact step.
//!
//! ## Step 2a: the raster pre-filter
//!
//! When [`crate::config::RasterConfig`] is enabled (the default), every
//! candidate batch first runs through the **raster-interval signature
//! stage** ([`msj_approx::raster`]): a merge-intersect of two sorted
//! Hilbert-interval lists that proves intersection (a FULL cell shared
//! with any cell of the partner), proves disjointness (no shared cells),
//! or falls through. The stage touches only the flat interval arenas —
//! the convex/MER columns are never loaded for candidates it decides —
//! and both relations are rasterized on one shared grid built in Step 0.
//!
//! ## The compiled plan
//!
//! The test chain — raster → conservative → progressive → (optional)
//! false-area — is fixed per *join*, not per candidate: the configured
//! approximation kinds decide it once. The filter therefore compiles a
//! [`FilterPlan`] when it is built and
//! [`GeometricFilter::classify_batch`] runs the chain as a monomorphized
//! loop over the columnar store payloads (`msj-approx`'s interval arena /
//! flat convex arena / MER rectangle column) — one plan dispatch per
//! batch instead of four `Option`/enum branches per candidate. Per-pair
//! [`GeometricFilter::classify`] remains as the reference chain; the two
//! are outcome-identical by construction (and by test).

use msj_approx::{
    auto_grid_bits, raster_decide, raster_decide_with, ConservativeKind, ConservativeStore,
    ProgressiveKind, ProgressiveStore, RasterDecision, RasterGrid, RasterStore, MAX_GRID_BITS,
    MIN_GRID_BITS,
};
use msj_geom::kernels::{self, KernelDispatch};
use msj_geom::{convex_intersect, ObjectId, Relation};
use msj_obs::{Span, Step, StepSpans};
use std::sync::Arc;

/// Classification of one candidate pair by the geometric filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterOutcome {
    /// Step 2a: the raster signatures share a FULL cell → objects
    /// intersect.
    HitRaster,
    /// Step 2a: the raster signatures share no cell → objects are
    /// disjoint.
    DropRaster,
    /// Conservative approximations are disjoint → objects are disjoint.
    FalseHit,
    /// Progressive approximations intersect → objects intersect.
    HitProgressive,
    /// The false-area test proved an intersection.
    HitFalseArea,
    /// Inconclusive: the exact geometry must decide.
    Candidate,
}

/// The monomorphized classification loop selected once per join (see the
/// module docs). Which plan a filter compiled is observable for tests and
/// reports via [`GeometricFilter::plan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterPlan {
    /// No approximations configured: every candidate stays a candidate.
    Passthrough,
    /// Convex conservative rings (flat arena) + MER progressive columns,
    /// no false-area test — the paper's recommended 5-C + MER
    /// configuration and every other convex/MER combination.
    ConvexMer,
    /// Convex conservative rings only (no progressive store, no
    /// false-area test).
    ConvexOnly,
    /// The general view-dispatching chain: curved conservative kinds,
    /// MEC progressive stores, progressive-only configurations, or the
    /// false-area test.
    Generic,
}

/// The geometric filter: per-relation columnar approximation stores, the
/// configured tests, and the plan compiled from them.
///
/// Every store sits behind [`Arc`]: the resident engine builds the
/// conservative/progressive stores once per registered dataset and every
/// prepared join over that dataset shares them; the raster stores are
/// pair-level (both relations must be rasterized on one shared grid) and
/// are shared across repeated runs of the same prepared join.
pub struct GeometricFilter {
    /// Step-2a raster signatures, both relations on one shared grid.
    raster_a: Option<Arc<RasterStore>>,
    raster_b: Option<Arc<RasterStore>>,
    /// FNV checksums of the two raster stores recorded when they were
    /// built ([`msj_approx::RasterStore::checksum`]); the engine
    /// re-verifies them to detect signature corruption and fall back to
    /// the filter-only path.
    raster_checksums: Option<(u64, u64)>,
    conservative_a: Option<Arc<ConservativeStore>>,
    conservative_b: Option<Arc<ConservativeStore>>,
    progressive_a: Option<Arc<ProgressiveStore>>,
    progressive_b: Option<Arc<ProgressiveStore>>,
    use_false_area: bool,
    plan: FilterPlan,
    /// Kernel path for the batched loops (Step-2a wide merge-intersect,
    /// MER fast-accept). The per-pair reference chain stays scalar; both
    /// are outcome-identical.
    dispatch: KernelDispatch,
}

impl GeometricFilter {
    /// Precomputes the configured approximations for both relations and
    /// compiles the filter plan. No raster stage — attach one with
    /// [`GeometricFilter::with_raster`] or go through
    /// [`GeometricFilter::from_config`].
    pub fn build(
        rel_a: &Relation,
        rel_b: &Relation,
        conservative: Option<ConservativeKind>,
        progressive: Option<ProgressiveKind>,
        use_false_area: bool,
    ) -> Self {
        Self::from_shared(
            conservative.map(|k| Arc::new(ConservativeStore::build(k, rel_a))),
            conservative.map(|k| Arc::new(ConservativeStore::build(k, rel_b))),
            progressive.map(|k| Arc::new(ProgressiveStore::build(k, rel_a))),
            progressive.map(|k| Arc::new(ProgressiveStore::build(k, rel_b))),
            use_false_area,
        )
    }

    /// Assembles a filter from pre-built shared stores (the resident
    /// engine's path: each store was built once when its dataset was
    /// registered) and compiles the plan.
    pub fn from_shared(
        conservative_a: Option<Arc<ConservativeStore>>,
        conservative_b: Option<Arc<ConservativeStore>>,
        progressive_a: Option<Arc<ProgressiveStore>>,
        progressive_b: Option<Arc<ProgressiveStore>>,
        use_false_area: bool,
    ) -> Self {
        let mut filter = GeometricFilter {
            raster_a: None,
            raster_b: None,
            raster_checksums: None,
            conservative_a,
            conservative_b,
            progressive_a,
            progressive_b,
            use_false_area,
            plan: FilterPlan::Generic,
            dispatch: KernelDispatch::auto(),
        };
        filter.plan = filter.compile();
        filter
    }

    /// Pins the kernel dispatch path of the batched loops (the engine
    /// sets this from [`crate::JoinConfig::kernel_dispatch`]). Outcomes
    /// are identical on every path.
    pub fn with_dispatch(mut self, dispatch: KernelDispatch) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// The kernel dispatch path the batched loops run on.
    pub fn dispatch(&self) -> KernelDispatch {
        self.dispatch
    }

    /// Attaches the Step-2a raster stage: both relations rasterized on
    /// one shared grid (`grid_bits == 0` auto-sizes from the workload,
    /// explicit values are clamped to the supported range). A no-op for
    /// empty workspaces.
    pub fn with_raster(mut self, rel_a: &Relation, rel_b: &Relation, grid_bits: u32) -> Self {
        let bits = if grid_bits == 0 {
            auto_grid_bits(rel_a, rel_b)
        } else {
            grid_bits.clamp(MIN_GRID_BITS, MAX_GRID_BITS)
        };
        if let Some(grid) = RasterGrid::covering(rel_a, rel_b, bits) {
            let store_a = RasterStore::build(&grid, rel_a);
            let store_b = RasterStore::build(&grid, rel_b);
            self.raster_checksums = Some((store_a.checksum(), store_b.checksum()));
            self.raster_a = Some(Arc::new(store_a));
            self.raster_b = Some(Arc::new(store_b));
        }
        self
    }

    /// Attaches pre-built Step-2a raster stores — the engine's
    /// store-backed cold-start path, where both stores were decoded from
    /// a persisted pair segment instead of rasterized from the
    /// relations. Checksums are recorded at attach exactly like
    /// [`GeometricFilter::with_raster`] records them at build, so
    /// [`GeometricFilter::verify_raster`] holds the same
    /// corruption-detection contract on both paths. The caller is
    /// responsible for the stores sharing one grid (the persisted pair
    /// segment guarantees it).
    pub fn with_shared_raster(mut self, a: Arc<RasterStore>, b: Arc<RasterStore>) -> Self {
        self.raster_checksums = Some((a.checksum(), b.checksum()));
        self.raster_a = Some(a);
        self.raster_b = Some(b);
        self
    }

    /// Recomputes the raster-store checksums and compares them with the
    /// values recorded at build. `true` means intact (vacuously so when
    /// the stage is inactive); `false` means the signatures no longer
    /// match what was built — the engine then degrades to the
    /// filter-only path or refuses, per
    /// [`crate::JoinConfig::allow_degraded`].
    pub fn verify_raster(&self) -> bool {
        match (&self.raster_a, &self.raster_b, self.raster_checksums) {
            (Some(a), Some(b), Some((ca, cb))) => a.checksum() == ca && b.checksum() == cb,
            (None, None, _) => true,
            // Stores without recorded checksums (or vice versa) are
            // themselves an integrity violation.
            _ => false,
        }
    }

    /// Drops the Step-2a raster stage, keeping the conservative /
    /// progressive chain — the **degraded mode** entered on detected
    /// signature corruption. The response set is unaffected (the stage
    /// only pre-decides pairs the chain and exact step would decide the
    /// same way); only speed degrades.
    pub fn strip_raster(&mut self) {
        self.raster_a = None;
        self.raster_b = None;
        self.raster_checksums = None;
    }

    /// The filter a [`crate::JoinConfig`] asks for: built stores when any
    /// approximation is configured, the raster stage when enabled,
    /// [`GeometricFilter::disabled`] otherwise.
    pub fn from_config(config: &crate::JoinConfig, rel_a: &Relation, rel_b: &Relation) -> Self {
        let filter = if config.conservative.is_some() || config.progressive.is_some() {
            GeometricFilter::build(
                rel_a,
                rel_b,
                config.conservative,
                config.progressive,
                config.false_area_test,
            )
        } else {
            GeometricFilter::disabled()
        };
        let filter = if config.raster.enabled {
            filter.with_raster(rel_a, rel_b, config.raster.grid_bits)
        } else {
            filter
        };
        filter.with_dispatch(config.kernel_dispatch())
    }

    /// A filter that does nothing (version 1: every candidate goes to the
    /// exact step).
    pub fn disabled() -> Self {
        GeometricFilter {
            raster_a: None,
            raster_b: None,
            raster_checksums: None,
            conservative_a: None,
            conservative_b: None,
            progressive_a: None,
            progressive_b: None,
            use_false_area: false,
            plan: FilterPlan::Passthrough,
            dispatch: KernelDispatch::auto(),
        }
    }

    /// Selects the batched loop the configured stores admit.
    fn compile(&self) -> FilterPlan {
        let cons_convex = match (&self.conservative_a, &self.conservative_b) {
            (Some(a), Some(b)) => {
                if a.convex_slices().is_some() && b.convex_slices().is_some() {
                    Some(true)
                } else {
                    Some(false)
                }
            }
            (None, None) => None,
            _ => Some(false),
        };
        let prog_mer = match (&self.progressive_a, &self.progressive_b) {
            (Some(a), Some(b)) => Some(a.mer_column().is_some() && b.mer_column().is_some()),
            (None, None) => None,
            _ => Some(false),
        };
        match (cons_convex, prog_mer, self.use_false_area) {
            (None, None, false) => FilterPlan::Passthrough,
            (Some(true), Some(true), false) => FilterPlan::ConvexMer,
            (Some(true), None, false) => FilterPlan::ConvexOnly,
            _ => FilterPlan::Generic,
        }
    }

    /// The plan compiled for this filter.
    pub fn plan(&self) -> FilterPlan {
        self.plan
    }

    /// Whether the Step-2a raster stage runs (signatures built for both
    /// relations).
    pub fn raster_active(&self) -> bool {
        self.raster_a.is_some() && self.raster_b.is_some()
    }

    /// The raster stores, when the stage is active (Step-0 reporting).
    pub fn raster_stores(&self) -> Option<(&RasterStore, &RasterStore)> {
        match (&self.raster_a, &self.raster_b) {
            (Some(a), Some(b)) => Some((a, b)),
            _ => None,
        }
    }

    /// Classifies one candidate pair.
    ///
    /// Test order follows the paper, extended by Step 2a: the raster
    /// signature test first (bitwise-cheap, decides both directions),
    /// then the conservative test (§3.2 — most surviving disjoint pairs
    /// die here), then the progressive hit test (§3.3), then optionally
    /// the false-area test (§3.3 notes it adds almost nothing once
    /// progressive approximations are stored).
    ///
    /// This is the reference chain;
    /// [`classify_batch`](GeometricFilter::classify_batch) produces
    /// identical outcomes.
    pub fn classify(&self, id_a: ObjectId, id_b: ObjectId) -> FilterOutcome {
        if let (Some(ra), Some(rb)) = (&self.raster_a, &self.raster_b) {
            match raster_decide(ra.signature(id_a), rb.signature(id_b)) {
                RasterDecision::Hit => return FilterOutcome::HitRaster,
                RasterDecision::Drop => return FilterOutcome::DropRaster,
                RasterDecision::Inconclusive => {}
            }
        }
        self.classify_chain(id_a, id_b)
    }

    /// The approximation chain of Step 2b (conservative → progressive →
    /// false-area), without the raster prepass.
    fn classify_chain(&self, id_a: ObjectId, id_b: ObjectId) -> FilterOutcome {
        if let (Some(ca), Some(cb)) = (&self.conservative_a, &self.conservative_b) {
            if !ca.view(id_a).intersects(&cb.view(id_b)) {
                return FilterOutcome::FalseHit;
            }
        }
        if let (Some(pa), Some(pb)) = (&self.progressive_a, &self.progressive_b) {
            if pa.get(id_a).intersects(&pb.get(id_b)) {
                return FilterOutcome::HitProgressive;
            }
        }
        if self.use_false_area {
            if let (Some(ca), Some(cb)) = (&self.conservative_a, &self.conservative_b) {
                if ca.false_area_test_with(id_a, cb, id_b) {
                    return FilterOutcome::HitFalseArea;
                }
            }
        }
        FilterOutcome::Candidate
    }

    /// Classifies a batch of candidate pairs into `out` (cleared first;
    /// `out[i]` is the outcome of `pairs[i]`). Returns the nanoseconds
    /// the Step-2a raster stage spent on the batch (0 when inactive) —
    /// the engine accumulates it into
    /// [`crate::MultiStepStats::step2a_nanos`].
    ///
    /// When the raster stage is active it runs first as its own loop
    /// over the whole batch — a merge-intersect of interval slices per
    /// pair, the convex/MER columns untouched — and only the undecided
    /// remainder reaches the compiled [`FilterPlan`]: the plan dispatch
    /// and the column lookups happen once per batch, and the per-pair
    /// loop reads the columnar payloads directly — outcome-identical to
    /// calling [`classify`](GeometricFilter::classify) per pair.
    pub fn classify_batch(
        &self,
        pairs: &[(ObjectId, ObjectId)],
        out: &mut Vec<FilterOutcome>,
    ) -> u64 {
        let spans = StepSpans::new();
        self.classify_batch_observed(pairs, out, Some(&spans));
        spans.get(Step::Step2a)
    }

    /// [`classify_batch`](GeometricFilter::classify_batch) with explicit
    /// span accounting: the Step-2a raster time lands in `spans` when
    /// given, and `None` skips the clock reads entirely (the
    /// [`msj_obs::ObsConfig::disabled`] path). Outcomes are identical
    /// either way.
    pub fn classify_batch_observed(
        &self,
        pairs: &[(ObjectId, ObjectId)],
        out: &mut Vec<FilterOutcome>,
        spans: Option<&StepSpans>,
    ) {
        out.clear();
        out.reserve(pairs.len());
        match (&self.raster_a, &self.raster_b) {
            (Some(ra), Some(rb)) => {
                // Step 2a: the raster loop decides in place; undecided
                // slots stay `Candidate` (a raster-decided slot is never
                // `Candidate`, so the fill below is unambiguous).
                let t_raster = spans.map(|_| Span::start());
                out.extend(pairs.iter().map(|&(id_a, id_b)| {
                    match raster_decide_with(self.dispatch, ra.signature(id_a), rb.signature(id_b))
                    {
                        RasterDecision::Hit => FilterOutcome::HitRaster,
                        RasterDecision::Drop => FilterOutcome::DropRaster,
                        RasterDecision::Inconclusive => FilterOutcome::Candidate,
                    }
                }));
                if let (Some(spans), Some(t)) = (spans, t_raster) {
                    spans.finish(Step::Step2a, t);
                }
            }
            _ => {
                out.extend(std::iter::repeat_n(FilterOutcome::Candidate, pairs.len()));
            }
        };
        self.classify_plan_fill(pairs, out);
    }

    /// The compiled-plan loop (Step 2b): classifies every slot still
    /// `Candidate` through the conservative/progressive chain, leaving
    /// decided slots untouched. The plan dispatch and column lookups
    /// happen once per call; no allocation.
    fn classify_plan_fill(&self, pairs: &[(ObjectId, ObjectId)], out: &mut [FilterOutcome]) {
        debug_assert_eq!(pairs.len(), out.len());
        match self.plan {
            FilterPlan::Passthrough => {}
            FilterPlan::ConvexMer => {
                let rings_a = self.conservative_a.as_ref().and_then(|s| s.convex_slices());
                let rings_b = self.conservative_b.as_ref().and_then(|s| s.convex_slices());
                let (Some(rings_a), Some(rings_b)) = (rings_a, rings_b) else {
                    unreachable!("ConvexMer plan requires convex columns");
                };
                let mer_a = self.progressive_a.as_ref().and_then(|s| s.mer_column());
                let mer_b = self.progressive_b.as_ref().and_then(|s| s.mer_column());
                let (Some(mer_a), Some(mer_b)) = (mer_a, mer_b) else {
                    unreachable!("ConvexMer plan requires MER columns");
                };
                // The MER fast-accept column is gathered wide for the
                // whole undecided remainder up front; the per-slot loop
                // keeps the paper's test order (conservative first) and
                // consumes the precomputed lane only when the convex test
                // passes — outcome-identical to testing inline. NaN
                // sentinel slots (degenerate MERs) compare false in every
                // lane, exactly like `Progressive::Empty`.
                let undecided: Vec<(u32, u32)> = out
                    .iter()
                    .zip(pairs)
                    .filter(|(slot, _)| **slot == FilterOutcome::Candidate)
                    .map(|(_, &pair)| pair)
                    .collect();
                let mut mer_hits = Vec::new();
                kernels::rect_pairs_intersect(
                    self.dispatch,
                    mer_a,
                    mer_b,
                    &undecided,
                    &mut mer_hits,
                );
                let mut next = 0usize;
                for (slot, &(id_a, id_b)) in out.iter_mut().zip(pairs) {
                    if *slot != FilterOutcome::Candidate {
                        continue;
                    }
                    let mer_hit = mer_hits[next];
                    next += 1;
                    *slot = if !convex_intersect(rings_a.ring(id_a), rings_b.ring(id_b)) {
                        FilterOutcome::FalseHit
                    } else if mer_hit {
                        FilterOutcome::HitProgressive
                    } else {
                        FilterOutcome::Candidate
                    };
                }
            }
            FilterPlan::ConvexOnly => {
                let rings_a = self.conservative_a.as_ref().and_then(|s| s.convex_slices());
                let rings_b = self.conservative_b.as_ref().and_then(|s| s.convex_slices());
                let (Some(rings_a), Some(rings_b)) = (rings_a, rings_b) else {
                    unreachable!("ConvexOnly plan requires convex columns");
                };
                for (slot, &(id_a, id_b)) in out.iter_mut().zip(pairs) {
                    if *slot == FilterOutcome::Candidate
                        && !convex_intersect(rings_a.ring(id_a), rings_b.ring(id_b))
                    {
                        *slot = FilterOutcome::FalseHit;
                    }
                }
            }
            FilterPlan::Generic => {
                for (slot, &(id_a, id_b)) in out.iter_mut().zip(pairs) {
                    if *slot == FilterOutcome::Candidate {
                        *slot = self.classify_chain(id_a, id_b);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msj_geom::{Point, Polygon, SpatialObject};

    fn rel(regions: Vec<Vec<(f64, f64)>>) -> Relation {
        Relation::new(
            regions
                .into_iter()
                .enumerate()
                .map(|(i, coords)| {
                    SpatialObject::new(
                        i as u32,
                        Polygon::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect())
                            .unwrap()
                            .into(),
                    )
                })
                .collect(),
        )
    }

    /// An L-shaped bracket and a small far-corner square: their MBRs
    /// overlap but their convex hulls do not — a classic false hit.
    fn bracket_relations() -> (Relation, Relation) {
        let a = rel(vec![vec![
            (0.0, 0.0),
            (10.0, 0.0),
            (10.0, 1.0),
            (1.0, 1.0),
            (1.0, 10.0),
            (0.0, 10.0),
        ]]);
        // The bracket's hull stays below the line x + y = 11; this square
        // sits entirely above it.
        let b = rel(vec![vec![
            (9.0, 9.0),
            (10.0, 9.0),
            (10.0, 10.0),
            (9.0, 10.0),
        ]]);
        (a, b)
    }

    #[test]
    fn disabled_filter_passes_everything_through() {
        let (a, b) = bracket_relations();
        let f = GeometricFilter::disabled();
        assert_eq!(f.plan(), FilterPlan::Passthrough);
        assert_eq!(f.classify(0, 0), FilterOutcome::Candidate);
        let mut out = Vec::new();
        f.classify_batch(&[(0, 0)], &mut out);
        assert_eq!(out, vec![FilterOutcome::Candidate]);
        let _ = (a, b);
    }

    #[test]
    fn conservative_filter_identifies_bracket_false_hit() {
        let (a, b) = bracket_relations();
        // The brackets hug opposite corners: their hulls are disjoint.
        let f = GeometricFilter::build(&a, &b, Some(ConservativeKind::ConvexHull), None, false);
        assert_eq!(f.plan(), FilterPlan::ConvexOnly);
        // MBRs do overlap (precondition of a candidate):
        assert!(a.object(0).mbr().intersects(&b.object(0).mbr()));
        assert_eq!(f.classify(0, 0), FilterOutcome::FalseHit);
    }

    #[test]
    fn progressive_filter_identifies_deep_overlap() {
        // Two fat squares overlapping deeply: their MERs intersect.
        let a = rel(vec![vec![
            (0.0, 0.0),
            (10.0, 0.0),
            (10.0, 10.0),
            (0.0, 10.0),
        ]]);
        let b = rel(vec![vec![
            (2.0, 2.0),
            (12.0, 2.0),
            (12.0, 12.0),
            (2.0, 12.0),
        ]]);
        let f = GeometricFilter::build(
            &a,
            &b,
            Some(ConservativeKind::FiveCorner),
            Some(ProgressiveKind::Mer),
            false,
        );
        assert_eq!(f.plan(), FilterPlan::ConvexMer);
        assert_eq!(f.classify(0, 0), FilterOutcome::HitProgressive);
    }

    #[test]
    fn false_area_test_fires_when_progressive_disabled() {
        let a = rel(vec![vec![
            (0.0, 0.0),
            (10.0, 0.0),
            (10.0, 10.0),
            (0.0, 10.0),
        ]]);
        let b = rel(vec![vec![
            (1.0, 1.0),
            (11.0, 1.0),
            (11.0, 11.0),
            (1.0, 11.0),
        ]]);
        // Squares equal their hulls: false area 0, intersection large.
        let f = GeometricFilter::build(&a, &b, Some(ConservativeKind::ConvexHull), None, true);
        // The false-area test forces the generic chain.
        assert_eq!(f.plan(), FilterPlan::Generic);
        assert_eq!(f.classify(0, 0), FilterOutcome::HitFalseArea);
    }

    #[test]
    fn inconclusive_pairs_remain_candidates() {
        // Thin diagonal strips crossing in the middle: conservative tests
        // cannot separate them, progressive approximations are thin and
        // miss each other.
        let a = rel(vec![vec![(0.0, 0.0), (0.4, 0.0), (10.0, 9.6), (9.6, 10.0)]]);
        let b = rel(vec![vec![(10.0, 0.4), (9.6, 0.0), (0.0, 9.6), (0.4, 10.0)]]);
        let f = GeometricFilter::build(
            &a,
            &b,
            Some(ConservativeKind::FiveCorner),
            Some(ProgressiveKind::Mer),
            false,
        );
        assert_eq!(f.classify(0, 0), FilterOutcome::Candidate);
    }

    #[test]
    fn progressive_runs_before_false_area() {
        // Deep overlap: both tests would fire; progressive wins by order.
        let a = rel(vec![vec![
            (0.0, 0.0),
            (10.0, 0.0),
            (10.0, 10.0),
            (0.0, 10.0),
        ]]);
        let f = GeometricFilter::build(
            &a,
            &a.clone(),
            Some(ConservativeKind::ConvexHull),
            Some(ProgressiveKind::Mer),
            true,
        );
        assert_eq!(f.classify(0, 0), FilterOutcome::HitProgressive);
    }

    /// Every plan must classify batches exactly as the per-pair reference
    /// chain — across kinds that compile to different plans.
    #[test]
    fn batch_classification_agrees_with_per_pair() {
        let a = msj_datagen::small_carto(40, 24.0, 7101);
        let b = msj_datagen::small_carto(40, 24.0, 7102);
        // All candidate-shaped pairs: every (i, j) with intersecting MBRs.
        let mut pairs = Vec::new();
        for oa in a.iter() {
            for ob in b.iter() {
                if oa.mbr().intersects(&ob.mbr()) {
                    pairs.push((oa.id, ob.id));
                }
            }
        }
        assert!(pairs.len() > 50, "need a meaningful batch");
        let configs: [(Option<ConservativeKind>, Option<ProgressiveKind>, bool); 7] = [
            (
                Some(ConservativeKind::FiveCorner),
                Some(ProgressiveKind::Mer),
                false,
            ), // ConvexMer
            (Some(ConservativeKind::ConvexHull), None, false), // ConvexOnly
            (
                Some(ConservativeKind::Mbr),
                Some(ProgressiveKind::Mer),
                false,
            ), // Generic
            (
                Some(ConservativeKind::Mbc),
                Some(ProgressiveKind::Mec),
                false,
            ), // Generic
            (
                Some(ConservativeKind::FiveCorner),
                Some(ProgressiveKind::Mer),
                true,
            ), // Generic (FA)
            (None, Some(ProgressiveKind::Mer), false),         // Generic
            (None, None, false),                               // Passthrough
        ];
        for (cons, prog, fa) in configs {
            let f = GeometricFilter::build(&a, &b, cons, prog, fa);
            let mut batched = Vec::new();
            f.classify_batch(&pairs, &mut batched);
            let per_pair: Vec<FilterOutcome> =
                pairs.iter().map(|&(x, y)| f.classify(x, y)).collect();
            assert_eq!(
                batched,
                per_pair,
                "plan {:?} ({cons:?}, {prog:?}, fa={fa}) diverged",
                f.plan()
            );
            // Batch boundaries must not matter.
            let mut chunked = Vec::new();
            let mut scratch = Vec::new();
            for chunk in pairs.chunks(17) {
                f.classify_batch(chunk, &mut scratch);
                chunked.extend_from_slice(&scratch);
            }
            assert_eq!(chunked, per_pair, "plan {:?} chunked", f.plan());
        }
    }

    /// The Step-2a stage must (a) agree with the per-pair reference
    /// chain, (b) only make decisions the exact geometry confirms, and
    /// (c) change nothing for pairs it cannot decide.
    #[test]
    fn raster_stage_is_sound_and_batch_agrees() {
        let a = msj_datagen::small_carto(48, 24.0, 7201);
        let b = msj_datagen::small_carto(48, 24.0, 7202);
        let mut pairs = Vec::new();
        for oa in a.iter() {
            for ob in b.iter() {
                if oa.mbr().intersects(&ob.mbr()) {
                    pairs.push((oa.id, ob.id));
                }
            }
        }
        assert!(pairs.len() > 50, "need a meaningful batch");
        let plain = GeometricFilter::build(
            &a,
            &b,
            Some(ConservativeKind::FiveCorner),
            Some(ProgressiveKind::Mer),
            false,
        );
        let rastered = GeometricFilter::build(
            &a,
            &b,
            Some(ConservativeKind::FiveCorner),
            Some(ProgressiveKind::Mer),
            false,
        )
        .with_raster(&a, &b, 0);
        assert!(rastered.raster_active() && !plain.raster_active());
        assert_eq!(rastered.plan(), plain.plan(), "raster is plan-orthogonal");

        let mut with = Vec::new();
        let mut without = Vec::new();
        rastered.classify_batch(&pairs, &mut with);
        assert_eq!(plain.classify_batch(&pairs, &mut without), 0);
        let per_pair: Vec<FilterOutcome> = pairs
            .iter()
            .map(|&(x, y)| rastered.classify(x, y))
            .collect();
        assert_eq!(with, per_pair, "batch diverged from reference chain");

        let mut decided = 0u64;
        let mut counts = msj_exact::OpCounts::new();
        for ((&(x, y), &w), &wo) in pairs.iter().zip(&with).zip(&without) {
            match w {
                FilterOutcome::HitRaster => {
                    decided += 1;
                    assert!(
                        msj_exact::quadratic_intersects(
                            &a.object(x).region,
                            &b.object(y).region,
                            &mut counts
                        ),
                        "raster Hit on disjoint pair ({x},{y})"
                    );
                }
                FilterOutcome::DropRaster => {
                    decided += 1;
                    assert!(
                        !msj_exact::quadratic_intersects(
                            &a.object(x).region,
                            &b.object(y).region,
                            &mut counts
                        ),
                        "raster Drop on intersecting pair ({x},{y})"
                    );
                }
                other => assert_eq!(other, wo, "undecided pair ({x},{y}) changed outcome"),
            }
        }
        assert!(decided > 0, "stage decided nothing on a carto workload");

        // Batch boundaries must not matter with the stage active either.
        let mut chunked = Vec::new();
        let mut scratch = Vec::new();
        for chunk in pairs.chunks(17) {
            rastered.classify_batch(chunk, &mut scratch);
            chunked.extend_from_slice(&scratch);
        }
        assert_eq!(chunked, per_pair);
    }

    #[test]
    fn raster_from_config_follows_the_switch() {
        let a = msj_datagen::small_carto(12, 20.0, 7203);
        let config = crate::JoinConfig::default();
        assert!(GeometricFilter::from_config(&config, &a, &a.clone()).raster_active());
        let off = crate::JoinConfig {
            raster: crate::config::RasterConfig::off(),
            ..config
        };
        assert!(!GeometricFilter::from_config(&off, &a, &a.clone()).raster_active());
        // Version 1 keeps its contract: no filtering whatsoever.
        let v1 = GeometricFilter::from_config(&crate::JoinConfig::version1(), &a, &a.clone());
        assert!(!v1.raster_active());
        assert_eq!(v1.plan(), FilterPlan::Passthrough);
        // Raster composes with a passthrough plan (no approximations).
        let raster_only = crate::JoinConfig {
            conservative: None,
            progressive: None,
            ..crate::JoinConfig::default()
        };
        let f = GeometricFilter::from_config(&raster_only, &a, &a.clone());
        assert!(f.raster_active());
        assert_eq!(f.plan(), FilterPlan::Passthrough);
        let (ra, rb) = f.raster_stores().expect("stores built");
        assert_eq!(ra.grid(), rb.grid(), "one shared grid");
        assert_eq!(ra.len(), a.len());
    }

    #[test]
    fn plan_compilation_matches_configuration() {
        let a = msj_datagen::small_carto(10, 20.0, 7103);
        let plans = [
            (
                Some(ConservativeKind::FiveCorner),
                Some(ProgressiveKind::Mer),
                false,
                FilterPlan::ConvexMer,
            ),
            (
                Some(ConservativeKind::Rmbr),
                Some(ProgressiveKind::Mer),
                false,
                FilterPlan::ConvexMer,
            ),
            (
                Some(ConservativeKind::FourCorner),
                None,
                false,
                FilterPlan::ConvexOnly,
            ),
            (
                Some(ConservativeKind::FiveCorner),
                Some(ProgressiveKind::Mec),
                false,
                FilterPlan::Generic,
            ),
            (
                Some(ConservativeKind::Mbr),
                None,
                false,
                FilterPlan::Generic,
            ),
            (None, Some(ProgressiveKind::Mer), false, FilterPlan::Generic),
            (
                Some(ConservativeKind::FiveCorner),
                Some(ProgressiveKind::Mer),
                true,
                FilterPlan::Generic,
            ),
        ];
        for (cons, prog, fa, expect) in plans {
            let f = GeometricFilter::build(&a, &a.clone(), cons, prog, fa);
            assert_eq!(f.plan(), expect, "({cons:?}, {prog:?}, fa={fa})");
        }
    }
}

//! Step two: the geometric filter (§3).
//!
//! Candidates from the MBR-join are classified using the stored
//! approximations into *hits* (certainly intersecting), *false hits*
//! (certainly disjoint) and remaining *candidates* for the exact step.

use msj_approx::{
    false_area_test, ConservativeKind, ConservativeStore, ProgressiveKind, ProgressiveStore,
};
use msj_geom::{ObjectId, Relation};

/// Classification of one candidate pair by the geometric filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterOutcome {
    /// Conservative approximations are disjoint → objects are disjoint.
    FalseHit,
    /// Progressive approximations intersect → objects intersect.
    HitProgressive,
    /// The false-area test proved an intersection.
    HitFalseArea,
    /// Inconclusive: the exact geometry must decide.
    Candidate,
}

/// The geometric filter: per-relation approximation stores plus the
/// configured tests.
pub struct GeometricFilter {
    conservative_a: Option<ConservativeStore>,
    conservative_b: Option<ConservativeStore>,
    progressive_a: Option<ProgressiveStore>,
    progressive_b: Option<ProgressiveStore>,
    use_false_area: bool,
}

impl GeometricFilter {
    /// Precomputes the configured approximations for both relations.
    pub fn build(
        rel_a: &Relation,
        rel_b: &Relation,
        conservative: Option<ConservativeKind>,
        progressive: Option<ProgressiveKind>,
        use_false_area: bool,
    ) -> Self {
        GeometricFilter {
            conservative_a: conservative.map(|k| ConservativeStore::build(k, rel_a)),
            conservative_b: conservative.map(|k| ConservativeStore::build(k, rel_b)),
            progressive_a: progressive.map(|k| ProgressiveStore::build(k, rel_a)),
            progressive_b: progressive.map(|k| ProgressiveStore::build(k, rel_b)),
            use_false_area,
        }
    }

    /// The filter a [`crate::JoinConfig`] asks for: built stores when any
    /// approximation is configured, [`GeometricFilter::disabled`]
    /// otherwise.
    pub fn from_config(config: &crate::JoinConfig, rel_a: &Relation, rel_b: &Relation) -> Self {
        if config.conservative.is_some() || config.progressive.is_some() {
            GeometricFilter::build(
                rel_a,
                rel_b,
                config.conservative,
                config.progressive,
                config.false_area_test,
            )
        } else {
            GeometricFilter::disabled()
        }
    }

    /// A filter that does nothing (version 1: every candidate goes to the
    /// exact step).
    pub fn disabled() -> Self {
        GeometricFilter {
            conservative_a: None,
            conservative_b: None,
            progressive_a: None,
            progressive_b: None,
            use_false_area: false,
        }
    }

    /// Classifies one candidate pair.
    ///
    /// Test order follows the paper: the cheap conservative test first
    /// (§3.2 — most disjoint pairs die here), then the progressive hit
    /// test (§3.3), then optionally the false-area test (§3.3 notes it
    /// adds almost nothing once progressive approximations are stored).
    pub fn classify(&self, id_a: ObjectId, id_b: ObjectId) -> FilterOutcome {
        if let (Some(ca), Some(cb)) = (&self.conservative_a, &self.conservative_b) {
            if !ca.approx(id_a).intersects(cb.approx(id_b)) {
                return FilterOutcome::FalseHit;
            }
        }
        if let (Some(pa), Some(pb)) = (&self.progressive_a, &self.progressive_b) {
            if pa.get(id_a).intersects(pb.get(id_b)) {
                return FilterOutcome::HitProgressive;
            }
        }
        if self.use_false_area {
            if let (Some(ca), Some(cb)) = (&self.conservative_a, &self.conservative_b) {
                if false_area_test(ca.get(id_a), cb.get(id_b)) {
                    return FilterOutcome::HitFalseArea;
                }
            }
        }
        FilterOutcome::Candidate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msj_geom::{Point, Polygon, SpatialObject};

    fn rel(regions: Vec<Vec<(f64, f64)>>) -> Relation {
        Relation::new(
            regions
                .into_iter()
                .enumerate()
                .map(|(i, coords)| {
                    SpatialObject::new(
                        i as u32,
                        Polygon::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect())
                            .unwrap()
                            .into(),
                    )
                })
                .collect(),
        )
    }

    /// An L-shaped bracket and a small far-corner square: their MBRs
    /// overlap but their convex hulls do not — a classic false hit.
    fn bracket_relations() -> (Relation, Relation) {
        let a = rel(vec![vec![
            (0.0, 0.0),
            (10.0, 0.0),
            (10.0, 1.0),
            (1.0, 1.0),
            (1.0, 10.0),
            (0.0, 10.0),
        ]]);
        // The bracket's hull stays below the line x + y = 11; this square
        // sits entirely above it.
        let b = rel(vec![vec![
            (9.0, 9.0),
            (10.0, 9.0),
            (10.0, 10.0),
            (9.0, 10.0),
        ]]);
        (a, b)
    }

    #[test]
    fn disabled_filter_passes_everything_through() {
        let (a, b) = bracket_relations();
        let f = GeometricFilter::disabled();
        assert_eq!(f.classify(0, 0), FilterOutcome::Candidate);
        let _ = (a, b);
    }

    #[test]
    fn conservative_filter_identifies_bracket_false_hit() {
        let (a, b) = bracket_relations();
        // The brackets hug opposite corners: their hulls are disjoint.
        let f = GeometricFilter::build(&a, &b, Some(ConservativeKind::ConvexHull), None, false);
        // MBRs do overlap (precondition of a candidate):
        assert!(a.object(0).mbr().intersects(&b.object(0).mbr()));
        assert_eq!(f.classify(0, 0), FilterOutcome::FalseHit);
    }

    #[test]
    fn progressive_filter_identifies_deep_overlap() {
        // Two fat squares overlapping deeply: their MERs intersect.
        let a = rel(vec![vec![
            (0.0, 0.0),
            (10.0, 0.0),
            (10.0, 10.0),
            (0.0, 10.0),
        ]]);
        let b = rel(vec![vec![
            (2.0, 2.0),
            (12.0, 2.0),
            (12.0, 12.0),
            (2.0, 12.0),
        ]]);
        let f = GeometricFilter::build(
            &a,
            &b,
            Some(ConservativeKind::FiveCorner),
            Some(ProgressiveKind::Mer),
            false,
        );
        assert_eq!(f.classify(0, 0), FilterOutcome::HitProgressive);
    }

    #[test]
    fn false_area_test_fires_when_progressive_disabled() {
        let a = rel(vec![vec![
            (0.0, 0.0),
            (10.0, 0.0),
            (10.0, 10.0),
            (0.0, 10.0),
        ]]);
        let b = rel(vec![vec![
            (1.0, 1.0),
            (11.0, 1.0),
            (11.0, 11.0),
            (1.0, 11.0),
        ]]);
        // Squares equal their hulls: false area 0, intersection large.
        let f = GeometricFilter::build(&a, &b, Some(ConservativeKind::ConvexHull), None, true);
        assert_eq!(f.classify(0, 0), FilterOutcome::HitFalseArea);
    }

    #[test]
    fn inconclusive_pairs_remain_candidates() {
        // Thin diagonal strips crossing in the middle: conservative tests
        // cannot separate them, progressive approximations are thin and
        // miss each other.
        let a = rel(vec![vec![(0.0, 0.0), (0.4, 0.0), (10.0, 9.6), (9.6, 10.0)]]);
        let b = rel(vec![vec![(10.0, 0.4), (9.6, 0.0), (0.0, 9.6), (0.4, 10.0)]]);
        let f = GeometricFilter::build(
            &a,
            &b,
            Some(ConservativeKind::FiveCorner),
            Some(ProgressiveKind::Mer),
            false,
        );
        assert_eq!(f.classify(0, 0), FilterOutcome::Candidate);
    }

    #[test]
    fn progressive_runs_before_false_area() {
        // Deep overlap: both tests would fire; progressive wins by order.
        let a = rel(vec![vec![
            (0.0, 0.0),
            (10.0, 0.0),
            (10.0, 10.0),
            (0.0, 10.0),
        ]]);
        let f = GeometricFilter::build(
            &a,
            &a.clone(),
            Some(ConservativeKind::ConvexHull),
            Some(ProgressiveKind::Mer),
            true,
        );
        assert_eq!(f.classify(0, 0), FilterOutcome::HitProgressive);
    }
}

//! # msj-fault — deterministic fault injection for the join engine
//!
//! The engine's failure story is only trustworthy if failures can be
//! *manufactured on demand, deterministically*: the chaos suite replays
//! the same seed and must see the same fault at the same site. This crate
//! is the seed-driven fault plan shared by the execution engine
//! (`msj-core`) and the chaos tests — vendored, dependency-free, and
//! zero-cost when disabled (every injection hook is one branch on a
//! `Copy` field).
//!
//! ## The model
//!
//! A [`FaultConfig`] is a *plan* ([`FaultKind`]) plus a *seed*. The plan
//! names what goes wrong; the seed picks **where** — which candidate
//! batch boundary the fault lands on, via a splitmix64 derivation over a
//! small spread ([`BATCH_SPREAD`]) — so sweeping seeds sweeps the
//! injection site without changing any other input. Batch boundaries,
//! not worker identities, anchor the derivation: under the fused
//! fan-out, *which* worker consumes a given chunk is scheduler-dependent
//! (a starved worker may never see one), while the global batch stream
//! always arrives. Per run, the engine arms a [`FaultSession`] and polls
//! it from the existing span boundaries:
//!
//! * [`FaultSession::on_batch`] — called by each consumer sink once per
//!   candidate batch (the Step-2/Step-3 span boundary). Returns the
//!   [`FaultAction`] to take: panic, stall, cancel, or proceed.
//! * [`FaultSession::corrupt_raster`] — consulted when the Step-2a raster
//!   stores are built/verified; `true` simulates a checksum mismatch.
//! * [`FaultSession::corrupt_store`] — consulted at the persistent
//!   store's load seam; a hit flips one seed-derived byte of the named
//!   section so the corruption travels through the real checksum path.
//!
//! The session records the first site that fired ([`FaultSession::fired`])
//! so the engine can turn every injected fault into a trace event and a
//! metrics increment.
//!
//! ## Environment knobs
//!
//! [`FaultConfig::from_env`] reads:
//!
//! * `MSJ_FAULT_PLAN` — `worker_panic`, `slow_worker:<millis>`,
//!   `raster_corrupt`, `cancel_at_batch:<n>`, or
//!   `store_corrupt:<section>` (a persistent-store section name such as
//!   `tree` or `raster_a`); unset or unparsable means *disabled*.
//! * `MSJ_FAULT_SEED` — decimal `u64`, defaults to `0`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// What the fault plan injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker consuming the seed-selected candidate batch panics.
    WorkerPanic,
    /// The worker consuming the seed-selected candidate batch stalls
    /// `millis` — a straggler, not a failure.
    SlowWorker {
        /// Stall duration in milliseconds.
        millis: u32,
    },
    /// The Step-2a raster signatures read as corrupted (checksum
    /// mismatch), forcing the degraded filter-only path.
    RasterCorrupt,
    /// The request's cancel token fires when the `batch`-th candidate
    /// batch (0-based, counted across all workers) is consumed.
    CancelAtBatch {
        /// Global 0-based batch index at which cancellation fires.
        batch: u32,
    },
    /// One byte of the named persistent-store section flips at the load
    /// seam (seed-deterministic index), so the corruption flows through
    /// the store's real checksum-verification path and the engine's
    /// degraded fallbacks.
    StoreCorrupt {
        /// Which section of the segment file the flip lands in.
        section: StoreSection,
    },
    /// **Wire:** the connection is reset (closed with nothing written)
    /// just before the seed-selected response frame would go out.
    ConnReset,
    /// **Wire:** only a prefix of the seed-selected response frame is
    /// written before the connection closes — the client sees a
    /// truncated frame, never a corrupted complete one.
    PartialWrite,
    /// **Wire:** the server stalls `millis` before writing the selected
    /// response — a slow-drain client/socket, not a failure.
    SlowClient {
        /// Stall duration in milliseconds.
        millis: u32,
    },
    /// **Wire:** the selected response is computed, then silently
    /// discarded and the connection closed — the client must treat the
    /// EOF as request-failed, never as an empty result.
    DropBeforeReply,
}

/// The persistent-store section a [`FaultKind::StoreCorrupt`] plan
/// targets. Mirrors `msj-store`'s section set by *name* (this crate
/// stays dependency-free); the engine maps between the two at the load
/// seam.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreSection {
    Relation,
    Tree,
    Conservative,
    Progressive,
    TrStar,
    RasterA,
    RasterB,
}

impl StoreSection {
    /// Every section, in segment-table order.
    pub const ALL: [StoreSection; 7] = [
        StoreSection::Relation,
        StoreSection::Tree,
        StoreSection::Conservative,
        StoreSection::Progressive,
        StoreSection::TrStar,
        StoreSection::RasterA,
        StoreSection::RasterB,
    ];

    /// The stable name used in fault plans and store metric labels.
    pub fn name(self) -> &'static str {
        match self {
            StoreSection::Relation => "relation",
            StoreSection::Tree => "tree",
            StoreSection::Conservative => "conservative",
            StoreSection::Progressive => "progressive",
            StoreSection::TrStar => "trstar",
            StoreSection::RasterA => "raster_a",
            StoreSection::RasterB => "raster_b",
        }
    }

    /// Parses a section name (the `store_corrupt:<section>` suffix).
    pub fn parse(text: &str) -> Option<Self> {
        StoreSection::ALL.into_iter().find(|s| s.name() == text)
    }
}

impl FaultKind {
    /// The stable site name used for metrics labels and trace events.
    pub fn site(&self) -> &'static str {
        match self {
            FaultKind::WorkerPanic => "worker_panic",
            FaultKind::SlowWorker { .. } => "slow_worker",
            FaultKind::RasterCorrupt => "raster_corrupt",
            FaultKind::CancelAtBatch { .. } => "cancel_at_batch",
            FaultKind::StoreCorrupt { .. } => "store_corrupt",
            FaultKind::ConnReset => "conn_reset",
            FaultKind::PartialWrite => "partial_write",
            FaultKind::SlowClient { .. } => "slow_client",
            FaultKind::DropBeforeReply => "drop_before_reply",
        }
    }

    /// Whether this kind injects at the wire (a serving front's
    /// response-write path) rather than inside the execution engine.
    pub fn is_wire(&self) -> bool {
        matches!(
            self,
            FaultKind::ConnReset
                | FaultKind::PartialWrite
                | FaultKind::SlowClient { .. }
                | FaultKind::DropBeforeReply
        )
    }
}

/// The engine-facing fault plan: a [`FaultKind`] plus the seed that
/// derives the injection site. `Copy` so it rides on `JoinConfig`
/// unchanged; [`FaultConfig::disabled`] (the default) is the zero-cost
/// no-op plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultConfig {
    /// Derives which worker a worker-targeted fault lands on.
    pub seed: u64,
    /// The plan; `None` disables injection entirely.
    pub kind: Option<FaultKind>,
}

impl FaultConfig {
    /// No injection — the default, and the production configuration.
    pub const fn disabled() -> Self {
        FaultConfig {
            seed: 0,
            kind: None,
        }
    }

    /// A seeded plan.
    pub const fn seeded(seed: u64, kind: FaultKind) -> Self {
        FaultConfig {
            seed,
            kind: Some(kind),
        }
    }

    /// Whether any fault is armed.
    pub const fn enabled(&self) -> bool {
        self.kind.is_some()
    }

    /// Reads `MSJ_FAULT_PLAN` / `MSJ_FAULT_SEED`; unset or unparsable
    /// plan means [`disabled`](Self::disabled).
    pub fn from_env() -> Self {
        let seed = std::env::var("MSJ_FAULT_SEED")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
            .unwrap_or(0);
        let kind = std::env::var("MSJ_FAULT_PLAN")
            .ok()
            .and_then(|s| parse_plan(&s));
        FaultConfig { seed, kind }
    }
}

/// Parses a `MSJ_FAULT_PLAN` value; `None` when unrecognized.
pub fn parse_plan(text: &str) -> Option<FaultKind> {
    let text = text.trim();
    if let Some(rest) = text.strip_prefix("slow_worker:") {
        return rest
            .parse::<u32>()
            .ok()
            .map(|millis| FaultKind::SlowWorker { millis });
    }
    if let Some(rest) = text.strip_prefix("cancel_at_batch:") {
        return rest
            .parse::<u32>()
            .ok()
            .map(|batch| FaultKind::CancelAtBatch { batch });
    }
    if let Some(rest) = text.strip_prefix("slow_client:") {
        return rest
            .parse::<u32>()
            .ok()
            .map(|millis| FaultKind::SlowClient { millis });
    }
    if let Some(rest) = text.strip_prefix("store_corrupt:") {
        return StoreSection::parse(rest).map(|section| FaultKind::StoreCorrupt { section });
    }
    match text {
        "worker_panic" => Some(FaultKind::WorkerPanic),
        "raster_corrupt" => Some(FaultKind::RasterCorrupt),
        "conn_reset" => Some(FaultKind::ConnReset),
        "partial_write" => Some(FaultKind::PartialWrite),
        "drop_before_reply" => Some(FaultKind::DropBeforeReply),
        _ => None,
    }
}

/// What an injection hook tells its caller to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// No fault here — continue.
    Proceed,
    /// Panic with [`FaultSession::panic_message`] — the injected worker
    /// failure.
    Panic,
    /// Stall this long, then continue — the injected straggler.
    Sleep(Duration),
    /// Cancel the request's token, then continue draining.
    Cancel,
}

/// What the wire-level injection hook ([`FaultSession::on_response`])
/// tells the serving front to do with the response it is about to write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireAction {
    /// No fault on this response — write it normally.
    Proceed,
    /// Close the connection without writing anything.
    ConnReset,
    /// Write a strict prefix of the frame, then close the connection.
    PartialWrite,
    /// Stall this long, then write the response normally.
    SlowThenProceed(Duration),
    /// Discard the computed response and close the connection.
    DropBeforeReply,
}

/// How far into the batch stream a seed-targeted fault can land: the
/// derived batch index is `splitmix64(seed) % BATCH_SPREAD`. Kept small
/// so any run with at least this many candidate batches is guaranteed to
/// fire the plan.
pub const BATCH_SPREAD: u64 = 4;

/// splitmix64 — the one-instruction-deep seed mixer (Steele et al.),
/// vendored so the crate stays dependency-free.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// One run's armed fault state: the per-run counters that make "first
/// batch", "`n`-th batch" well-defined, plus the fired-site latch the
/// engine reads back for observability.
#[derive(Debug)]
pub struct FaultSession {
    config: FaultConfig,
    /// Global batch counter across all workers (drives `CancelAtBatch`).
    batches: AtomicU64,
    /// One-shot latch: worker-targeted faults fire exactly once per run.
    fired: AtomicBool,
}

impl FaultSession {
    /// Arms `config` for one run.
    pub fn new(config: FaultConfig) -> Self {
        FaultSession {
            config,
            batches: AtomicU64::new(0),
            fired: AtomicBool::new(false),
        }
    }

    /// A permanently inert session.
    pub fn inert() -> Self {
        FaultSession::new(FaultConfig::disabled())
    }

    /// Whether any fault is armed (the zero-cost fast-path check).
    #[inline]
    pub fn armed(&self) -> bool {
        self.config.enabled()
    }

    /// The armed plan's seed.
    pub fn seed(&self) -> u64 {
        self.config.seed
    }

    /// The 0-based global batch index a seed-targeted fault lands on:
    /// the first batch at or after it fires the plan. Chaos
    /// configurations keep `batch_pairs` small enough that every run
    /// sees at least [`BATCH_SPREAD`] batches, so the fault is
    /// guaranteed to fire.
    pub fn target_batch(&self) -> u64 {
        splitmix64(self.config.seed) % BATCH_SPREAD
    }

    /// The per-batch injection hook, called by each consumer sink once
    /// per candidate batch with its 0-based `worker` index and the run's
    /// total worker count (reported in the panic site, not used for
    /// targeting). One branch when disabled.
    #[inline]
    pub fn on_batch(&self, worker: usize, workers: usize) -> FaultAction {
        let Some(kind) = self.config.kind else {
            return FaultAction::Proceed;
        };
        self.on_batch_armed(kind, worker, workers)
    }

    #[cold]
    fn on_batch_armed(&self, kind: FaultKind, _worker: usize, _workers: usize) -> FaultAction {
        match kind {
            FaultKind::WorkerPanic => {
                let seen = self.batches.fetch_add(1, Ordering::Relaxed);
                if seen >= self.target_batch() && self.latch() {
                    FaultAction::Panic
                } else {
                    FaultAction::Proceed
                }
            }
            FaultKind::SlowWorker { millis } => {
                let seen = self.batches.fetch_add(1, Ordering::Relaxed);
                if seen >= self.target_batch() && self.latch() {
                    FaultAction::Sleep(Duration::from_millis(u64::from(millis)))
                } else {
                    FaultAction::Proceed
                }
            }
            FaultKind::CancelAtBatch { batch } => {
                let seen = self.batches.fetch_add(1, Ordering::Relaxed);
                if seen >= u64::from(batch) && self.latch() {
                    FaultAction::Cancel
                } else {
                    FaultAction::Proceed
                }
            }
            // Raster/store corruption and the wire kinds fire at their
            // own sites, not at batch boundaries.
            FaultKind::RasterCorrupt
            | FaultKind::StoreCorrupt { .. }
            | FaultKind::ConnReset
            | FaultKind::PartialWrite
            | FaultKind::SlowClient { .. }
            | FaultKind::DropBeforeReply => FaultAction::Proceed,
        }
    }

    /// The wire-level injection hook, called by the serving front once
    /// per response it is about to write. Counts responses exactly like
    /// [`on_batch`](FaultSession::on_batch) counts batches: the
    /// seed-derived [`target_batch`](FaultSession::target_batch)-th
    /// response (or the first one after it) fires the plan, once per
    /// session. Engine-side kinds always proceed here.
    #[inline]
    pub fn on_response(&self) -> WireAction {
        let Some(kind) = self.config.kind else {
            return WireAction::Proceed;
        };
        if !kind.is_wire() {
            return WireAction::Proceed;
        }
        self.on_response_armed(kind)
    }

    #[cold]
    fn on_response_armed(&self, kind: FaultKind) -> WireAction {
        let seen = self.batches.fetch_add(1, Ordering::Relaxed);
        if seen < self.target_batch() || !self.latch() {
            return WireAction::Proceed;
        }
        match kind {
            FaultKind::ConnReset => WireAction::ConnReset,
            FaultKind::PartialWrite => WireAction::PartialWrite,
            FaultKind::SlowClient { millis } => {
                WireAction::SlowThenProceed(Duration::from_millis(u64::from(millis)))
            }
            FaultKind::DropBeforeReply => WireAction::DropBeforeReply,
            _ => WireAction::Proceed,
        }
    }

    /// Whether the Step-2a raster stores should read as corrupted this
    /// run (consulted where the stores are built/verified).
    #[inline]
    pub fn corrupt_raster(&self) -> bool {
        if matches!(self.config.kind, Some(FaultKind::RasterCorrupt)) {
            self.latch();
            true
        } else {
            false
        }
    }

    /// Whether the named persistent-store section should be corrupted on
    /// this load (consulted at the store's read seam, once per session).
    /// Returns the seed, which the caller uses to derive the flipped
    /// byte's index — keeping the *where* of the corruption as
    /// deterministic as every other fault site.
    #[inline]
    pub fn corrupt_store(&self, section: &str) -> Option<u64> {
        match self.config.kind {
            Some(FaultKind::StoreCorrupt { section: target })
                if target.name() == section && self.latch() =>
            {
                Some(self.config.seed)
            }
            _ => None,
        }
    }

    /// The site that fired this run, if any — the engine turns this into
    /// a trace event and a `msj_fault_injected_total{site}` increment.
    pub fn fired(&self) -> Option<&'static str> {
        if self.fired.load(Ordering::Acquire) {
            self.config.kind.map(|k| k.site())
        } else {
            None
        }
    }

    /// The message worker-panic injections unwind with.
    pub fn panic_message(&self) -> String {
        format!("injected fault: worker_panic (seed {})", self.config.seed)
    }

    /// Latches the one-shot flag; `true` for the caller that won.
    fn latch(&self) -> bool {
        !self.fired.swap(true, Ordering::AcqRel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_session_always_proceeds() {
        let s = FaultSession::inert();
        assert!(!s.armed());
        for w in 0..8 {
            assert_eq!(s.on_batch(w, 8), FaultAction::Proceed);
        }
        assert!(!s.corrupt_raster());
        assert_eq!(s.fired(), None);
    }

    #[test]
    fn worker_panic_fires_once_at_the_seeded_batch() {
        let s = FaultSession::new(FaultConfig::seeded(42, FaultKind::WorkerPanic));
        let target = s.target_batch();
        assert!(target < BATCH_SPREAD);
        let mut fired_at = None;
        for batch in 0..(BATCH_SPREAD * 3) {
            match s.on_batch((batch % 4) as usize, 4) {
                FaultAction::Panic => {
                    assert_eq!(fired_at.replace(batch), None, "one-shot");
                    assert_eq!(batch, target, "fires at the derived batch");
                }
                FaultAction::Proceed => {}
                other => panic!("unexpected action {other:?}"),
            }
        }
        assert_eq!(fired_at, Some(target));
        assert_eq!(s.fired(), Some("worker_panic"));
    }

    #[test]
    fn target_batch_is_seed_deterministic_and_bounded() {
        let a = FaultSession::new(FaultConfig::seeded(7, FaultKind::WorkerPanic));
        let b = FaultSession::new(FaultConfig::seeded(7, FaultKind::WorkerPanic));
        assert_eq!(a.target_batch(), b.target_batch());
        for seed in 0..64 {
            let s = FaultSession::new(FaultConfig::seeded(seed, FaultKind::WorkerPanic));
            assert!(s.target_batch() < BATCH_SPREAD);
        }
    }

    #[test]
    fn cancel_at_batch_counts_globally() {
        let s = FaultSession::new(FaultConfig::seeded(
            1,
            FaultKind::CancelAtBatch { batch: 2 },
        ));
        assert_eq!(s.on_batch(0, 1), FaultAction::Proceed);
        assert_eq!(s.on_batch(0, 1), FaultAction::Proceed);
        assert_eq!(s.on_batch(0, 1), FaultAction::Cancel);
        assert_eq!(s.on_batch(0, 1), FaultAction::Proceed, "one-shot");
        assert_eq!(s.fired(), Some("cancel_at_batch"));
    }

    #[test]
    fn slow_worker_reports_the_configured_stall() {
        let s = FaultSession::new(FaultConfig::seeded(3, FaultKind::SlowWorker { millis: 25 }));
        let mut stalls = 0;
        for _ in 0..(BATCH_SPREAD * 2) {
            match s.on_batch(0, 1) {
                FaultAction::Sleep(d) => {
                    assert_eq!(d, Duration::from_millis(25));
                    stalls += 1;
                }
                FaultAction::Proceed => {}
                other => panic!("unexpected action {other:?}"),
            }
        }
        assert_eq!(stalls, 1, "one-shot");
    }

    #[test]
    fn raster_corrupt_latches_the_fired_site() {
        let s = FaultSession::new(FaultConfig::seeded(9, FaultKind::RasterCorrupt));
        assert!(s.corrupt_raster());
        assert_eq!(s.on_batch(0, 1), FaultAction::Proceed);
        assert_eq!(s.fired(), Some("raster_corrupt"));
    }

    #[test]
    fn store_corrupt_fires_once_for_the_named_section_only() {
        let s = FaultSession::new(FaultConfig::seeded(
            13,
            FaultKind::StoreCorrupt {
                section: StoreSection::RasterA,
            },
        ));
        assert_eq!(s.corrupt_store("tree"), None, "other sections untouched");
        assert_eq!(s.fired(), None, "a miss must not consume the plan");
        assert_eq!(s.corrupt_store("raster_a"), Some(13));
        assert_eq!(s.corrupt_store("raster_a"), None, "one-shot");
        assert_eq!(s.fired(), Some("store_corrupt"));
        assert_eq!(s.on_batch(0, 1), FaultAction::Proceed);
    }

    #[test]
    fn plan_parsing_covers_every_kind_and_rejects_noise() {
        assert_eq!(parse_plan("worker_panic"), Some(FaultKind::WorkerPanic));
        assert_eq!(
            parse_plan("slow_worker:15"),
            Some(FaultKind::SlowWorker { millis: 15 })
        );
        assert_eq!(parse_plan("raster_corrupt"), Some(FaultKind::RasterCorrupt));
        assert_eq!(
            parse_plan(" cancel_at_batch:3 "),
            Some(FaultKind::CancelAtBatch { batch: 3 })
        );
        assert_eq!(parse_plan("conn_reset"), Some(FaultKind::ConnReset));
        assert_eq!(parse_plan("partial_write"), Some(FaultKind::PartialWrite));
        assert_eq!(
            parse_plan("slow_client:40"),
            Some(FaultKind::SlowClient { millis: 40 })
        );
        assert_eq!(
            parse_plan("drop_before_reply"),
            Some(FaultKind::DropBeforeReply)
        );
        for section in StoreSection::ALL {
            assert_eq!(
                parse_plan(&format!("store_corrupt:{}", section.name())),
                Some(FaultKind::StoreCorrupt { section })
            );
        }
        assert_eq!(parse_plan("slow_worker:"), None);
        assert_eq!(parse_plan("slow_client:"), None);
        assert_eq!(parse_plan("store_corrupt:"), None);
        assert_eq!(parse_plan("store_corrupt:bogus"), None);
        assert_eq!(parse_plan("unplugged"), None);
        assert_eq!(parse_plan(""), None);
    }

    #[test]
    fn config_roundtrips_site_names() {
        for (kind, site) in [
            (FaultKind::WorkerPanic, "worker_panic"),
            (FaultKind::SlowWorker { millis: 1 }, "slow_worker"),
            (FaultKind::RasterCorrupt, "raster_corrupt"),
            (FaultKind::CancelAtBatch { batch: 0 }, "cancel_at_batch"),
            (
                FaultKind::StoreCorrupt {
                    section: StoreSection::Tree,
                },
                "store_corrupt",
            ),
            (FaultKind::ConnReset, "conn_reset"),
            (FaultKind::PartialWrite, "partial_write"),
            (FaultKind::SlowClient { millis: 1 }, "slow_client"),
            (FaultKind::DropBeforeReply, "drop_before_reply"),
        ] {
            assert_eq!(kind.site(), site);
            assert_eq!(
                kind.is_wire(),
                matches!(
                    site,
                    "conn_reset" | "partial_write" | "slow_client" | "drop_before_reply"
                )
            );
        }
    }

    #[test]
    fn wire_faults_fire_once_at_the_seeded_response() {
        for (kind, expect) in [
            (FaultKind::ConnReset, WireAction::ConnReset),
            (FaultKind::PartialWrite, WireAction::PartialWrite),
            (
                FaultKind::SlowClient { millis: 7 },
                WireAction::SlowThenProceed(Duration::from_millis(7)),
            ),
            (FaultKind::DropBeforeReply, WireAction::DropBeforeReply),
        ] {
            let s = FaultSession::new(FaultConfig::seeded(11, kind));
            let target = s.target_batch();
            let mut fired_at = None;
            for response in 0..(BATCH_SPREAD * 3) {
                match s.on_response() {
                    WireAction::Proceed => {}
                    action => {
                        assert_eq!(action, expect);
                        assert_eq!(fired_at.replace(response), None, "one-shot");
                        assert_eq!(response, target, "fires at the derived response");
                    }
                }
            }
            assert_eq!(fired_at, Some(target));
            assert_eq!(s.fired(), Some(kind.site()));
        }
    }

    #[test]
    fn wire_faults_never_fire_at_batch_boundaries_and_vice_versa() {
        let wire = FaultSession::new(FaultConfig::seeded(3, FaultKind::ConnReset));
        for _ in 0..(BATCH_SPREAD * 2) {
            assert_eq!(wire.on_batch(0, 1), FaultAction::Proceed);
        }
        assert_eq!(wire.fired(), None, "batch hook must not consume the plan");
        let engine = FaultSession::new(FaultConfig::seeded(3, FaultKind::WorkerPanic));
        for _ in 0..(BATCH_SPREAD * 2) {
            assert_eq!(engine.on_response(), WireAction::Proceed);
        }
        assert_eq!(engine.fired(), None, "wire hook must not consume the plan");
    }
}

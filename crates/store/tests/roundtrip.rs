//! Segment-file round trips: every artifact section survives persist +
//! load bit-exactly, and corruption degrades per section instead of
//! failing the file.

use msj_approx::{
    ConservativeKind, ConservativeStore, ProgressiveKind, ProgressiveStore, RasterGrid, RasterStore,
};
use msj_exact::TrStarStore;
use msj_geom::Relation;
use msj_sam::{PageLayout, RStarTree};
use msj_store::{DatasetParts, Section, SectionError, Store};
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("msj_store_test_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn relation() -> Relation {
    msj_datagen::small_carto(60, 12.0, 7)
}

fn build_tree(rel: &Relation) -> RStarTree {
    RStarTree::bulk_load(
        PageLayout::baseline(1024),
        rel.iter().map(|o| (o.region.mbr(), o.id)),
    )
}

fn parts<'a>(
    rel: &'a Relation,
    tree: &RStarTree,
    cons: &ConservativeStore,
    prog: &ProgressiveStore,
    trs: &TrStarStore,
) -> DatasetParts<'a> {
    DatasetParts {
        relation: rel,
        tree: Some(tree.export()),
        conservative: cons.export(),
        progressive: Some(prog.export()),
        trstar: Some(trs.export()),
    }
}

#[test]
fn dataset_round_trip_is_bit_exact() {
    let dir = tmp_dir("roundtrip");
    let store = Store::open(&dir).unwrap();
    let rel = relation();
    let tree = build_tree(&rel);
    let cons = ConservativeStore::build(ConservativeKind::FiveCorner, &rel);
    let prog = ProgressiveStore::build(ProgressiveKind::Mer, &rel);
    let trs = TrStarStore::build(&rel, 3);

    let written = store
        .write_dataset(0, 0xC0FFEE, &parts(&rel, &tree, &cons, &prog, &trs))
        .unwrap();
    assert_eq!(written % 4096, 0, "segment is page-granular");
    assert_eq!(store.dataset_bytes(0).unwrap(), written);
    assert_eq!(store.dataset_ids().unwrap(), vec![0]);

    let load = store.read_dataset(0, None).unwrap();
    assert_eq!(load.config_tag, 0xC0FFEE);
    assert_eq!(load.bytes, written);

    let rel2 = load.relation.unwrap();
    assert_eq!(rel2.len(), rel.len());
    for (a, b) in rel.iter().zip(rel2.iter()) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.region.outer().vertices(), b.region.outer().vertices());
        assert_eq!(a.region.holes().len(), b.region.holes().len());
    }

    let tree2 = RStarTree::from_export(load.tree.unwrap().unwrap()).unwrap();
    assert_eq!(tree2.export(), tree.export());
    tree2.check_invariants().unwrap();

    let cons2 = ConservativeStore::from_export(load.conservative.unwrap().unwrap()).unwrap();
    assert_eq!(cons2.export(), cons.export());
    assert_eq!(cons2.avg_bytes(), cons.avg_bytes());

    let prog2 = ProgressiveStore::from_export(load.progressive.unwrap().unwrap()).unwrap();
    assert_eq!(prog2.export(), prog.export());

    let trs2 = TrStarStore::from_export(load.trstar.unwrap().unwrap()).unwrap();
    assert_eq!(trs2.export(), trs.export());

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn pair_raster_round_trip_preserves_checksum() {
    let dir = tmp_dir("pair");
    let store = Store::open(&dir).unwrap();
    let rel_a = msj_datagen::small_carto(40, 10.0, 1);
    let rel_b = msj_datagen::small_carto(40, 10.0, 2);
    let grid = RasterGrid::covering(&rel_a, &rel_b, 6).unwrap();
    let ra = RasterStore::build(&grid, &rel_a);
    let rb = RasterStore::build(&grid, &rel_b);

    assert!(store.read_pair_raster(0, 1, None).unwrap().is_none());
    store
        .write_pair_raster(0, 1, 7, &ra.export(), &rb.export())
        .unwrap();
    let load = store.read_pair_raster(0, 1, None).unwrap().unwrap();
    assert_eq!(load.config_tag, 7);
    let ra2 = RasterStore::from_export(load.raster_a.unwrap()).unwrap();
    let rb2 = RasterStore::from_export(load.raster_b.unwrap()).unwrap();
    assert_eq!(ra2.checksum(), ra.checksum());
    assert_eq!(rb2.checksum(), rb.checksum());

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn tampered_section_fails_alone() {
    let dir = tmp_dir("tamper");
    let store = Store::open(&dir).unwrap();
    let rel = relation();
    let tree = build_tree(&rel);
    let cons = ConservativeStore::build(ConservativeKind::ConvexHull, &rel);
    let prog = ProgressiveStore::build(ProgressiveKind::Mec, &rel);
    let trs = TrStarStore::build(&rel, 3);
    store
        .write_dataset(3, 1, &parts(&rel, &tree, &cons, &prog, &trs))
        .unwrap();

    let mut hook = |section: Section, bytes: &mut [u8]| {
        if section == Section::Tree && !bytes.is_empty() {
            bytes[bytes.len() / 2] ^= 0x40;
        }
    };
    let load = store.read_dataset(3, Some(&mut hook)).unwrap();
    assert_eq!(load.tree.unwrap().unwrap_err(), SectionError::Checksum);
    // Every other section still verifies and decodes.
    assert!(load.relation.is_ok());
    assert!(load.conservative.unwrap().is_ok());
    assert!(load.progressive.unwrap().is_ok());
    assert!(load.trstar.unwrap().is_ok());

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_manifest_fails_the_file() {
    let dir = tmp_dir("manifest");
    let store = Store::open(&dir).unwrap();
    let rel = relation();
    store
        .write_dataset(
            0,
            1,
            &DatasetParts {
                relation: &rel,
                tree: None,
                conservative: None,
                progressive: None,
                trstar: None,
            },
        )
        .unwrap();
    let path = dir.join("ds_0.msj");
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[20] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    assert!(store.read_dataset(0, None).is_err());

    std::fs::remove_dir_all(&dir).unwrap();
}

//! Little-endian byte codec for section payloads.
//!
//! Every multi-byte value is encoded little-endian; `f64`s go through
//! `to_bits`/`from_bits`, so NaN sentinels (the progressive stores' empty
//! slots) and every other bit pattern round-trip exactly. Slices carry a
//! `u64` element-count prefix; the decoder bounds-checks each count
//! against the remaining payload before allocating, so a corrupted count
//! degrades to a decode error, never an over-allocation.

/// Append-only encoder over a growable byte buffer.
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Self {
        Enc { buf: Vec::new() }
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    pub fn u32s(&mut self, vs: &[u32]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.u32(v);
        }
    }

    pub fn f64s(&mut self, vs: &[f64]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.f64(v);
        }
    }
}

/// Cursor-style decoder over a section payload. All reads are checked;
/// a truncated or oversized count yields `Err`, never a panic.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

pub type DecResult<T> = Result<T, &'static str>;

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> DecResult<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or("length overflow")?;
        if end > self.buf.len() {
            return Err("payload truncated");
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub fn u32(&mut self) -> DecResult<u32> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes(s.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> DecResult<u64> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes(s.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> DecResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn count(&mut self, elem_bytes: usize) -> DecResult<usize> {
        let n = self.u64()?;
        let n = usize::try_from(n).map_err(|_| "count overflow")?;
        let bytes = n.checked_mul(elem_bytes).ok_or("count overflow")?;
        if self.pos.checked_add(bytes).ok_or("count overflow")? > self.buf.len() {
            return Err("count exceeds payload");
        }
        Ok(n)
    }

    pub fn u32s(&mut self) -> DecResult<Vec<u32>> {
        let n = self.count(4)?;
        let mut vs = Vec::with_capacity(n);
        for _ in 0..n {
            vs.push(self.u32()?);
        }
        Ok(vs)
    }

    pub fn f64s(&mut self) -> DecResult<Vec<f64>> {
        let n = self.count(8)?;
        let mut vs = Vec::with_capacity(n);
        for _ in 0..n {
            vs.push(self.f64()?);
        }
        Ok(vs)
    }

    /// Asserts the payload is fully consumed — trailing garbage means a
    /// malformed section.
    pub fn finish(self) -> DecResult<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err("trailing bytes in payload")
        }
    }
}

//! Section payload encodings — one encode/decode pair per Step-0
//! artifact kind.
//!
//! Payloads are pure column streams over the artifact crates' flat
//! export images ([`TreeExport`], [`ConsExport`], [`ProgExport`],
//! [`TrStarExport`], [`RasterExport`]) plus the relation geometry
//! itself. Decoding is a linear repack of arrays — no hull, MER,
//! trapezoid or STR recomputation — which is what makes a store load an
//! mmap-style cold start instead of a rebuild. Structural validation
//! lives in the artifact crates' `from_export` constructors; this module
//! only guarantees well-formed byte streams.

use crate::codec::{Dec, DecResult, Enc};
use msj_approx::{ConsExport, ConservativeKind, ProgExport, ProgressiveKind, RasterExport};
use msj_exact::TrStarExport;
use msj_geom::{Point, Polygon, PolygonWithHoles, Relation, SpatialObject};

pub fn encode_relation(relation: &Relation) -> Vec<u8> {
    let mut ids = Vec::with_capacity(relation.len());
    let mut ring_offsets = Vec::with_capacity(relation.len() + 1);
    let mut point_offsets = vec![0u32];
    let mut points: Vec<f64> = Vec::new();
    ring_offsets.push(0);
    let mut rings = 0u32;
    for o in relation.iter() {
        ids.push(o.id);
        for ring in std::iter::once(o.region.outer()).chain(o.region.holes().iter()) {
            for p in ring.vertices() {
                points.push(p.x);
                points.push(p.y);
            }
            rings += 1;
            point_offsets.push((points.len() / 2) as u32);
        }
        ring_offsets.push(rings);
    }
    let mut e = Enc::new();
    e.u32s(&ids);
    e.u32s(&ring_offsets);
    e.u32s(&point_offsets);
    e.f64s(&points);
    e.into_bytes()
}

pub fn decode_relation(bytes: &[u8]) -> DecResult<Relation> {
    let mut d = Dec::new(bytes);
    let ids = d.u32s()?;
    let ring_offsets = d.u32s()?;
    let point_offsets = d.u32s()?;
    let points = d.f64s()?;
    d.finish()?;
    let n = ids.len();
    if ring_offsets.len() != n + 1 || ring_offsets[0] != 0 {
        return Err("relation ring offsets malformed");
    }
    let total_rings = ring_offsets[n] as usize;
    if point_offsets.len() != total_rings + 1 || point_offsets[0] != 0 {
        return Err("relation point offsets malformed");
    }
    if point_offsets[total_rings] as usize * 2 != points.len() {
        return Err("relation point arena length mismatch");
    }
    let ring = |r: usize| -> DecResult<Polygon> {
        let lo = point_offsets[r] as usize;
        let hi = point_offsets[r + 1] as usize;
        if lo > hi || hi * 2 > points.len() {
            return Err("relation point offsets not monotonic");
        }
        let verts = (lo..hi)
            .map(|i| Point::new(points[2 * i], points[2 * i + 1]))
            .collect();
        Polygon::new(verts).map_err(|_| "relation ring fails polygon validation")
    };
    let mut objects = Vec::with_capacity(n);
    for (i, &id) in ids.iter().enumerate() {
        let r_lo = ring_offsets[i] as usize;
        let r_hi = ring_offsets[i + 1] as usize;
        if r_lo >= r_hi || r_hi > total_rings {
            return Err("relation object has no rings");
        }
        let outer = ring(r_lo)?;
        let holes = (r_lo + 1..r_hi).map(ring).collect::<DecResult<Vec<_>>>()?;
        objects.push(SpatialObject::new(id, PolygonWithHoles::new(outer, holes)));
    }
    Ok(Relation::new(objects))
}

pub fn encode_tree(t: &msj_sam::TreeExport) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(t.page_size);
    e.u64(t.leaf_entry_bytes);
    e.u64(t.dir_entry_bytes);
    e.u32(t.root);
    e.u64(t.len);
    e.u32s(&t.node_levels);
    e.f64s(&t.node_rects);
    e.u32s(&t.entry_offsets);
    e.f64s(&t.entry_rects);
    e.u32s(&t.entry_vals);
    e.into_bytes()
}

pub fn decode_tree(bytes: &[u8]) -> DecResult<msj_sam::TreeExport> {
    let mut d = Dec::new(bytes);
    let t = msj_sam::TreeExport {
        page_size: d.u64()?,
        leaf_entry_bytes: d.u64()?,
        dir_entry_bytes: d.u64()?,
        root: d.u32()?,
        len: d.u64()?,
        node_levels: d.u32s()?,
        node_rects: d.f64s()?,
        entry_offsets: d.u32s()?,
        entry_rects: d.f64s()?,
        entry_vals: d.u32s()?,
    };
    d.finish()?;
    Ok(t)
}

pub fn encode_conservative(c: &ConsExport) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(c.kind.code() as u32);
    e.u64(c.total_bytes);
    e.u32s(&c.offsets);
    e.f64s(&c.scalars);
    e.f64s(&c.false_area);
    e.into_bytes()
}

pub fn decode_conservative(bytes: &[u8]) -> DecResult<ConsExport> {
    let mut d = Dec::new(bytes);
    let code = d.u32()?;
    let kind = u8::try_from(code)
        .ok()
        .and_then(ConservativeKind::from_code)
        .ok_or("unknown conservative kind code")?;
    let c = ConsExport {
        kind,
        total_bytes: d.u64()?,
        offsets: d.u32s()?,
        scalars: d.f64s()?,
        false_area: d.f64s()?,
    };
    d.finish()?;
    Ok(c)
}

pub fn encode_progressive(p: &ProgExport) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(p.kind.code() as u32);
    e.f64s(&p.scalars);
    e.into_bytes()
}

pub fn decode_progressive(bytes: &[u8]) -> DecResult<ProgExport> {
    let mut d = Dec::new(bytes);
    let code = d.u32()?;
    let kind = u8::try_from(code)
        .ok()
        .and_then(ProgressiveKind::from_code)
        .ok_or("unknown progressive kind code")?;
    let p = ProgExport {
        kind,
        scalars: d.f64s()?,
    };
    d.finish()?;
    Ok(p)
}

pub fn encode_trstar(t: &TrStarExport) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(t.max_entries);
    e.u32s(&t.tree_node_offsets);
    e.u32s(&t.tree_trap_offsets);
    e.u32s(&t.tree_roots);
    e.u32s(&t.node_levels);
    e.f64s(&t.node_rects);
    e.u32s(&t.child_offsets);
    e.u32s(&t.children);
    e.f64s(&t.traps);
    e.into_bytes()
}

pub fn decode_trstar(bytes: &[u8]) -> DecResult<TrStarExport> {
    let mut d = Dec::new(bytes);
    let t = TrStarExport {
        max_entries: d.u64()?,
        tree_node_offsets: d.u32s()?,
        tree_trap_offsets: d.u32s()?,
        tree_roots: d.u32s()?,
        node_levels: d.u32s()?,
        node_rects: d.f64s()?,
        child_offsets: d.u32s()?,
        children: d.u32s()?,
        traps: d.f64s()?,
    };
    d.finish()?;
    Ok(t)
}

pub fn encode_raster(r: &RasterExport) -> Vec<u8> {
    let mut e = Enc::new();
    e.f64(r.origin_x);
    e.f64(r.origin_y);
    e.f64(r.cell_w);
    e.f64(r.cell_h);
    e.u32(r.bits);
    e.u32s(&r.offsets);
    e.u32s(&r.intervals);
    e.into_bytes()
}

pub fn decode_raster(bytes: &[u8]) -> DecResult<RasterExport> {
    let mut d = Dec::new(bytes);
    let r = RasterExport {
        origin_x: d.f64()?,
        origin_y: d.f64()?,
        cell_w: d.f64()?,
        cell_h: d.f64()?,
        bits: d.u32()?,
        offsets: d.u32s()?,
        intervals: d.u32s()?,
    };
    d.finish()?;
    Ok(r)
}

//! # msj-store — persistent page-aligned Step-0 artifact store
//!
//! Step 0 of the multi-step pipeline (Brinkhoff, Kriegel, Schneider,
//! Seeger; SIGMOD 1994) — R*-tree construction, conservative /
//! progressive approximation stores, TR* decompositions and raster
//! signatures — is by far the most expensive phase of a join. This crate
//! persists those artifacts so an engine restart is an **mmap-style
//! load** instead of a rebuild, and so a registered set larger than RAM
//! can be served by evicting and reloading cold datasets.
//!
//! ## Segment format
//!
//! One file per dataset (`ds_<id>.msj`) plus one file per prepared join
//! pair's shared-grid raster signatures (`pair_<a>_<b>.msj`). A file is
//! a sequence of [`PAGE_SIZE`]-aligned sections preceded by a one-page
//! **manifest**:
//!
//! ```text
//! page 0   manifest: magic, format version, file kind, config tag,
//!          dataset ids, section table (tag / offset / length / FNV-1a
//!          checksum per section), manifest checksum
//! page 1.. section payloads, each starting on a page boundary,
//!          zero-padded to the next page
//! ```
//!
//! Readers pull the whole file into one page-aligned buffer
//! ([`msj_geom::AlignedBuf`]), verify the manifest, then verify and
//! decode each section independently. **Corruption degrades per
//! section**: a bad checksum surfaces as [`SectionError::Checksum`] for
//! that section only, so the engine can rebuild one artifact from the
//! relation (or drop a pair to the filter-only path) instead of refusing
//! the dataset. Only a corrupt manifest or relation section — the
//! geometry itself, which cannot be rebuilt from anything else — fails
//! the whole load.
//!
//! Section payloads are pure little-endian column streams over the
//! artifact crates' flat export images (`f64`s via `to_bits`, so every
//! bit pattern — including the progressive stores' NaN sentinels —
//! round-trips exactly). Decoding is a linear repack with no geometric
//! recomputation, which is what makes the cold start fast.

mod codec;
mod payload;

use msj_approx::{ConsExport, ProgExport, RasterExport};
use msj_exact::TrStarExport;
use msj_geom::{fnv1a64, AlignedBuf, Relation, PAGE_SIZE};
use msj_sam::TreeExport;
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Magic number opening every segment file ("MSJSTOR1").
pub const STORE_MAGIC: u64 = 0x4d53_4a53_544f_5231;

/// On-disk format version. Bump on any layout change; readers reject
/// other versions (the engine then rebuilds from the relation source).
pub const STORE_VERSION: u32 = 1;

const FILE_KIND_DATASET: u32 = 1;
const FILE_KIND_PAIR: u32 = 2;

/// Manifest header bytes before the section table.
const MANIFEST_HEAD: usize = 48;
/// Bytes per section-table entry.
const SECTION_ENTRY: usize = 32;
/// Offset of the manifest checksum within page 0.
const MANIFEST_SUM_AT: usize = PAGE_SIZE - 8;

/// The artifact sections a segment file can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// The relation geometry itself — required; not rebuildable.
    Relation,
    /// STR-packed R*-tree node arena.
    Tree,
    /// Conservative approximation columns + false-area table.
    Conservative,
    /// Progressive approximation columns.
    Progressive,
    /// TR* trapezoid decompositions.
    TrStar,
    /// Raster interval arena of pair side A.
    RasterA,
    /// Raster interval arena of pair side B.
    RasterB,
}

impl Section {
    /// Every section kind, in table order.
    pub const ALL: [Section; 7] = [
        Section::Relation,
        Section::Tree,
        Section::Conservative,
        Section::Progressive,
        Section::TrStar,
        Section::RasterA,
        Section::RasterB,
    ];

    /// Stable metric-label / fault-plan name.
    pub fn name(self) -> &'static str {
        match self {
            Section::Relation => "relation",
            Section::Tree => "tree",
            Section::Conservative => "conservative",
            Section::Progressive => "progressive",
            Section::TrStar => "trstar",
            Section::RasterA => "raster_a",
            Section::RasterB => "raster_b",
        }
    }

    fn tag(self) -> u32 {
        match self {
            Section::Relation => 1,
            Section::Tree => 2,
            Section::Conservative => 3,
            Section::Progressive => 4,
            Section::TrStar => 5,
            Section::RasterA => 6,
            Section::RasterB => 7,
        }
    }

    fn from_tag(tag: u32) -> Option<Self> {
        Section::ALL.into_iter().find(|s| s.tag() == tag)
    }
}

/// Why one section failed to load while the rest of the file was fine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionError {
    /// Stored FNV-1a checksum does not match the section bytes.
    Checksum,
    /// Checksum matched but the payload does not decode (format bug or
    /// a collision-grade corruption).
    Malformed,
}

/// The per-dataset artifacts handed to [`Store::write_dataset`].
/// `relation` is mandatory; every artifact export is optional (a
/// configuration may not build that artifact, or a `Mixed` conservative
/// store may decline to export).
pub struct DatasetParts<'a> {
    pub relation: &'a Relation,
    pub tree: Option<TreeExport>,
    pub conservative: Option<ConsExport>,
    pub progressive: Option<ProgExport>,
    pub trstar: Option<TrStarExport>,
}

/// Result of [`Store::read_dataset`]: per-section outcomes. `None`
/// means the section was never written; `Some(Err(_))` means it was
/// written but failed verification or decoding — the caller rebuilds
/// that artifact from the relation.
pub struct DatasetLoad {
    pub config_tag: u64,
    /// Total file bytes (the dataset's footprint for residency budgets).
    pub bytes: u64,
    pub relation: Result<Relation, SectionError>,
    pub tree: Option<Result<TreeExport, SectionError>>,
    pub conservative: Option<Result<ConsExport, SectionError>>,
    pub progressive: Option<Result<ProgExport, SectionError>>,
    pub trstar: Option<Result<TrStarExport, SectionError>>,
}

/// Result of [`Store::read_pair_raster`].
pub struct PairLoad {
    pub config_tag: u64,
    pub bytes: u64,
    pub raster_a: Result<RasterExport, SectionError>,
    pub raster_b: Result<RasterExport, SectionError>,
}

/// Hook invoked on each raw section payload after the file is read and
/// before checksum verification — the seam `msj-fault`'s
/// `store_corrupt(section)` byte flip targets, so injected corruption
/// flows through the same verification path real corruption would.
pub type Tamper<'a> = &'a mut dyn FnMut(Section, &mut [u8]);

/// A dataset directory of segment files.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
}

impl Store {
    /// Opens (creating if needed) the store directory.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Store { root })
    }

    /// The store directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn dataset_path(&self, id: u32) -> PathBuf {
        self.root.join(format!("ds_{id}.msj"))
    }

    fn pair_path(&self, a: u32, b: u32) -> PathBuf {
        self.root.join(format!("pair_{a}_{b}.msj"))
    }

    /// The persisted dataset ids, sorted ascending.
    pub fn dataset_ids(&self) -> io::Result<Vec<u32>> {
        let mut ids = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(id) = name
                .strip_prefix("ds_")
                .and_then(|s| s.strip_suffix(".msj"))
                .and_then(|s| s.parse::<u32>().ok())
            {
                ids.push(id);
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }

    /// Size in bytes of a persisted dataset's segment file.
    pub fn dataset_bytes(&self, id: u32) -> io::Result<u64> {
        Ok(fs::metadata(self.dataset_path(id))?.len())
    }

    /// Per-section payload sizes of a persisted dataset's segment file,
    /// in section-table order — the bench's file-size breakdown.
    pub fn dataset_sections(&self, id: u32) -> io::Result<Vec<(Section, u64)>> {
        let (seg, _) = self.read_segment(&self.dataset_path(id), FILE_KIND_DATASET)?;
        Ok(seg
            .sections
            .iter()
            .map(|e| (e.section, e.len as u64))
            .collect())
    }

    /// Serializes a dataset's Step-0 artifacts into its segment file
    /// (atomically: write-temp + rename). Returns the file size.
    pub fn write_dataset(
        &self,
        id: u32,
        config_tag: u64,
        parts: &DatasetParts<'_>,
    ) -> io::Result<u64> {
        let mut sections: Vec<(Section, Vec<u8>)> = Vec::with_capacity(5);
        sections.push((Section::Relation, payload::encode_relation(parts.relation)));
        if let Some(t) = &parts.tree {
            sections.push((Section::Tree, payload::encode_tree(t)));
        }
        if let Some(c) = &parts.conservative {
            sections.push((Section::Conservative, payload::encode_conservative(c)));
        }
        if let Some(p) = &parts.progressive {
            sections.push((Section::Progressive, payload::encode_progressive(p)));
        }
        if let Some(t) = &parts.trstar {
            sections.push((Section::TrStar, payload::encode_trstar(t)));
        }
        self.write_segment(
            &self.dataset_path(id),
            FILE_KIND_DATASET,
            config_tag,
            id as u64,
            0,
            &sections,
        )
    }

    /// Serializes a prepared pair's shared-grid raster stores. Returns
    /// the file size.
    pub fn write_pair_raster(
        &self,
        a: u32,
        b: u32,
        config_tag: u64,
        raster_a: &RasterExport,
        raster_b: &RasterExport,
    ) -> io::Result<u64> {
        let sections = vec![
            (Section::RasterA, payload::encode_raster(raster_a)),
            (Section::RasterB, payload::encode_raster(raster_b)),
        ];
        self.write_segment(
            &self.pair_path(a, b),
            FILE_KIND_PAIR,
            config_tag,
            a as u64,
            b as u64,
            &sections,
        )
    }

    /// Loads a dataset's segment file. File-level failures (missing
    /// file, bad magic / version / manifest) are `Err`; section-level
    /// failures degrade inside the returned [`DatasetLoad`].
    pub fn read_dataset(&self, id: u32, mut tamper: Option<Tamper<'_>>) -> io::Result<DatasetLoad> {
        let (seg, bytes) = self.read_segment(&self.dataset_path(id), FILE_KIND_DATASET)?;
        if seg.meta_a != id as u64 {
            return Err(bad_data("segment file claims a different dataset id"));
        }
        let mut load = DatasetLoad {
            config_tag: seg.config_tag,
            bytes,
            relation: Err(SectionError::Checksum),
            tree: None,
            conservative: None,
            progressive: None,
            trstar: None,
        };
        let mut saw_relation = false;
        for entry in &seg.sections {
            let payload = seg.section_bytes(entry, &mut tamper);
            match entry.section {
                Section::Relation => {
                    saw_relation = true;
                    load.relation =
                        payload.and_then(|b| ok_or_malformed(payload::decode_relation(b)));
                }
                Section::Tree => {
                    load.tree =
                        Some(payload.and_then(|b| ok_or_malformed(payload::decode_tree(b))));
                }
                Section::Conservative => {
                    load.conservative = Some(
                        payload.and_then(|b| ok_or_malformed(payload::decode_conservative(b))),
                    );
                }
                Section::Progressive => {
                    load.progressive =
                        Some(payload.and_then(|b| ok_or_malformed(payload::decode_progressive(b))));
                }
                Section::TrStar => {
                    load.trstar =
                        Some(payload.and_then(|b| ok_or_malformed(payload::decode_trstar(b))));
                }
                Section::RasterA | Section::RasterB => {
                    return Err(bad_data("raster section in a dataset segment"));
                }
            }
        }
        if !saw_relation {
            return Err(bad_data("dataset segment missing relation section"));
        }
        Ok(load)
    }

    /// Loads a pair's raster segment. `Ok(None)` when the pair was never
    /// persisted (the caller builds and writes through).
    pub fn read_pair_raster(
        &self,
        a: u32,
        b: u32,
        mut tamper: Option<Tamper<'_>>,
    ) -> io::Result<Option<PairLoad>> {
        let path = self.pair_path(a, b);
        if !path.exists() {
            return Ok(None);
        }
        let (seg, bytes) = self.read_segment(&path, FILE_KIND_PAIR)?;
        if seg.meta_a != a as u64 || seg.meta_b != b as u64 {
            return Err(bad_data("pair segment claims different dataset ids"));
        }
        let mut load = PairLoad {
            config_tag: seg.config_tag,
            bytes,
            raster_a: Err(SectionError::Checksum),
            raster_b: Err(SectionError::Checksum),
        };
        let (mut saw_a, mut saw_b) = (false, false);
        for entry in &seg.sections {
            let payload = seg.section_bytes(entry, &mut tamper);
            match entry.section {
                Section::RasterA => {
                    saw_a = true;
                    load.raster_a =
                        payload.and_then(|b| ok_or_malformed(payload::decode_raster(b)));
                }
                Section::RasterB => {
                    saw_b = true;
                    load.raster_b =
                        payload.and_then(|b| ok_or_malformed(payload::decode_raster(b)));
                }
                _ => return Err(bad_data("non-raster section in a pair segment")),
            }
        }
        if !saw_a || !saw_b {
            return Err(bad_data("pair segment missing a raster section"));
        }
        Ok(Some(load))
    }

    fn write_segment(
        &self,
        path: &Path,
        file_kind: u32,
        config_tag: u64,
        meta_a: u64,
        meta_b: u64,
        sections: &[(Section, Vec<u8>)],
    ) -> io::Result<u64> {
        assert!(
            MANIFEST_HEAD + sections.len() * SECTION_ENTRY <= MANIFEST_SUM_AT,
            "section table exceeds the manifest page"
        );
        let mut offset = PAGE_SIZE as u64;
        let mut table = Vec::with_capacity(sections.len());
        for (section, payload) in sections {
            table.push((*section, offset, payload.len() as u64, fnv1a64(payload)));
            offset += pages_for(payload.len()) as u64;
        }
        let total = offset;

        let mut manifest = vec![0u8; PAGE_SIZE];
        manifest[0..8].copy_from_slice(&STORE_MAGIC.to_le_bytes());
        manifest[8..12].copy_from_slice(&STORE_VERSION.to_le_bytes());
        manifest[12..16].copy_from_slice(&file_kind.to_le_bytes());
        manifest[16..24].copy_from_slice(&config_tag.to_le_bytes());
        manifest[24..32].copy_from_slice(&meta_a.to_le_bytes());
        manifest[32..40].copy_from_slice(&meta_b.to_le_bytes());
        manifest[40..44].copy_from_slice(&(sections.len() as u32).to_le_bytes());
        for (i, (section, off, len, sum)) in table.iter().enumerate() {
            let at = MANIFEST_HEAD + i * SECTION_ENTRY;
            manifest[at..at + 4].copy_from_slice(&section.tag().to_le_bytes());
            manifest[at + 8..at + 16].copy_from_slice(&off.to_le_bytes());
            manifest[at + 16..at + 24].copy_from_slice(&len.to_le_bytes());
            manifest[at + 24..at + 32].copy_from_slice(&sum.to_le_bytes());
        }
        let sum = fnv1a64(&manifest[..MANIFEST_SUM_AT]);
        manifest[MANIFEST_SUM_AT..].copy_from_slice(&sum.to_le_bytes());

        let tmp = path.with_extension("msj.tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&manifest)?;
            for (_, payload) in sections {
                f.write_all(payload)?;
                let pad = pages_for(payload.len()) - payload.len();
                if pad > 0 {
                    f.write_all(&vec![0u8; pad])?;
                }
            }
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        Ok(total)
    }

    fn read_segment(&self, path: &Path, expect_kind: u32) -> io::Result<(Segment, u64)> {
        let meta = fs::metadata(path)?;
        let size = usize::try_from(meta.len()).map_err(|_| bad_data("segment too large"))?;
        if size < PAGE_SIZE || size % PAGE_SIZE != 0 {
            return Err(bad_data("segment size is not a page multiple"));
        }
        let mut buf = AlignedBuf::zeroed(size);
        fs::File::open(path)?.read_exact(buf.as_mut_slice())?;

        let m = &buf.as_slice()[..PAGE_SIZE];
        let stored_sum = read_u64(m, MANIFEST_SUM_AT);
        if fnv1a64(&m[..MANIFEST_SUM_AT]) != stored_sum {
            return Err(bad_data("manifest checksum mismatch"));
        }
        if read_u64(m, 0) != STORE_MAGIC {
            return Err(bad_data("bad magic"));
        }
        if read_u32(m, 8) != STORE_VERSION {
            return Err(bad_data("unsupported store version"));
        }
        if read_u32(m, 12) != expect_kind {
            return Err(bad_data("unexpected segment kind"));
        }
        let config_tag = read_u64(m, 16);
        let meta_a = read_u64(m, 24);
        let meta_b = read_u64(m, 32);
        let count = read_u32(m, 40) as usize;
        if MANIFEST_HEAD + count * SECTION_ENTRY > MANIFEST_SUM_AT {
            return Err(bad_data("section table overflows the manifest"));
        }
        let mut sections = Vec::with_capacity(count);
        for i in 0..count {
            let at = MANIFEST_HEAD + i * SECTION_ENTRY;
            let section = Section::from_tag(read_u32(m, at))
                .ok_or_else(|| bad_data("unknown section tag"))?;
            let offset = read_u64(m, at + 8) as usize;
            let len = read_u64(m, at + 16) as usize;
            if !offset.is_multiple_of(PAGE_SIZE)
                || offset.checked_add(len).is_none_or(|end| end > size)
            {
                return Err(bad_data("section extent out of bounds"));
            }
            sections.push(SectionEntry {
                section,
                offset,
                len,
                checksum: read_u64(m, at + 24),
            });
        }
        Ok((
            Segment {
                config_tag,
                meta_a,
                meta_b,
                sections,
                buf,
            },
            size as u64,
        ))
    }
}

struct SectionEntry {
    section: Section,
    offset: usize,
    len: usize,
    checksum: u64,
}

struct Segment {
    config_tag: u64,
    meta_a: u64,
    meta_b: u64,
    sections: Vec<SectionEntry>,
    buf: AlignedBuf,
}

impl Segment {
    /// The verified payload of one section, after the optional tamper
    /// hook has had its shot at the raw bytes.
    fn section_bytes(
        &self,
        entry: &SectionEntry,
        tamper: &mut Option<Tamper<'_>>,
    ) -> Result<&[u8], SectionError> {
        let bytes = &self.buf.as_slice()[entry.offset..entry.offset + entry.len];
        if let Some(hook) = tamper.as_mut() {
            // The hook mutates a scratch copy: the aligned buffer is
            // shared by every section read, and a fault must corrupt
            // exactly the bytes the checksum guards.
            let mut scratch = bytes.to_vec();
            hook(entry.section, &mut scratch);
            if scratch != bytes {
                // Verify (and fail) against the tampered image.
                return if fnv1a64(&scratch) == entry.checksum {
                    Err(SectionError::Malformed)
                } else {
                    Err(SectionError::Checksum)
                };
            }
        }
        if fnv1a64(bytes) != entry.checksum {
            return Err(SectionError::Checksum);
        }
        Ok(bytes)
    }
}

fn pages_for(len: usize) -> usize {
    len.div_ceil(PAGE_SIZE) * PAGE_SIZE
}

fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn ok_or_malformed<T>(r: Result<T, &'static str>) -> Result<T, SectionError> {
    r.map_err(|_| SectionError::Malformed)
}

fn read_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(buf[at..at + 4].try_into().unwrap())
}

fn read_u64(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().unwrap())
}

//! Shared wall-clock measurement discipline for the bench crate.

use std::time::Instant;

/// Repetitions per timed cell. The runs are deterministic, so the
/// minimum over repetitions is the least-noise estimate.
pub(crate) const REPS: usize = 3;

/// Runs `run` [`REPS`] times and returns the last result with the
/// minimum wall-clock in seconds.
pub(crate) fn timed<T>(mut run: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let r = run();
        best = best.min(start.elapsed().as_secs_f64());
        result = Some(r);
    }
    (result.expect("REPS >= 1"), best)
}

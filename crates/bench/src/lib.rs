//! # msj-bench — the reproduction harness
//!
//! Regenerates every table and figure of the paper's evaluation section.
//! The `repro` binary dispatches on [`experiments::registry`]; Criterion
//! micro-benchmarks live under `benches/`.
//!
//! ```text
//! cargo run -p msj-bench --release --bin repro -- all
//! cargo run -p msj-bench --release --bin repro -- table7 --scale quick
//! ```

pub mod baseline;
pub mod data;
pub mod experiments;
pub mod jsonout;
pub mod report;
mod timing;

pub use baseline::collect_then_chunk_join;
pub use data::SeriesData;
pub use experiments::{registry, ExpConfig, Experiment, Scale};
pub use jsonout::{bench_json, bench_json_only};

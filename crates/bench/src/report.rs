//! Plain-text report formatting: aligned tables with paper-vs-measured
//! columns.

/// A simple column-aligned text table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Renders with every column padded to its widest cell.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                for _ in cell.chars().count()..*w {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        if !self.header.is_empty() {
            out.push_str(&fmt_row(&self.header));
            out.push('\n');
            out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `digits` fraction digits.
pub fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Formats a percentage with one fraction digit.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", 100.0 * v)
}

/// A section header for an experiment report.
pub fn section(id: &str, title: &str) -> String {
    let line = format!("== {id}: {title} ");
    format!(
        "\n{line}{}\n",
        "=".repeat(72usize.saturating_sub(line.len()))
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(["name", "value"]);
        t.row(["x", "1"]);
        t.row(["longer-name", "123456"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("x"));
        // Columns align: "1" and "123456" start at the same offset.
        let off2 = lines[2].find('1').unwrap();
        let off3 = lines[3].find('1').unwrap();
        assert_eq!(off2, off3);
    }

    #[test]
    fn formatters() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(0.305), "30.5%");
        assert!(section("t1", "title").contains("== t1: title"));
    }

    #[test]
    fn ragged_rows_render() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["1"]);
        t.row(["1", "2", "3"]);
        let s = t.render();
        assert!(s.lines().count() == 4);
    }
}

//! Storage-organization reproductions: Figure 10 (approximation as key vs
//! in addition to the MBR) and Figure 11 (loss/gain/total of storing
//! approximations).

use super::ExpConfig;
use crate::report::{pct, section, Table};
use msj_approx::{
    conservative_bytes, progressive_bytes, ConservativeKind, ConservativeStore, ProgressiveKind,
    ProgressiveStore,
};
use msj_geom::{Point, Rect, Relation};
use msj_sam::{tree_join, LruBuffer, PageLayout, RStarTree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BUFFER_BYTES: usize = 128 * 1024;

/// How the approximation is organized in the R*-tree (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Approach {
    /// Approximation *instead of* the MBR: the key is the approximation's
    /// AABB (larger area extension), the entry stores only the
    /// approximation.
    InsteadOfMbr,
    /// Approximation *in addition to* the MBR: the key is the true MBR,
    /// the entry stores MBR + approximation.
    InAdditionToMbr,
}

/// Builds the R*-tree of a relation under the given approach.
fn build_tree(
    rel: &Relation,
    store: &ConservativeStore,
    kind: ConservativeKind,
    approach: Approach,
    page_size: usize,
) -> RStarTree {
    let approx_bytes = conservative_bytes(kind, None).max(12);
    let (layout, keys): (PageLayout, Vec<(Rect, u32)>) = match approach {
        Approach::InsteadOfMbr => (
            PageLayout {
                page_size,
                leaf_entry_bytes: approx_bytes + 32,
                dir_entry_bytes: 20,
            },
            rel.iter()
                .map(|o| (store.view(o.id).aabb(), o.id))
                .collect(),
        ),
        Approach::InAdditionToMbr => (
            PageLayout {
                page_size,
                leaf_entry_bytes: 16 + approx_bytes + 32,
                dir_entry_bytes: 20,
            },
            rel.iter().map(|o| (o.mbr(), o.id)).collect(),
        ),
    };
    RStarTree::insert_all(layout, keys)
}

/// Physical page accesses of the Figure 10 workloads on one tree pair.
struct WorkloadAccesses {
    point: u64,
    window1: u64,
    window5: u64,
    join: u64,
}

fn run_workloads(
    tree_a: &RStarTree,
    tree_b: &RStarTree,
    world: Rect,
    queries: usize,
    page_size: usize,
    seed: u64,
) -> WorkloadAccesses {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut buffer = LruBuffer::with_bytes(BUFFER_BYTES, page_size);

    let mut point = 0u64;
    for _ in 0..queries {
        let p = Point::new(
            rng.gen_range(world.xmin()..world.xmax()),
            rng.gen_range(world.ymin()..world.ymax()),
        );
        tree_a.point_query(p, &mut buffer);
    }
    point += buffer.stats().physical;

    let mut window = |frac: f64, buffer: &mut LruBuffer| -> u64 {
        buffer.reset();
        let side = frac * world.width();
        for _ in 0..queries {
            let x = rng.gen_range(world.xmin()..world.xmax() - side);
            let y = rng.gen_range(world.ymin()..world.ymax() - side);
            tree_a.window_query(Rect::from_bounds(x, y, x + side, y + side), buffer);
        }
        buffer.stats().physical
    };
    let window1 = window(0.01, &mut buffer);
    let window5 = window(0.05, &mut buffer);

    buffer.reset();
    let join_stats = tree_join(tree_a, tree_b, &mut buffer, |_, _| {});
    WorkloadAccesses {
        point,
        window1,
        window5,
        join: join_stats.io.physical,
    }
}

/// Figure 10: page accesses of approach 2 relative to approach 1.
pub fn fig10(cfg: &ExpConfig) -> String {
    let mut out = section(
        "fig10",
        "approximation as key (approach 1) vs in addition to the MBR (approach 2), paper Figure 10",
    );
    let count = cfg.large_count();
    let rel_a = msj_datagen::large_relation(count, 0, cfg.seed);
    let rel_b = msj_datagen::large_relation(count, 1, cfg.seed);
    let world = msj_datagen::world();
    out.push_str(&format!("relations: 2 x {count} objects\n"));

    for kind in [ConservativeKind::Rmbr, ConservativeKind::FiveCorner] {
        let store_a = ConservativeStore::build(kind, &rel_a);
        let store_b = ConservativeStore::build(kind, &rel_b);
        out.push_str(&format!("\napproximation: {}\n", kind.name()));
        let mut t = Table::new([
            "page size",
            "workload",
            "approach 1",
            "approach 2",
            "a2 / a1",
        ]);
        for page_size in [2048usize, 4096] {
            let t1a = build_tree(&rel_a, &store_a, kind, Approach::InsteadOfMbr, page_size);
            let t1b = build_tree(&rel_b, &store_b, kind, Approach::InsteadOfMbr, page_size);
            let t2a = build_tree(&rel_a, &store_a, kind, Approach::InAdditionToMbr, page_size);
            let t2b = build_tree(&rel_b, &store_b, kind, Approach::InAdditionToMbr, page_size);
            let w1 = run_workloads(&t1a, &t1b, world, cfg.query_count(), page_size, cfg.seed);
            let w2 = run_workloads(&t2a, &t2b, world, cfg.query_count(), page_size, cfg.seed);
            for (name, a1, a2) in [
                ("point queries", w1.point, w2.point),
                ("window 1%", w1.window1, w2.window1),
                ("window 5%", w1.window5, w2.window5),
                ("join", w1.join, w2.join),
            ] {
                t.row([
                    format!("{} KB", page_size / 1024),
                    name.to_string(),
                    a1.to_string(),
                    a2.to_string(),
                    pct(a2 as f64 / a1.max(1) as f64),
                ]);
            }
        }
        out.push_str(&t.render());
    }
    out.push_str(
        "\npaper: only slight differences, small advantages for approach 1 in\n\
         I/O — but approach 1 tests the (expensive) approximation ≈ 30x more\n\
         often, so approach 2 (approximation in addition to the MBR) wins.\n",
    );
    out
}

/// Figure 11: loss (extra MBR-join I/O) / gain (filtered pairs) / total
/// when storing a conservative approximation + the MER.
pub fn fig11(cfg: &ExpConfig) -> String {
    let mut out = section(
        "fig11",
        "performance change through approximations (paper Figure 11)",
    );
    let count = cfg.large_count();
    let rel_a = msj_datagen::large_relation(count, 0, cfg.seed);
    let rel_b = msj_datagen::large_relation(count, 1, cfg.seed);
    out.push_str(&format!("relations: 2 x {count} objects\n"));

    // Progressive store (MER) shared by both conservative variants.
    let mer_a = ProgressiveStore::build(ProgressiveKind::Mer, &rel_a);
    let mer_b = ProgressiveStore::build(ProgressiveKind::Mer, &rel_b);

    let mut t = Table::new([
        "page size",
        "conservative",
        "baseline join pages",
        "approx join pages",
        "loss",
        "gain",
        "total",
    ]);
    for page_size in [2048usize, 4096] {
        // Baseline: MBR-only layout.
        let base_layout = PageLayout::baseline(page_size);
        let base_a = RStarTree::insert_all(base_layout, rel_a.iter().map(|o| (o.mbr(), o.id)));
        let base_b = RStarTree::insert_all(base_layout, rel_b.iter().map(|o| (o.mbr(), o.id)));
        let mut buffer = LruBuffer::with_bytes(BUFFER_BYTES, page_size);
        let base_stats = tree_join(&base_a, &base_b, &mut buffer, |_, _| {});

        for kind in [ConservativeKind::Rmbr, ConservativeKind::FiveCorner] {
            let cons_a = ConservativeStore::build(kind, &rel_a);
            let cons_b = ConservativeStore::build(kind, &rel_b);
            let extra = conservative_bytes(kind, None) + progressive_bytes(ProgressiveKind::Mer);
            let layout = PageLayout::with_extra_bytes(page_size, extra);
            let ta = RStarTree::insert_all(layout, rel_a.iter().map(|o| (o.mbr(), o.id)));
            let tb = RStarTree::insert_all(layout, rel_b.iter().map(|o| (o.mbr(), o.id)));
            let mut buffer = LruBuffer::with_bytes(BUFFER_BYTES, page_size);
            let mut identified = 0u64;
            let approx_stats = tree_join(&ta, &tb, &mut buffer, |a, b| {
                let con_disjoint = !cons_a.view(a).intersects(&cons_b.view(b));
                if con_disjoint || mer_a.get(a).intersects(&mer_b.get(b)) {
                    identified += 1;
                }
            });
            let loss = approx_stats.io.physical as i64 - base_stats.io.physical as i64;
            let gain = identified as i64;
            t.row([
                format!("{} KB", page_size / 1024),
                kind.name().to_string(),
                base_stats.io.physical.to_string(),
                approx_stats.io.physical.to_string(),
                loss.to_string(),
                gain.to_string(),
                (gain - loss).to_string(),
            ]);
        }
    }
    out.push_str(&t.render());
    out.push_str(
        "\npaper: the gain (one saved page access per identified pair) clearly\n\
         dominates the loss (extra MBR-join accesses from the fatter entries).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approach1_uses_bigger_keys_than_approach2() {
        let rel = msj_datagen::large_relation(200, 0, 3);
        let kind = ConservativeKind::Rmbr;
        let store = ConservativeStore::build(kind, &rel);
        let t1 = build_tree(&rel, &store, kind, Approach::InsteadOfMbr, 2048);
        let t2 = build_tree(&rel, &store, kind, Approach::InAdditionToMbr, 2048);
        // Approach 1 keys are AABBs of rotated rectangles — never smaller
        // than the true MBRs, so the root covers at least as much area.
        assert!(t1.root_rect().area() >= t2.root_rect().area() * 0.999);
        // Approach 2 entries are fatter: equal or fewer entries per page.
        assert!(t2.layout().leaf_entry_bytes > t1.layout().leaf_entry_bytes);
    }

    #[test]
    fn workloads_produce_io() {
        let rel_a = msj_datagen::large_relation(300, 0, 4);
        let rel_b = msj_datagen::large_relation(300, 1, 4);
        let kind = ConservativeKind::FiveCorner;
        let sa = ConservativeStore::build(kind, &rel_a);
        let sb = ConservativeStore::build(kind, &rel_b);
        let ta = build_tree(&rel_a, &sa, kind, Approach::InAdditionToMbr, 2048);
        let tb = build_tree(&rel_b, &sb, kind, Approach::InAdditionToMbr, 2048);
        let w = run_workloads(&ta, &tb, msj_datagen::world(), 50, 2048, 9);
        assert!(w.point > 0);
        assert!(w.window5 >= w.window1);
        assert!(w.join > 0);
    }
}

//! Serving under concurrent network load (the PR-9 acceptance matrix).
//!
//! Three phases against a live `msj-serve` front:
//!
//! 1. **Serial** — one connection, one request outstanding at a time:
//!    the per-query serving baseline including the full wire round trip;
//! 2. **Batched** — 8 concurrent connections pipelining the same point
//!    workload: concurrent probes coalesce into shared tree descents,
//!    and the measured throughput must *exceed* the serial baseline
//!    (the cross-request-batching acceptance bar);
//! 3. **Overload** — a fresh single-worker server with a tiny join
//!    queue, flooded well past 2× its bound while a join occupies the
//!    worker: every response must be a byte-identical completed answer
//!    or an explicit `Shed`/`Draining`/`DeadlineExceeded` — zero hangs,
//!    zero silent drops — and at least one request must shed.
//!
//! Completed responses in every phase are compared frame-for-frame
//! against an oracle computed on a *twin* engine (same datasets, never
//! serves), so the check also pins cross-engine determinism of the wire
//! projection. Queue-wait and end-to-end percentiles come from the
//! serving engine's own `msj-obs` histograms, not client-side clocks.

use crate::experiments::ExpConfig;
use msj_core::{JoinConfig, Request, SpatialEngine};
use msj_geom::Point;
use msj_serve::{
    encode_response, response_body_for, Client, ServeConfig, Server, WireRequest, WireRequestBody,
    WireStatus,
};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Concurrent connections in the batched phase.
pub const LOAD_CLIENTS: usize = 8;

/// Join queue bound in the overload phase; the flood exceeds 2× this.
pub const OVERLOAD_QUEUE_BOUND: usize = 4;

/// Everything the `serving_load` section reports.
pub struct ServingLoadMeasurement {
    pub queries: u64,
    pub serial_qps: f64,
    pub batched_qps: f64,
    /// Batched-over-serial throughput; must exceed 1 (asserted).
    pub batched_speedup: f64,
    pub queue_wait_micros: (f64, f64, f64),
    pub e2e_micros: (f64, f64, f64),
    pub overload_sent: u64,
    pub overload_completed: u64,
    pub overload_shed: u64,
    /// Explicit non-shed refusals under overload (`Draining`,
    /// `DeadlineExceeded`, `Cancelled`); completed + shed + other must
    /// equal sent — no silent drops.
    pub overload_other: u64,
    pub drain_clean: bool,
}

fn to_request(body: &WireRequestBody) -> Request {
    match *body {
        WireRequestBody::Join { a, b } => Request::Join {
            a,
            b,
            execution: None,
        },
        WireRequestBody::SelfJoin { dataset } => Request::SelfJoin {
            dataset,
            execution: None,
        },
        WireRequestBody::Point { dataset, x, y } => Request::Point {
            dataset,
            point: Point::new(x, y),
        },
        WireRequestBody::Window { dataset, bounds } => Request::Window {
            dataset,
            window: msj_geom::Rect::new(
                Point::new(bounds[0], bounds[1]),
                Point::new(bounds[2], bounds[3]),
            ),
        },
        WireRequestBody::Metrics => unreachable!("metrics is not an engine request"),
    }
}

/// Expected frames per request id, computed on the oracle twin.
fn oracle_frames(oracle: &SpatialEngine, requests: &[WireRequest]) -> HashMap<u64, Vec<u8>> {
    requests
        .iter()
        .map(|req| {
            (
                req.request_id,
                encode_response(
                    req.request_id,
                    &response_body_for(&oracle.submit(to_request(&req.body))),
                ),
            )
        })
        .collect()
}

/// The point workload: `q` probes spread over the unit square, one
/// request id per index.
fn point_workload(dataset: u32, q: usize) -> Vec<WireRequest> {
    (0..q)
        .map(|i| {
            let t = (i as f64 + 0.5) / q as f64;
            WireRequest::point(i as u64, dataset, t, 1.0 - t)
        })
        .collect()
}

/// Sends `requests` pipelined on one connection and collects one reply
/// each; completed replies are checked against the oracle. Returns
/// (completed, shed, other-refusals).
fn drive(
    addr: std::net::SocketAddr,
    requests: &[WireRequest],
    oracle: &HashMap<u64, Vec<u8>>,
) -> (u64, u64, u64) {
    let mut client = Client::connect_with_timeout(addr, Duration::from_secs(60)).expect("connect");
    for req in requests {
        client.send(req).expect("send");
    }
    let (mut completed, mut shed, mut other) = (0, 0, 0);
    for _ in requests {
        let reply = client.recv().expect("every request gets a reply");
        match reply.body.status() {
            WireStatus::Ok => {
                assert_eq!(
                    Some(&reply.frame),
                    oracle.get(&reply.request_id),
                    "completed reply {} diverged from the oracle twin",
                    reply.request_id
                );
                completed += 1;
            }
            WireStatus::Shed => shed += 1,
            WireStatus::Draining | WireStatus::DeadlineExceeded | WireStatus::Cancelled => {
                other += 1
            }
            unexpected => panic!("unexpected status {unexpected:?}"),
        }
    }
    (completed, shed, other)
}

pub fn measure_serving_load(cfg: &ExpConfig) -> ServingLoadMeasurement {
    let objects = (cfg.large_count() / 8).clamp(200, 2_000);
    let q = cfg.query_count();
    let rel_a = Arc::new(msj_datagen::small_carto(objects, 8.0, cfg.seed));
    let rel_b = Arc::new(msj_datagen::small_carto(objects, 8.0, cfg.seed + 1));
    let oracle_engine = SpatialEngine::new(JoinConfig::default());
    let oa = oracle_engine.register(rel_a.clone()).id();
    let ob = oracle_engine.register(rel_b.clone()).id();

    // ---- Phases 1–2: throughput on a roomy server (nothing sheds). ----
    let engine = Arc::new(SpatialEngine::new(JoinConfig::default()));
    let a = engine.register(rel_a.clone()).id();
    let points = point_workload(a, q);
    // The oracle ids match because both engines register a first.
    assert_eq!(a, oa);
    let oracle = Arc::new(oracle_frames(&oracle_engine, &points));

    let server = Server::start(
        engine.clone(),
        ServeConfig {
            workers: 2,
            queue_bound: 8_192,
            batch_max: 32,
            conn_inflight_cap: 8_192,
            ..ServeConfig::default()
        },
    )
    .expect("throughput server");
    let addr = server.addr();

    // Serial: ping-pong, one outstanding request. A short warm-up pays
    // the lazy per-dataset costs outside the timed window.
    let mut client = Client::connect_with_timeout(addr, Duration::from_secs(60)).expect("connect");
    for req in points.iter().take(4) {
        let reply = client.call(req).expect("warm-up");
        assert_eq!(reply.body.status(), WireStatus::Ok);
    }
    let t = Instant::now();
    for req in &points {
        let reply = client.call(req).expect("serial call");
        assert_eq!(
            Some(&reply.frame),
            oracle.get(&reply.request_id),
            "serial reply diverged"
        );
    }
    let serial_secs = t.elapsed().as_secs_f64().max(1e-9);
    drop(client);

    // Batched: the same workload split over concurrent pipelining
    // connections; the server coalesces co-queued probes into shared
    // descents.
    let t = Instant::now();
    let handles: Vec<_> = points
        .chunks(q.div_ceil(LOAD_CLIENTS))
        .map(|chunk| {
            let chunk = chunk.to_vec();
            let oracle = oracle.clone();
            std::thread::spawn(move || drive(addr, &chunk, &oracle))
        })
        .collect();
    let mut batched_completed = 0;
    for handle in handles {
        let (completed, shed, other) = handle.join().expect("client thread");
        assert_eq!(shed + other, 0, "the roomy server must not refuse");
        batched_completed += completed;
    }
    let batched_secs = t.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(batched_completed, q as u64);

    let snapshot = engine.metrics().snapshot();
    let percentiles = |key: &str| {
        let h = snapshot.histogram(key).expect(key);
        assert!(h.count > 0, "{key} recorded no samples");
        (
            h.p50() as f64 / 1e3,
            h.p90() as f64 / 1e3,
            h.p99() as f64 / 1e3,
        )
    };
    let queue_wait_micros = percentiles("msj_queue_wait_nanos");
    let e2e_micros = percentiles("msj_serve_e2e_nanos");

    server.shutdown();
    let mut drain_clean = server.join().clean;

    let serial_qps = q as f64 / serial_secs;
    let batched_qps = q as f64 / batched_secs;
    let batched_speedup = batched_qps / serial_qps;
    assert!(
        batched_speedup > 1.0,
        "cross-request batching must beat serial serving \
         (batched {batched_qps:.0} qps vs serial {serial_qps:.0} qps)"
    );

    // ---- Phase 3: overload at a tiny bound, flooded past 2×. ----
    // A fresh engine (cold prepared-join cache) and one worker: the
    // leading join occupies it while the point flood overflows the
    // selection queue.
    let engine = Arc::new(SpatialEngine::new(JoinConfig::default()));
    let a = engine.register(rel_a.clone()).id();
    let b2 = engine.register(rel_b.clone()).id();
    assert_eq!((a, b2), (oa, ob));
    let clients = 4;
    let per_client = 32;
    let workloads: Vec<Vec<WireRequest>> = (0..clients as u64)
        .map(|c| {
            let base = 1_000 * (c + 1);
            let mut reqs = vec![WireRequest::join(base, a, b2)];
            for i in 0..per_client {
                let t = (i as f64 + 0.5) / per_client as f64;
                reqs.push(WireRequest::point(base + 1 + i as u64, a, t, t));
            }
            reqs
        })
        .collect();
    let flood: Vec<WireRequest> = workloads.iter().flatten().cloned().collect();
    let overload_oracle = Arc::new(oracle_frames(&oracle_engine, &flood));

    let server = Server::start(
        engine,
        ServeConfig {
            workers: 1,
            queue_bound: OVERLOAD_QUEUE_BOUND,
            batch_max: 2,
            conn_inflight_cap: 8_192,
            ..ServeConfig::default()
        },
    )
    .expect("overload server");
    let addr = server.addr();
    let handles: Vec<_> = workloads
        .into_iter()
        .map(|requests| {
            let oracle = overload_oracle.clone();
            std::thread::spawn(move || drive(addr, &requests, &oracle))
        })
        .collect();
    let (mut completed, mut shed, mut other) = (0, 0, 0);
    for handle in handles {
        let (c, s, o) = handle.join().expect("overload client");
        completed += c;
        shed += s;
        other += o;
    }
    server.shutdown();
    drain_clean &= server.join().clean;

    let sent = flood.len() as u64;
    assert_eq!(
        completed + shed + other,
        sent,
        "every flooded request must be answered exactly once"
    );
    assert!(
        shed > 0,
        "a {OVERLOAD_QUEUE_BOUND}-deep queue flooded with {sent} requests must shed"
    );

    ServingLoadMeasurement {
        queries: q as u64,
        serial_qps,
        batched_qps,
        batched_speedup,
        queue_wait_micros,
        e2e_micros,
        overload_sent: sent,
        overload_completed: completed,
        overload_shed: shed,
        overload_other: other,
        drain_clean,
    }
}

/// The human-readable report for `repro -- serving-load`.
pub fn serving_load(cfg: &ExpConfig) -> String {
    let m = measure_serving_load(cfg);
    let (qw50, qw90, qw99) = m.queue_wait_micros;
    let (e50, e90, e99) = m.e2e_micros;
    let mut out = String::new();
    out.push_str("serving-load: the network front under concurrent traffic\n");
    out.push_str(&format!(
        "  point probes        {} per phase, {} concurrent connections\n",
        m.queries, LOAD_CLIENTS
    ));
    out.push_str(&format!(
        "  serial (1 conn)     {:>10.0} queries/sec\n",
        m.serial_qps
    ));
    out.push_str(&format!(
        "  batched ({} conns)   {:>10.0} queries/sec ({:.1}x serial)\n",
        LOAD_CLIENTS, m.batched_qps, m.batched_speedup
    ));
    out.push_str(&format!(
        "  queue wait          p50 {qw50:.1} us, p90 {qw90:.1} us, p99 {qw99:.1} us\n"
    ));
    out.push_str(&format!(
        "  end-to-end          p50 {e50:.1} us, p90 {e90:.1} us, p99 {e99:.1} us\n"
    ));
    out.push_str(&format!(
        "  overload (bound {})  {} sent: {} completed byte-identical, {} shed, {} other refusals\n",
        OVERLOAD_QUEUE_BOUND,
        m.overload_sent,
        m.overload_completed,
        m.overload_shed,
        m.overload_other
    ));
    out.push_str(&format!("  clean drains        {}\n", m.drain_clean));
    out.push_str(
        "  invariant           every response completed byte-identically or refused explicitly\n",
    );
    out
}

//! Total-performance reproduction: Figure 18 (versions 1/2/3) plus the
//! filter-order and buffer-size ablations.

use super::ExpConfig;
use crate::report::{f, pct, section, Table};
use msj_approx::{ConservativeKind, ConservativeStore, ProgressiveKind, ProgressiveStore};
use msj_core::{figure18_cost, CostModelParams, ExactCostKind, JoinConfig, MultiStepJoin};
use msj_sam::{tree_join, LruBuffer, PageLayout, RStarTree};

/// Figure 18: total join cost of the three versions, stacked into
/// MBR-join / object access / exact test, using the §5 cost model on the
/// measured statistics.
pub fn fig18(cfg: &ExpConfig) -> String {
    let mut out = section(
        "fig18",
        "total join performance, versions 1/2/3 (paper Figure 18)",
    );
    let count = cfg.large_count();
    let rel_a = msj_datagen::large_relation(count, 0, cfg.seed);
    let rel_b = msj_datagen::large_relation(count, 1, cfg.seed);
    out.push_str(&format!(
        "relations: 2 x {count} objects (paper: 2 x 130,000; ≈86,000 MBR pairs)\n\n",
    ));
    let params = CostModelParams::default();

    let versions: [(&str, JoinConfig, ExactCostKind); 3] = [
        (
            "version 1 (no approx, sweep)",
            JoinConfig::version1(),
            ExactCostKind::PlaneSweep,
        ),
        (
            "version 2 (5-C+MER, sweep)",
            JoinConfig::version2(),
            ExactCostKind::PlaneSweep,
        ),
        (
            "version 3 (5-C+MER, TR*)",
            JoinConfig::version3(),
            ExactCostKind::TrStar,
        ),
    ];

    let mut t = Table::new([
        "version",
        "candidates",
        "identified",
        "MBR-join (s)",
        "object access (s)",
        "exact test (s)",
        "total (s)",
    ]);
    let mut totals = Vec::new();
    for (name, config, kind) in versions {
        let result = MultiStepJoin::new(config).execute(&rel_a, &rel_b);
        let cost = figure18_cost(&result.stats, kind, &params);
        totals.push(cost.total_s());
        t.row([
            name.to_string(),
            result.stats.mbr_join.candidates.to_string(),
            result.stats.identified().to_string(),
            f(cost.mbr_join_s, 1),
            f(cost.object_access_s, 1),
            f(cost.exact_test_s, 1),
            f(cost.total_s(), 1),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nspeedups: v1/v2 = {:.2}x (paper ≈ 1.7x), v2/v3 = {:.2}x (paper ≈ 2x),\n\
         v1/v3 = {:.2}x (paper: more than 3x)\n",
        totals[0] / totals[1].max(1e-9),
        totals[1] / totals[2].max(1e-9),
        totals[0] / totals[2].max(1e-9),
    ));
    out.push_str(
        "absolute seconds scale with the object count; the paper's shape —\n\
         v1 dominated by exact tests + object access, v3 dominated by object\n\
         access — is what must match.\n",
    );
    out
}

/// Ablation: order of the filter tests. Conservative-first (the paper's
/// pipeline) vs progressive-first, comparing how many of each (costly)
/// approximation test run.
pub fn ablation_order(cfg: &ExpConfig) -> String {
    let mut out = section(
        "ablation-order",
        "filter ordering: conservative-first vs progressive-first",
    );
    let data = crate::data::SeriesData::build(cfg.series("Europe A"));
    let cons_a = ConservativeStore::build(ConservativeKind::FiveCorner, &data.series.a);
    let cons_b = ConservativeStore::build(ConservativeKind::FiveCorner, &data.series.b);
    let prog_a = ProgressiveStore::build(ProgressiveKind::Mer, &data.series.a);
    let prog_b = ProgressiveStore::build(ProgressiveKind::Mer, &data.series.b);

    // Conservative first (paper order).
    let mut cons_tests_cf = 0u64;
    let mut prog_tests_cf = 0u64;
    let mut identified_cf = 0u64;
    for (a, b, _) in data.iter() {
        cons_tests_cf += 1;
        if !cons_a.view(a).intersects(&cons_b.view(b)) {
            identified_cf += 1;
            continue;
        }
        prog_tests_cf += 1;
        if prog_a.get(a).intersects(&prog_b.get(b)) {
            identified_cf += 1;
        }
    }
    // Progressive first.
    let mut cons_tests_pf = 0u64;
    let mut prog_tests_pf = 0u64;
    let mut identified_pf = 0u64;
    for (a, b, _) in data.iter() {
        prog_tests_pf += 1;
        if prog_a.get(a).intersects(&prog_b.get(b)) {
            identified_pf += 1;
            continue;
        }
        cons_tests_pf += 1;
        if !cons_a.view(a).intersects(&cons_b.view(b)) {
            identified_pf += 1;
        }
    }
    let mut t = Table::new(["order", "5-C tests", "MER tests", "identified"]);
    t.row([
        "conservative first".to_string(),
        cons_tests_cf.to_string(),
        prog_tests_cf.to_string(),
        identified_cf.to_string(),
    ]);
    t.row([
        "progressive first".to_string(),
        cons_tests_pf.to_string(),
        prog_tests_pf.to_string(),
        identified_pf.to_string(),
    ]);
    out.push_str(&t.render());
    assert_eq!(
        identified_cf, identified_pf,
        "order cannot change the identified set"
    );
    out.push_str(
        "\nboth orders identify the same pairs; conservative-first runs fewer\n\
         progressive tests (hits dominate candidates, and the conservative\n\
         test is needed for every surviving pair anyway).\n",
    );
    out
}

/// Ablation: LRU buffer size sweep for the MBR-join.
pub fn ablation_buffer(cfg: &ExpConfig) -> String {
    let mut out = section("ablation-buffer", "MBR-join I/O vs LRU buffer size");
    let count = cfg.large_count().min(20_000);
    let rel_a = msj_datagen::large_relation(count, 0, cfg.seed);
    let rel_b = msj_datagen::large_relation(count, 1, cfg.seed);
    let page_size = 4096usize;
    let layout = PageLayout::baseline(page_size);
    let ta = RStarTree::insert_all(layout, rel_a.iter().map(|o| (o.mbr(), o.id)));
    let tb = RStarTree::insert_all(layout, rel_b.iter().map(|o| (o.mbr(), o.id)));
    let total_pages = (ta.num_pages() + tb.num_pages()) as f64;

    let mut t = Table::new([
        "buffer pages",
        "physical reads",
        "logical reads",
        "hit ratio",
    ]);
    for pages in [4usize, 8, 16, 32, 64, 128] {
        let mut buffer = LruBuffer::new(pages);
        let stats = tree_join(&ta, &tb, &mut buffer, |_, _| {});
        t.row([
            pages.to_string(),
            stats.io.physical.to_string(),
            stats.io.logical.to_string(),
            pct(stats.io.hit_ratio()),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\ntrees hold {total_pages:.0} pages in total; the depth-first join\n\
         locality makes even small buffers effective ([BKS 93a]'s observation).\n",
    ));
    out
}

/// Ablation: MBR-join strategies — synchronized tree join ([BKS 93a]) vs
/// index nested-loop probing vs plain nested loops.
pub fn ablation_joinstrategy(cfg: &ExpConfig) -> String {
    use msj_sam::index_nested_loop_join;
    let mut out = section(
        "ablation-joinstrategy",
        "MBR-join strategies: tree join vs index nested loop vs nested loops",
    );
    let count = cfg.large_count().min(20_000);
    let rel_a = msj_datagen::large_relation(count, 0, cfg.seed);
    let rel_b = msj_datagen::large_relation(count, 1, cfg.seed);
    let page_size = 4096usize;
    let layout = PageLayout::baseline(page_size);
    let ta = RStarTree::insert_all(layout, rel_a.iter().map(|o| (o.mbr(), o.id)));
    let tb = RStarTree::insert_all(layout, rel_b.iter().map(|o| (o.mbr(), o.id)));
    let outer: Vec<(msj_geom::Rect, u32)> = rel_a.iter().map(|o| (o.mbr(), o.id)).collect();
    let inner: Vec<(msj_geom::Rect, u32)> = rel_b.iter().map(|o| (o.mbr(), o.id)).collect();

    let mut t = Table::new(["strategy", "candidates", "physical reads", "MBR tests"]);
    let mut buffer = LruBuffer::with_bytes(128 * 1024, page_size);
    let tree = msj_sam::tree_join(&ta, &tb, &mut buffer, |_, _| {});
    t.row([
        "synchronized tree join".to_string(),
        tree.candidates.to_string(),
        tree.io.physical.to_string(),
        tree.mbr_tests.to_string(),
    ]);
    let mut buffer = LruBuffer::with_bytes(128 * 1024, page_size);
    let inl = index_nested_loop_join(&outer, &tb, &mut buffer, |_, _| {});
    t.row([
        "index nested loop".to_string(),
        inl.candidates.to_string(),
        inl.io.physical.to_string(),
        "-".to_string(),
    ]);
    let mut nl_pairs = 0u64;
    let nl_tests = msj_sam::nested_loops_join(&outer, &inner, |_, _| nl_pairs += 1);
    t.row([
        "nested loops (no index)".to_string(),
        nl_pairs.to_string(),
        "0 (all in memory)".to_string(),
        nl_tests.to_string(),
    ]);
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nall strategies emit the same candidates. The inner tree holds {} pages\n\
         against a 32-page buffer: once the tree exceeds the buffer, repeated\n\
         probing thrashes and [BKS 93a]'s synchronized traversal wins on I/O;\n\
         it always wins on rectangle tests vs the quadratic nested loops.\n",
        tb.num_pages()
    ));
    out
}

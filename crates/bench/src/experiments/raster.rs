//! The `raster` experiment: the Step-2a raster-interval pre-filter swept
//! over grid resolutions against the stage turned off.
//!
//! For each cell the experiment reports how much of the MBR-join
//! candidate stream the stage decided before the convex/MER columns were
//! touched (hit/drop/inconclusive), what the stage cost (`step2a` inside
//! `step2`), and the end-to-end Steps-1–3 wall-clock — on the even and
//! skewed cartographic workloads.
//!
//! Every cell's canonically sorted response set is digested (FNV-1a) and
//! compared against the raster-off reference: **any divergence panics**,
//! which is exactly what the CI smoke step relies on.

use super::ExpConfig;
use crate::report::{f, pct, section, Table};
use crate::timing::timed;
use msj_core::{Execution, JoinConfig, MultiStepJoin, RasterConfig};
use msj_geom::{ObjectId, Relation};
use std::time::Instant;

/// The grid-resolution sweep both this experiment and the
/// machine-readable bench (`crate::jsonout`) measure — one definition so
/// the two matrices cannot drift apart.
pub(crate) const SWEEP: [(&str, RasterConfig); 5] = [
    ("off", RasterConfig::off()),
    ("auto", RasterConfig::with_bits(0)),
    ("b6", RasterConfig::with_bits(6)),
    ("b8", RasterConfig::with_bits(8)),
    ("b10", RasterConfig::with_bits(10)),
];

/// The grid resolution a config actually runs at on this workload
/// (auto-sized cells resolve through [`msj_approx::auto_grid_bits`]).
pub(crate) fn resolved_grid_bits(raster: RasterConfig, a: &Relation, b: &Relation) -> u32 {
    if raster.grid_bits == 0 {
        msj_approx::auto_grid_bits(a, b)
    } else {
        raster.grid_bits
    }
}

/// FNV-1a over the canonically sorted response set — the digest the CI
/// smoke step compares between raster-on and raster-off cells.
pub fn response_digest(pairs: &[(ObjectId, ObjectId)]) -> u64 {
    let mut sorted = pairs.to_vec();
    sorted.sort_unstable();
    let mut h: u64 = 0xcbf29ce484222325;
    for (a, b) in sorted {
        for byte in a.to_le_bytes().into_iter().chain(b.to_le_bytes()) {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

fn workloads(cfg: &ExpConfig) -> Vec<(String, Relation, Relation)> {
    let n = cfg.large_count() / 2;
    vec![
        (
            "carto".into(),
            msj_datagen::small_carto(n, 24.0, cfg.seed),
            msj_datagen::small_carto(n, 24.0, cfg.seed + 1),
        ),
        (
            "skewed".into(),
            msj_datagen::skewed_carto(n, 24.0, cfg.seed),
            msj_datagen::skewed_carto(n, 24.0, cfg.seed + 1),
        ),
    ]
}

/// The `raster` experiment (see the module docs).
pub fn raster(cfg: &ExpConfig) -> String {
    let mut out = section(
        "raster",
        "step-2a raster pre-filter: grid_bits sweep vs raster-off",
    );
    out.push_str(
        "decided = candidates the stage proved (hit or drop) before any convex/MER\n\
         column was touched; step2a ms is the stage's share of the filter time\n\
         (summed across workers); join ms covers Steps 1-3 fused x4; every cell's\n\
         response digest must equal the raster-off reference (asserted)\n\n",
    );

    let mut table = Table::new([
        "workload",
        "cell",
        "prep ms",
        "join ms",
        "decided",
        "hit %",
        "drop %",
        "incon %",
        "step2a ms",
        "step2 ms",
        "exact tests",
    ]);
    let mut decided_auto: Vec<String> = Vec::new();
    for (name, a, b) in &workloads(cfg) {
        let mut reference: Option<u64> = None;
        for (cell, raster) in SWEEP {
            let config = JoinConfig::builder().raster(raster).build();
            let t_prep = Instant::now();
            let prepared = MultiStepJoin::new(config).prepare(a, b);
            let prep_ms = t_prep.elapsed().as_secs_f64() * 1e3;
            let _ = prepared.run_with(Execution::Fused { threads: 4 });
            let (result, secs) = timed(|| prepared.run_with(Execution::Fused { threads: 4 }));
            let digest = response_digest(&result.pairs);
            match reference {
                None => reference = Some(digest),
                Some(expect) => assert_eq!(
                    digest, expect,
                    "{name}/{cell}: response-set digest diverged from raster-off"
                ),
            }
            let s = &result.stats;
            let cands = s.mbr_join.candidates.max(1) as f64;
            table.row([
                name.clone(),
                cell.into(),
                f(prep_ms, 1),
                f(secs * 1e3, 1),
                pct(s.raster_decided_fraction()),
                pct(s.raster_hits as f64 / cands),
                pct(s.raster_drops as f64 / cands),
                pct(s.raster_inconclusive as f64 / cands),
                f(s.step2a_nanos as f64 / 1e6, 2),
                f(s.step2_nanos as f64 / 1e6, 2),
                format!("{}", s.exact_tests),
            ]);
            if cell == "auto" {
                decided_auto.push(format!(
                    "{name}: auto grid (2^{} cells/axis) decided {} of {} candidates ({})",
                    resolved_grid_bits(raster, a, b),
                    s.raster_hits + s.raster_drops,
                    s.mbr_join.candidates,
                    pct(s.raster_decided_fraction())
                ));
            }
        }
    }
    out.push_str(&table.render());
    out.push('\n');
    for line in decided_auto {
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str("all cells agreed with the raster-off response digest\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn raster_experiment_runs_and_reports_decisions() {
        let cfg = ExpConfig {
            seed: 5,
            scale: Scale::Quick,
        };
        let report = raster(&cfg);
        assert!(report.contains("raster"));
        assert!(report.contains("auto"));
        assert!(report.contains("all cells agreed"));
    }

    #[test]
    fn digest_is_order_invariant_and_content_sensitive() {
        let fwd = response_digest(&[(1, 2), (3, 4)]);
        let rev = response_digest(&[(3, 4), (1, 2)]);
        assert_eq!(fwd, rev);
        assert_ne!(fwd, response_digest(&[(1, 2)]));
        assert_ne!(fwd, response_digest(&[(1, 2), (3, 5)]));
    }
}

//! Exact-geometry reproductions: Table 6, Table 7, Figure 16, Figure 17,
//! plus the restriction and MBR-pretest ablations.

use super::ExpConfig;
use crate::data::SeriesData;
use crate::report::{f, pct, section, Table};
use msj_approx::{ConservativeKind, ConservativeStore, ProgressiveKind, ProgressiveStore};
use msj_exact::{
    quadratic_intersects, sweep_intersects, trees_intersect, OpCounts, TrStarStore, Weights,
};
use msj_geom::ObjectId;

/// Table 6: the operation weights (constants by construction — printed for
/// completeness and checked against the published values).
pub fn table6(_cfg: &ExpConfig) -> String {
    let w = Weights::default();
    let mut out = section("table6", "operation weights (paper Table 6)");
    let mut t = Table::new(["operation", "weight (10⁻⁶ s)", "paper"]);
    t.row([
        "edge intersection test".to_string(),
        f(w.edge_intersection, 0),
        "15".into(),
    ]);
    t.row([
        "edge-line intersection test".to_string(),
        f(w.edge_line, 0),
        "18".into(),
    ]);
    t.row(["position test".to_string(), f(w.position, 0), "36".into()]);
    t.row([
        "edge-rectangle intersection test".to_string(),
        f(w.edge_rect, 0),
        "28".into(),
    ]);
    t.row([
        "rectangle intersection test".to_string(),
        f(w.rect_rect, 0),
        "28".into(),
    ]);
    t.row([
        "trapezoid intersection test".to_string(),
        f(w.trapezoid, 0),
        "38".into(),
    ]);
    out.push_str(&t.render());
    out
}

/// The candidate pairs of a series that survive the geometric filter with
/// the 5-corner and MEC tests (the Table 7 workload, §4.3), along with
/// their ground truth.
fn surviving_candidates(data: &SeriesData) -> Vec<(ObjectId, ObjectId, bool)> {
    let cons_a = ConservativeStore::build(ConservativeKind::FiveCorner, &data.series.a);
    let cons_b = ConservativeStore::build(ConservativeKind::FiveCorner, &data.series.b);
    let prog_a = ProgressiveStore::build(ProgressiveKind::Mec, &data.series.a);
    let prog_b = ProgressiveStore::build(ProgressiveKind::Mec, &data.series.b);
    data.iter()
        .filter(|&(a, b, _)| {
            cons_a.view(a).intersects(&cons_b.view(b)) && !prog_a.get(a).intersects(&prog_b.get(b))
        })
        .collect()
}

/// Per-algorithm accumulation for Table 7: weighted cost split into hit
/// and false-hit pairs.
struct AlgoCost {
    hit_pairs: u64,
    false_pairs: u64,
    hit_ms: f64,
    false_ms: f64,
}

impl AlgoCost {
    fn total_ms(&self) -> f64 {
        self.hit_ms + self.false_ms
    }
    fn per_hit(&self) -> f64 {
        if self.hit_pairs == 0 {
            0.0
        } else {
            self.hit_ms / self.hit_pairs as f64
        }
    }
    fn per_false(&self) -> f64 {
        if self.false_pairs == 0 {
            0.0
        } else {
            self.false_ms / self.false_pairs as f64
        }
    }
}

fn run_algo<F: FnMut(ObjectId, ObjectId, &mut OpCounts) -> bool>(
    pairs: &[(ObjectId, ObjectId, bool)],
    weights: &Weights,
    mut test: F,
) -> AlgoCost {
    let mut cost = AlgoCost {
        hit_pairs: 0,
        false_pairs: 0,
        hit_ms: 0.0,
        false_ms: 0.0,
    };
    for &(a, b, truth) in pairs {
        let mut counts = OpCounts::new();
        let result = test(a, b, &mut counts);
        debug_assert_eq!(result, truth, "exact algorithm disagrees with ground truth");
        let ms = counts.cost_ms(weights);
        if truth {
            cost.hit_pairs += 1;
            cost.hit_ms += ms;
        } else {
            cost.false_pairs += 1;
            cost.false_ms += ms;
        }
        let _ = result;
    }
    cost
}

/// Table 7: cost of the exact intersection algorithms on the candidates
/// surviving the 5-C + MEC filter (Europe A and BW A).
pub fn table7(cfg: &ExpConfig) -> String {
    let mut out = section(
        "table7",
        "cost of the exact intersection algorithms (paper Table 7)",
    );
    let weights = Weights::default();
    // (cost per hit ms, cost per false hit ms, total ms) per algorithm row.
    type PaperRows = [(f64, f64, f64); 3];
    let paper: &[(&str, PaperRows)] = &[
        // (cost per hit, cost per false hit, total) in ms, rows:
        // quadratic, plane-sweep, TR*-tree.
        (
            "Europe A",
            [
                (119.6, 154.3, 164_193.0),
                (9.9, 10.9, 10_732.0),
                (0.7, 1.0, 795.0),
            ],
        ),
        (
            "BW A",
            [
                (2814.7, 7487.8, 4_557_686.0),
                (49.2, 51.6, 62_024.0),
                (0.9, 1.3, 1_263.0),
            ],
        ),
    ];
    for series_name in ["Europe A", "BW A"] {
        let data = SeriesData::build(cfg.series(series_name));
        let pairs = surviving_candidates(&data);
        let hits = pairs.iter().filter(|p| p.2).count();
        out.push_str(&format!(
            "\n{series_name}: {} surviving candidates ({} hits, {} false hits)\n",
            pairs.len(),
            hits,
            pairs.len() - hits
        ));
        let trstar = TrStarStore::build(&data.series.a, 3);
        let trstar_b = TrStarStore::build(&data.series.b, 3);

        let quad = run_algo(&pairs, &weights, |a, b, c| {
            quadratic_intersects(
                &data.series.a.object(a).region,
                &data.series.b.object(b).region,
                c,
            )
        });
        let sweep = run_algo(&pairs, &weights, |a, b, c| {
            sweep_intersects(
                &data.series.a.object(a).region,
                &data.series.b.object(b).region,
                true,
                c,
            )
        });
        let tr = run_algo(&pairs, &weights, |a, b, c| {
            trees_intersect(trstar.get(a), trstar_b.get(b), c)
        });

        let mut t = Table::new([
            "algorithm",
            "cost/hit (ms)",
            "cost/false hit (ms)",
            "total (ms)",
            "paper hit/false/total",
        ]);
        let p = paper
            .iter()
            .find(|(n, _)| *n == series_name)
            .map(|(_, v)| v);
        for (i, (name, cost)) in [
            ("quadratic", &quad),
            ("plane-sweep", &sweep),
            ("TR*-tree (M=3)", &tr),
        ]
        .iter()
        .enumerate()
        {
            let pap = p
                .map(|rows| {
                    let (h, fh, tot) = rows[i];
                    format!("{h:.1} / {fh:.1} / {tot:.0}")
                })
                .unwrap_or_else(|| "-".into());
            t.row([
                name.to_string(),
                f(cost.per_hit(), 1),
                f(cost.per_false(), 1),
                f(cost.total_ms(), 0),
                pap,
            ]);
        }
        out.push_str(&t.render());
        out.push_str(&format!(
            "avg TR*-tree height: {:.1} (A) / {:.1} (B); paper: 5.0 (Europe), 7.6 (BW)\n",
            trstar.avg_height(),
            trstar_b.avg_height()
        ));
        out.push_str(&format!(
            "speedup quadratic/TR*: {:.0}x, plane-sweep/TR*: {:.1}x (paper: ≥ one order of magnitude)\n",
            quad.total_ms() / tr.total_ms().max(1e-9),
            sweep.total_ms() / tr.total_ms().max(1e-9)
        ));
    }
    out
}

/// Figure 16: per-pair cost against the total edge count (BW A),
/// plane-sweep vs TR*-tree, bucketed.
pub fn fig16(cfg: &ExpConfig) -> String {
    let mut out = section(
        "fig16",
        "per-pair cost vs edge count, BW A (paper Figure 16)",
    );
    let weights = Weights::default();
    let data = SeriesData::build(cfg.series("BW A"));
    let pairs = surviving_candidates(&data);
    let trstar_a = TrStarStore::build(&data.series.a, 3);
    let trstar_b = TrStarStore::build(&data.series.b, 3);

    // Collect (edges, sweep_ms, tr_ms) per pair.
    let mut samples: Vec<(usize, f64, f64)> = Vec::with_capacity(pairs.len());
    for &(a, b, _) in &pairs {
        let ra = &data.series.a.object(a).region;
        let rb = &data.series.b.object(b).region;
        let edges = ra.num_vertices() + rb.num_vertices();
        let mut cs = OpCounts::new();
        sweep_intersects(ra, rb, true, &mut cs);
        let mut ct = OpCounts::new();
        trees_intersect(trstar_a.get(a), trstar_b.get(b), &mut ct);
        samples.push((edges, cs.cost_ms(&weights), ct.cost_ms(&weights)));
    }
    samples.sort_by_key(|s| s.0);

    let buckets = 8usize.min(samples.len().max(1));
    let mut t = Table::new([
        "edges (n1+n2)",
        "pairs",
        "plane-sweep avg (ms)",
        "TR* avg (ms)",
    ]);
    for chunk in samples.chunks(samples.len().max(1).div_ceil(buckets)) {
        if chunk.is_empty() {
            continue;
        }
        let lo = chunk.first().unwrap().0;
        let hi = chunk.last().unwrap().0;
        let n = chunk.len() as f64;
        let sweep_avg = chunk.iter().map(|s| s.1).sum::<f64>() / n;
        let tr_avg = chunk.iter().map(|s| s.2).sum::<f64>() / n;
        t.row([
            format!("{lo}..{hi}"),
            chunk.len().to_string(),
            f(sweep_avg, 2),
            f(tr_avg, 3),
        ]);
    }
    out.push_str(&t.render());

    // The paper's qualitative claim: sweep cost grows strongly with the
    // edge count, TR* cost barely depends on it. Report the ratio of the
    // top bucket to the bottom bucket for both.
    if samples.len() >= 4 {
        let quarter = samples.len() / 4;
        let low = &samples[..quarter];
        let high = &samples[samples.len() - quarter..];
        let growth = |sel: fn(&(usize, f64, f64)) -> f64| {
            let lo: f64 = low.iter().map(sel).sum::<f64>() / low.len() as f64;
            let hi: f64 = high.iter().map(sel).sum::<f64>() / high.len() as f64;
            hi / lo.max(1e-12)
        };
        out.push_str(&format!(
            "\ncost growth from smallest to largest pairs: plane-sweep {:.1}x, TR* {:.1}x\n\
             (paper: strong dependency for the sweep, low dependency for the TR*-tree)\n",
            growth(|s| s.1),
            growth(|s| s.2)
        ));
    }
    out
}

/// Figure 17: TR*-tree rectangle / trapezoid intersection-test counts for
/// maximum node capacities M = 3, 4, 5.
pub fn fig17(cfg: &ExpConfig) -> String {
    let mut out = section(
        "fig17",
        "TR*-tree performance per node capacity (paper Figure 17)",
    );
    let data = SeriesData::build(cfg.series("BW A"));
    let pairs = surviving_candidates(&data);
    let mut t = Table::new(["M", "rect tests", "trapezoid tests", "weighted cost (ms)"]);
    let weights = Weights::default();
    let mut per_m: Vec<(usize, u64, u64)> = Vec::new();
    for m in [3usize, 4, 5] {
        let store_a = TrStarStore::build(&data.series.a, m);
        let store_b = TrStarStore::build(&data.series.b, m);
        let mut counts = OpCounts::new();
        for &(a, b, _) in &pairs {
            trees_intersect(store_a.get(a), store_b.get(b), &mut counts);
        }
        per_m.push((m, counts.rect_rect, counts.trapezoid));
        t.row([
            m.to_string(),
            counts.rect_rect.to_string(),
            counts.trapezoid.to_string(),
            f(counts.cost_ms(&weights), 0),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\npaper: both test counts are lowest for M = 3 and increase with the\n\
         node capacity.\n",
    );
    let m3 = per_m[0];
    let m5 = per_m[2];
    out.push_str(&format!(
        "measured M=3 vs M=5: rect tests {} vs {}, trapezoid tests {} vs {}\n",
        m3.1, m5.1, m3.2, m5.2
    ));
    out
}

/// Ablation: the plane sweep with and without restricting the search
/// space (paper §4.3: restriction saves ≈ 40 %; without it, false hits
/// cost ≈ 2.3× more than hits).
pub fn ablation_restrict(cfg: &ExpConfig) -> String {
    let mut out = section(
        "ablation-restrict",
        "plane sweep: search-space restriction on/off (paper §4.3)",
    );
    let weights = Weights::default();
    let data = SeriesData::build(cfg.series("BW A"));
    let pairs = surviving_candidates(&data);
    let restricted = run_algo(&pairs, &weights, |a, b, c| {
        sweep_intersects(
            &data.series.a.object(a).region,
            &data.series.b.object(b).region,
            true,
            c,
        )
    });
    let unrestricted = run_algo(&pairs, &weights, |a, b, c| {
        sweep_intersects(
            &data.series.a.object(a).region,
            &data.series.b.object(b).region,
            false,
            c,
        )
    });
    let mut t = Table::new([
        "variant",
        "total (ms)",
        "cost/hit",
        "cost/false hit",
        "false/hit ratio",
    ]);
    for (name, c) in [("restricted", &restricted), ("unrestricted", &unrestricted)] {
        t.row([
            name.to_string(),
            f(c.total_ms(), 0),
            f(c.per_hit(), 1),
            f(c.per_false(), 1),
            f(c.per_false() / c.per_hit().max(1e-12), 2),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nsaving from restriction: {} (paper: ≈ 40%)\n\
         unrestricted false-hit penalty: {:.2}x (paper: ≈ 2.3x)\n",
        pct(1.0 - restricted.total_ms() / unrestricted.total_ms().max(1e-12)),
        unrestricted.per_false() / unrestricted.per_hit().max(1e-12)
    ));
    out
}

/// Ablation: the MBR pretest before point-in-polygon containment probes
/// (paper §4: omits 75–93 % of the tests).
pub fn ablation_mpretest(cfg: &ExpConfig) -> String {
    let mut out = section(
        "ablation-mpretest",
        "MBR pretest for point-in-polygon tests (paper §4)",
    );
    // Run the quadratic algorithm over the candidates of both Europe
    // series and count performed vs omitted point-in-polygon probes.
    // Strategy B rescales objects, so MBR containment (and therefore
    // performed probes) actually occurs there; in strategy A all objects
    // are equal-sized and the pretest omits almost everything.
    let mut t = Table::new([
        "series",
        "probes reached",
        "performed",
        "omitted",
        "omitted %",
    ]);
    for name in ["Europe A", "Europe B"] {
        let data = SeriesData::build(cfg.series(name));
        let mut counts = OpCounts::new();
        for (a, b, _) in data.iter() {
            quadratic_intersects(
                &data.series.a.object(a).region,
                &data.series.b.object(b).region,
                &mut counts,
            );
        }
        let total = counts.pip_performed + counts.pip_skipped;
        t.row([
            name.to_string(),
            total.to_string(),
            counts.pip_performed.to_string(),
            counts.pip_skipped.to_string(),
            pct(counts.pip_skipped as f64 / (total.max(1)) as f64),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\npaper: the MBR pretest omits 75–93% of the point-in-polygon tests.\n");
    out
}

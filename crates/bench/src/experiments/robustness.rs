//! The `robustness` experiment: the engine's failure story, measured.
//!
//! Two cells on the fused ×4 join over the skewed cartographic workload:
//!
//! * **Cancellation latency** — a deadline set to 50% of the join's §5
//!   cost estimate (capped by the measured fault-free wall-clock: the
//!   model prices work in the paper's cost units, which can sit far
//!   above modern wall-clock) must come back as
//!   [`msj_core::EngineError::DeadlineExceeded`]; the cell reports the
//!   time-to-error and the overshoot past the deadline next to one
//!   batch's wall-clock — cancellation is cooperative at batch
//!   boundaries, so the acceptance bound is *overshoot ≤ 2× one batch*.
//! * **Fault-hook overhead** — the same prepared join timed with the
//!   injection hooks disabled (the production default: inert session, no
//!   token) versus fully *armed* (live cancel token polled every batch
//!   plus an enabled fault plan that never fires). The armed run does a
//!   strict superset of the disabled run's per-batch work, so the
//!   armed-vs-disabled ratio upper-bounds what the disabled hooks can
//!   cost; the budget is < 1%.
//!
//! Both guards follow the obs-overhead discipline: enforced only in
//! optimized builds on a ≥ 20 ms baseline (below that the ratios are
//! timer noise), always reported.

use super::ExpConfig;
use crate::report::{f, section};
use crate::timing::{timed, REPS};
use msj_core::{
    CancelToken, EngineError, Execution, FaultConfig, FaultKind, JoinConfig, Request, Response,
    SpatialEngine, DEFAULT_BATCH_PAIRS,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything the report and the JSON bench print — measured once,
/// rendered twice, so the two outputs cannot drift apart.
pub(crate) struct RobustnessMeasurement {
    /// §5 estimate (milliseconds) the deadline was derived from.
    pub estimated_millis: f64,
    /// Whether the estimate came from observed run history.
    pub from_history: bool,
    /// The armed deadline: 50% of the estimate (capped by the measured
    /// fault-free wall-clock, which the history estimate tracks).
    pub deadline_millis: f64,
    /// Wall-clock from submission to the `DeadlineExceeded` error.
    pub time_to_error_millis: f64,
    /// `time_to_error - deadline`: how far past the deadline the
    /// cooperative cancellation let the run travel.
    pub overshoot_millis: f64,
    /// One batch's wall-clock on one worker (fault-free total ÷ batches
    /// × threads) — the unit of the cancellation-latency bound.
    pub batch_wall_millis: f64,
    /// Step-1 batches in the fault-free run.
    pub batches: u64,
    /// Candidates the cancelled run had produced when it stopped.
    pub partial_candidates: u64,
    /// Whether the ≤ 2×-batch overshoot bound was enforced.
    pub deadline_guard_enforced: bool,
    /// Fused ×4 wall-clock with hooks disabled (inert session, no token).
    pub disabled_millis: f64,
    /// The same join with a live token and an armed, never-firing plan.
    pub armed_millis: f64,
    /// Least-noise per-round `(armed - disabled) / disabled`.
    pub hook_overhead_fraction: f64,
    /// Whether the < 1% hook budget was enforced.
    pub hook_guard_enforced: bool,
}

const THREADS: usize = 4;

pub(crate) fn measure_robustness(cfg: &ExpConfig) -> RobustnessMeasurement {
    let n = cfg.large_count() / 2;
    let a = Arc::new(msj_datagen::skewed_carto(n, 24.0, cfg.seed));
    let b = Arc::new(msj_datagen::skewed_carto(n, 24.0, cfg.seed + 1));
    let fused = Execution::Fused { threads: THREADS };
    let config = JoinConfig::builder().execution(fused).build();

    // --- Cancellation latency. Warm the prepared join so the admission
    // estimate comes from observed history (≈ real wall-clock), then arm
    // a deadline at half of it.
    let engine = SpatialEngine::new(config);
    let (ha, hb) = (engine.register(a.clone()), engine.register(b.clone()));
    let request = Request::Join {
        a: ha.id(),
        b: hb.id(),
        execution: None,
    };
    let _ = engine.submit(request); // warm: Step 0 + run history
    let (response, clean_secs) = timed(|| engine.submit(request));
    let Ok(Response::Join(clean)) = response else {
        panic!("fault-free join failed");
    };
    let batch_pairs = DEFAULT_BATCH_PAIRS as u64;
    let batches = clean.stats.mbr_join.candidates.div_ceil(batch_pairs).max(1);
    // One batch on one worker: the fused total is `batches` batches
    // spread over `THREADS` lanes.
    let batch_wall_secs = clean_secs / batches as f64 * THREADS as f64;

    let estimated_s = clean.admission.estimated_s;
    // The §5 model prices page accesses and exact tests in the paper's
    // cost units, which can sit orders of magnitude above wall-clock on
    // modern hardware — capping by the measured fault-free wall keeps
    // "50% of the estimate" a deadline the join can actually blow.
    let deadline_secs = 0.5 * estimated_s.min(clean_secs);
    let token = CancelToken::with_deadline(Duration::from_secs_f64(deadline_secs));
    let start = Instant::now();
    let partial_candidates = match engine.submit_with_cancel(request, &token) {
        Err(EngineError::DeadlineExceeded {
            partial_candidates, ..
        }) => partial_candidates,
        other => panic!("deadline at 50% of the estimate must trip, got {other:?}"),
    };
    let time_to_error = start.elapsed().as_secs_f64();
    let overshoot = (time_to_error - deadline_secs).max(0.0);
    // Cooperative cancellation stops within a batch boundary per worker;
    // enforce the acceptance bound where the clock is signal.
    let deadline_guard_enforced = !cfg!(debug_assertions) && clean_secs >= 0.020;
    if deadline_guard_enforced {
        assert!(
            overshoot <= (2.0 * batch_wall_secs).max(0.001),
            "deadline overshoot {:.3} ms exceeds 2x one batch ({:.3} ms)",
            overshoot * 1e3,
            batch_wall_secs * 1e3,
        );
    }

    // --- Fault-hook overhead: disabled vs armed-but-never-firing, timed
    // back-to-back per round so a load spike inflates both sides and
    // cancels in the ratio (same discipline as the obs overhead guard).
    let disabled_engine = SpatialEngine::new(config);
    let (da, db) = (
        disabled_engine.register(a.clone()),
        disabled_engine.register(b.clone()),
    );
    let disabled = disabled_engine.prepare_join(&da, &db);
    let armed_engine = SpatialEngine::new(
        config
            .to_builder()
            .fault(FaultConfig::seeded(
                cfg.seed,
                FaultKind::CancelAtBatch { batch: u32::MAX },
            ))
            .build(),
    );
    let (xa, xb) = (armed_engine.register(a.clone()), armed_engine.register(b));
    let armed = armed_engine.prepare_join(&xa, &xb);
    let _ = disabled.run_with(fused);
    let _ = armed
        .try_run_with(fused, Some(&CancelToken::new()))
        .expect("armed plan never fires");

    let mut disabled_secs = f64::INFINITY;
    let mut armed_secs = f64::INFINITY;
    let mut overhead = f64::INFINITY;
    for _ in 0..REPS {
        let t = Instant::now();
        let _ = disabled.run_with(fused);
        let off = t.elapsed().as_secs_f64();
        let live = CancelToken::new();
        let t = Instant::now();
        let _ = armed
            .try_run_with(fused, Some(&live))
            .expect("armed plan never fires");
        let on = t.elapsed().as_secs_f64();
        disabled_secs = disabled_secs.min(off);
        armed_secs = armed_secs.min(on);
        overhead = overhead.min((on - off) / off.max(1e-12));
    }
    let hook_guard_enforced = !cfg!(debug_assertions) && disabled_secs >= 0.020;
    if hook_guard_enforced {
        assert!(
            overhead < 0.01,
            "fault-hook overhead {:.2}% exceeds the 1% budget \
             (armed {:.2} ms vs disabled {:.2} ms)",
            overhead * 100.0,
            armed_secs * 1e3,
            disabled_secs * 1e3,
        );
    }

    RobustnessMeasurement {
        estimated_millis: estimated_s * 1e3,
        from_history: clean.admission.from_history,
        deadline_millis: deadline_secs * 1e3,
        time_to_error_millis: time_to_error * 1e3,
        overshoot_millis: overshoot * 1e3,
        batch_wall_millis: batch_wall_secs * 1e3,
        batches,
        partial_candidates,
        deadline_guard_enforced,
        disabled_millis: disabled_secs * 1e3,
        armed_millis: armed_secs * 1e3,
        hook_overhead_fraction: overhead,
        hook_guard_enforced,
    }
}

pub fn robustness(cfg: &ExpConfig) -> String {
    let m = measure_robustness(cfg);
    let mut out = section(
        "robustness",
        "failure story: cancellation latency and fault-hook overhead",
    );
    out.push_str(&format!(
        "fused x{THREADS} join, {} step-1 batches of {} pairs\n\n\
         cancellation latency (deadline = 50% of the §5 estimate):\n\
         \u{20} estimate          {} ms ({})\n\
         \u{20} deadline          {} ms\n\
         \u{20} time-to-error     {} ms (DeadlineExceeded, {} partial candidates)\n\
         \u{20} overshoot         {} ms vs bound 2 x one batch = {} ms{}\n\n\
         fault-hook overhead (armed-but-never-firing vs disabled; the armed\n\
         run does a strict superset of the disabled per-batch work, so this\n\
         upper-bounds the disabled hooks):\n\
         \u{20} disabled          {} ms\n\
         \u{20} armed             {} ms\n\
         \u{20} overhead          {}% vs the < 1% budget{}\n",
        m.batches,
        DEFAULT_BATCH_PAIRS,
        f(m.estimated_millis, 2),
        if m.from_history {
            "from observed history"
        } else {
            "a-priori"
        },
        f(m.deadline_millis, 2),
        f(m.time_to_error_millis, 2),
        m.partial_candidates,
        f(m.overshoot_millis, 3),
        f(2.0 * m.batch_wall_millis, 3),
        if m.deadline_guard_enforced {
            " (enforced)"
        } else {
            " (reported; guard needs a release build and a >= 20 ms join)"
        },
        f(m.disabled_millis, 2),
        f(m.armed_millis, 2),
        f(m.hook_overhead_fraction * 100.0, 2),
        if m.hook_guard_enforced {
            " (enforced)"
        } else {
            " (reported; guard needs a release build and a >= 20 ms join)"
        },
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn robustness_reports_both_cells() {
        let cfg = ExpConfig {
            seed: 13,
            scale: Scale::Quick,
        };
        let report = robustness(&cfg);
        for needle in [
            "cancellation latency",
            "time-to-error",
            "DeadlineExceeded",
            "fault-hook overhead",
            "disabled",
            "armed",
            "1% budget",
        ] {
            assert!(report.contains(needle), "missing {needle}:\n{report}");
        }
    }
}

//! The `cold-start` experiment: loading persisted page-aligned Step-0
//! segments versus rebuilding Step 0 from the raw relations.
//!
//! The engine registers the skewed cartographic workload through an
//! armed [`StoreConfig`] (write-through), is dropped, and is then
//! reopened with [`SpatialEngine::open`] — the mmap-style cold start
//! that deserializes R*-tree arenas, approximation columns, TR*
//! representations and pair raster signatures from their checksummed
//! segment files with zero re-parsing. The report prints rebuild vs
//! load wall-clock per section, the segment file sizes, and the
//! dataset-level speedup; every replayed request's response is asserted
//! byte-identical between the rebuilt and the reloaded engine. Above
//! the timer-noise floor the PR's acceptance guard (cold start ≥ 10×
//! faster than rebuild) is enforced, not just reported.

use super::ExpConfig;
use crate::report::{f, section, Table};
use msj_core::{JoinConfig, Request, Response, SpatialEngine, StoreConfig, TreeLoader};
use msj_exact::{ExactAlgorithm, TrStarStore};
use msj_sam::{PageLayout, RStarTree};
use msj_store::Store;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Replayed request count per engine (join + the selection probes).
const PROBES: usize = 4;

/// The acceptance guard only binds when the rebuild baseline is above
/// timer noise (quick smoke runs stay informative, never flaky).
const GUARD_FLOOR_MILLIS: f64 = 50.0;

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn tmp_store(seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "msj-bench-coldstart-{}-{}-{}",
        std::process::id(),
        seed,
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// One row of the per-section breakdown (dataset 0's segment file).
pub(crate) struct SectionRow {
    pub name: &'static str,
    pub bytes: u64,
    /// `None` for the relation section — it has no rebuild path (it *is*
    /// the source the other sections rebuild from).
    pub rebuild_millis: Option<f64>,
    pub load_millis: f64,
}

/// The measurement shared by the report and the machine-readable bench.
pub(crate) struct ColdStart {
    pub objects: usize,
    /// Pure Step-0 rebuild per dataset (no store attached).
    pub rebuild_millis: [f64; 2],
    /// [`SpatialEngine::open`] wall-clock for both datasets.
    pub open_millis: f64,
    pub speedup: f64,
    pub store_bytes: [u64; 2],
    pub sections: Vec<SectionRow>,
    pub digest_equal: bool,
    pub guard_enforced: bool,
}

fn payloads(engine: &SpatialEngine, requests: &[Request]) -> Vec<Vec<u64>> {
    engine
        .submit_batch(requests.iter().cloned())
        .into_iter()
        .map(|r| match r.expect("cold-start request failed") {
            Response::Join(join) => join
                .pairs
                .into_iter()
                .map(|(x, y)| (u64::from(x) << 32) | u64::from(y))
                .collect(),
            Response::Selection(sel) => sel.ids.into_iter().map(u64::from).collect(),
        })
        .collect()
}

pub(crate) fn measure_cold_start(cfg: &ExpConfig) -> ColdStart {
    let n = cfg.large_count() / 2;
    let a = std::sync::Arc::new(msj_datagen::skewed_carto(n, 24.0, cfg.seed));
    let b = std::sync::Arc::new(msj_datagen::skewed_carto(n, 24.0, cfg.seed + 1));
    let config = JoinConfig::default();

    let (points, windows) = super::serving::serving_queries(&a, PROBES);
    let mut requests = vec![Request::Join {
        a: 0,
        b: 1,
        execution: None,
    }];
    for (p, w) in points.iter().zip(&windows) {
        requests.push(Request::Point {
            dataset: 0,
            point: *p,
        });
        requests.push(Request::Window {
            dataset: 1,
            window: *w,
        });
    }

    // Rebuild baseline: pure Step 0, no store attached.
    let plain = SpatialEngine::new(config);
    let t = Instant::now();
    plain.register(a.clone());
    let r0 = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    plain.register(b.clone());
    let r1 = t.elapsed().as_secs_f64() * 1e3;
    let reference = payloads(&plain, &requests);
    drop(plain);

    // Write-through: persist every artifact (the join also writes the
    // pair raster segment), then drop the engine.
    let dir = tmp_store(cfg.seed);
    let store_bytes = {
        let writer = SpatialEngine::new(config)
            .with_store(StoreConfig::new(&dir))
            .expect("arm store");
        writer.register(a.clone());
        writer.register(b.clone());
        let warmed = payloads(&writer, &requests);
        assert_eq!(warmed, reference, "write-through engine diverged");
        let store = Store::open(&dir).expect("reopen store");
        [
            store.dataset_bytes(0).expect("ds_0 persisted"),
            store.dataset_bytes(1).expect("ds_1 persisted"),
        ]
    };

    // Cold start: segments → resident engine, zero re-parse.
    let t = Instant::now();
    let reopened = SpatialEngine::open(config, StoreConfig::new(&dir)).expect("cold start");
    let open_millis = t.elapsed().as_secs_f64() * 1e3;
    let digest_equal = payloads(&reopened, &requests) == reference;
    assert!(digest_equal, "cold start diverged from the rebuilt engine");
    drop(reopened);

    // Per-section breakdown on dataset 0: segment payload bytes, rebuild
    // wall-clock of that artifact from the relation, and the load-side
    // decode (checksummed read + arena reconstruction).
    let store = Store::open(&dir).expect("reopen store");
    let sizes = store.dataset_sections(0).expect("section table");
    let bytes_of = |name: &str| {
        sizes
            .iter()
            .find(|(s, _)| s.name() == name)
            .map_or(0, |&(_, b)| b)
    };
    let load = store.read_dataset(0, None).expect("read ds_0");
    let mut sections = vec![SectionRow {
        name: "relation",
        bytes: bytes_of("relation"),
        rebuild_millis: None,
        load_millis: time_millis(|| {
            load.relation.as_ref().expect("relation section").len();
        }),
    }];
    if let Some(Ok(export)) = load.tree {
        let layout = PageLayout::with_extra_bytes(config.page_size, config.extra_leaf_bytes());
        let rebuild = time_millis(|| {
            let keys = a.iter().map(|o| (o.mbr(), o.id));
            match config.loader {
                TreeLoader::Str => RStarTree::bulk_load(layout, keys),
                TreeLoader::Incremental => RStarTree::insert_all(layout, keys),
            };
        });
        sections.push(SectionRow {
            name: "tree",
            bytes: bytes_of("tree"),
            rebuild_millis: Some(rebuild),
            load_millis: time_millis(|| {
                RStarTree::from_export(export).expect("tree decode");
            }),
        });
    }
    if let (Some(Ok(export)), Some(kind)) = (load.conservative, config.conservative) {
        sections.push(SectionRow {
            name: "conservative",
            bytes: bytes_of("conservative"),
            rebuild_millis: Some(time_millis(|| {
                msj_approx::ConservativeStore::build(kind, &a);
            })),
            load_millis: time_millis(|| {
                msj_approx::ConservativeStore::from_export(export).expect("conservative decode");
            }),
        });
    }
    if let (Some(Ok(export)), Some(kind)) = (load.progressive, config.progressive) {
        sections.push(SectionRow {
            name: "progressive",
            bytes: bytes_of("progressive"),
            rebuild_millis: Some(time_millis(|| {
                msj_approx::ProgressiveStore::build(kind, &a);
            })),
            load_millis: time_millis(|| {
                msj_approx::ProgressiveStore::from_export(export).expect("progressive decode");
            }),
        });
    }
    if let (Some(Ok(export)), ExactAlgorithm::TrStar { max_entries }) = (load.trstar, config.exact)
    {
        sections.push(SectionRow {
            name: "trstar",
            bytes: bytes_of("trstar"),
            rebuild_millis: Some(time_millis(|| {
                TrStarStore::build(&a, max_entries);
            })),
            load_millis: time_millis(|| {
                TrStarStore::from_export(export).expect("trstar decode");
            }),
        });
    }
    std::fs::remove_dir_all(&dir).ok();

    let rebuild_total = r0 + r1;
    let speedup = rebuild_total / open_millis.max(1e-9);
    let guard_enforced = rebuild_total >= GUARD_FLOOR_MILLIS;
    if guard_enforced {
        assert!(
            speedup >= 10.0,
            "cold start must be >= 10x faster than rebuild: rebuild {rebuild_total:.1} ms, \
             open {open_millis:.1} ms ({speedup:.1}x)"
        );
    }
    ColdStart {
        objects: n,
        rebuild_millis: [r0, r1],
        open_millis,
        speedup,
        store_bytes,
        sections,
        digest_equal,
        guard_enforced,
    }
}

fn time_millis(run: impl FnOnce()) -> f64 {
    let t = Instant::now();
    run();
    t.elapsed().as_secs_f64() * 1e3
}

pub fn cold_start(cfg: &ExpConfig) -> String {
    let m = measure_cold_start(cfg);
    let mut out = section(
        "cold-start",
        "persistent store: segment load vs Step-0 rebuild",
    );
    out.push_str(&format!(
        "workload: skewed_carto {} x {} objects; page-aligned checksummed segments;\n\
         every replayed request byte-identical between rebuilt and reloaded engines\n\n",
        m.objects, m.objects,
    ));

    let mut table = Table::new([
        "section (ds 0)",
        "bytes",
        "rebuild ms",
        "load ms",
        "speedup x",
    ]);
    for row in &m.sections {
        table.row([
            row.name.into(),
            row.bytes.to_string(),
            row.rebuild_millis.map_or("-".into(), |v| f(v, 2)),
            f(row.load_millis, 2),
            row.rebuild_millis
                .map_or("-".into(), |v| f(v / row.load_millis.max(1e-9), 1)),
        ]);
    }
    out.push_str(&table.render());

    out.push_str(&format!(
        "\nstore files: ds_0 {} B, ds_1 {} B (4096-B pages, FNV-checksummed sections)\n\
         rebuild (register): {} + {} ms; cold open (both datasets): {} ms\n\
         cold-start speedup: {}x  [>= 10x guard {}]\n\
         digest agreement: {}\n",
        m.store_bytes[0],
        m.store_bytes[1],
        f(m.rebuild_millis[0], 1),
        f(m.rebuild_millis[1], 1),
        f(m.open_millis, 1),
        f(m.speedup, 1),
        if m.guard_enforced {
            "enforced"
        } else {
            "reported only (baseline under the noise floor)"
        },
        if m.digest_equal {
            "identical"
        } else {
            "DIVERGED"
        },
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn cold_start_reports_sections_and_agrees() {
        let cfg = ExpConfig {
            seed: 5,
            scale: Scale::Quick,
        };
        let report = cold_start(&cfg);
        for needle in [
            "rebuild ms",
            "load ms",
            "relation",
            "tree",
            "conservative",
            "progressive",
            "trstar",
            "cold-start speedup",
            "digest agreement: identical",
        ] {
            assert!(report.contains(needle), "missing {needle}:\n{report}");
        }
    }
}

//! The `serving` experiment: query traffic against a resident
//! [`SpatialEngine`] versus paying Step-0 preparation per query.
//!
//! The engine registers the skewed cartographic workload once (R*-trees,
//! approximation stores, TR* representations, raster signatures — all
//! owned behind `Arc`), then serves point-, window- and join-shaped
//! requests through the unified [`Request`]/[`Response`] surface. The
//! prepare-per-query columns rebuild a fresh engine per query — the
//! one-shot API shape this PR retires for serving workloads.
//!
//! Every query's response is compared between the two paths (panics on
//! divergence), and the report prints per-query latency, queries/sec and
//! the resident speedup, next to each response's attached §5 admission
//! accounting (estimated vs. observed filter yield).

use super::ExpConfig;
use crate::report::{f, pct, section, Table};
use msj_core::{Execution, JoinConfig, Request, Response, SpatialEngine};
use msj_geom::{Point, Rect, Relation};
use std::time::Instant;

/// Queries replayed through the prepare-per-query path (a fresh engine
/// per query is orders of magnitude slower; this bounds the runtime while
/// still measuring real per-query latency). Shared with the
/// machine-readable bench (`crate::jsonout`) so the report and the JSON
/// acceptance matrix measure the same protocol.
pub(crate) const SERVING_PREPARE_QUERIES: usize = 12;

/// Repeated executions per join-serving mode (shared with
/// `crate::jsonout`).
pub(crate) const SERVING_JOIN_RUNS: usize = 3;

/// The deterministic selection workloads over the joined region — one
/// definition for the report and the JSON bench, so the two matrices
/// cannot drift apart.
pub(crate) fn serving_queries(a: &Relation, count: usize) -> (Vec<Point>, Vec<Rect>) {
    let world = a.bounding_rect().expect("nonempty serving workload");
    let points: Vec<Point> = (0..count)
        .map(|i| {
            Point::new(
                world.xmin() + world.width() * ((i as f64) * 0.3779).fract(),
                world.ymin() + world.height() * ((i as f64) * 0.6151).fract(),
            )
        })
        .collect();
    let windows: Vec<Rect> = points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let side = world.width() * (0.005 + 0.03 * ((i as f64) * 0.137).fract());
            Rect::from_bounds(p.x, p.y, p.x + side, p.y + side)
        })
        .collect();
    (points, windows)
}

pub fn serving(cfg: &ExpConfig) -> String {
    let n = cfg.large_count() / 2;
    let a = std::sync::Arc::new(msj_datagen::skewed_carto(n, 24.0, cfg.seed));
    let b = std::sync::Arc::new(msj_datagen::skewed_carto(n, 24.0, cfg.seed + 1));
    let config = JoinConfig::default();
    let engine = SpatialEngine::new(config);
    let (ha, hb) = (engine.register(a.clone()), engine.register(b.clone()));
    let q = cfg.query_count();
    let (points, windows) = serving_queries(&a, q);

    let mut out = section(
        "serving",
        "resident engine vs prepare-per-query (points, windows, joins)",
    );
    out.push_str(&format!(
        "workload: skewed_carto {} x {} objects; {} selection queries resident,\n\
         {} replayed per-prepare; join run fused x4; every replayed query's\n\
         response set is asserted identical between the two paths\n\n",
        a.len(),
        b.len(),
        q,
        SERVING_PREPARE_QUERIES.min(q),
    ));

    let mut table = Table::new([
        "kind",
        "mode",
        "queries",
        "total ms",
        "per-query µs",
        "queries/sec",
        "speedup x",
    ]);

    let requests = |i: usize| -> (Request, Request) {
        (
            Request::Point {
                dataset: ha.id(),
                point: points[i],
            },
            Request::Window {
                dataset: ha.id(),
                window: windows[i],
            },
        )
    };
    let ids_of = |resp: Result<Response, msj_core::EngineError>| -> Vec<u32> {
        let Ok(Response::Selection(sel)) = resp else {
            panic!("selection request failed");
        };
        let mut ids = sel.ids;
        ids.sort_unstable();
        ids
    };

    for (kind, pick) in [("point", 0usize), ("window", 1usize)] {
        let select = |req: (Request, Request)| if pick == 0 { req.0 } else { req.1 };
        // Resident: the full workload through the batched surface.
        let batch: Vec<Request> = (0..q).map(|i| select(requests(i))).collect();
        let _ = engine.submit(batch[0]); // warm lazy state
        let t = Instant::now();
        let responses = engine.submit_batch(batch.iter().copied());
        let resident_secs = t.elapsed().as_secs_f64();
        let resident_subset: Vec<Vec<u32>> = responses
            .into_iter()
            .take(SERVING_PREPARE_QUERIES.min(q))
            .map(ids_of)
            .collect();

        // Prepare-per-query: fresh engine, full Step 0, single probe.
        let prep_q = SERVING_PREPARE_QUERIES.min(q);
        let t = Instant::now();
        let mut prepare_results = Vec::new();
        for i in 0..prep_q {
            let fresh = SpatialEngine::new(config);
            let _h = fresh.register(a.clone());
            prepare_results.push(ids_of(fresh.submit(match select(requests(i)) {
                Request::Point { point, .. } => Request::Point { dataset: 0, point },
                Request::Window { window, .. } => Request::Window { dataset: 0, window },
                other => other,
            })));
        }
        let prepare_secs = t.elapsed().as_secs_f64();
        assert_eq!(
            resident_subset, prepare_results,
            "{kind}: resident and prepare-per-query responses diverged"
        );

        let per_resident = resident_secs / q as f64;
        let per_prepare = prepare_secs / prep_q.max(1) as f64;
        table.row([
            kind.into(),
            "resident".into(),
            q.to_string(),
            f(resident_secs * 1e3, 1),
            f(per_resident * 1e6, 1),
            f(q as f64 / resident_secs.max(1e-12), 0),
            f(per_prepare / per_resident.max(1e-12), 1),
        ]);
        table.row([
            kind.into(),
            "prepare-per-query".into(),
            prep_q.to_string(),
            f(prepare_secs * 1e3, 1),
            f(per_prepare * 1e6, 1),
            f(prep_q as f64 / prepare_secs.max(1e-12), 0),
            "-".into(),
        ]);
    }

    // Join serving: the cached owned PreparedJoin re-executed vs full
    // Step 0 per execution.
    const JOIN_RUNS: usize = SERVING_JOIN_RUNS;
    let join_req = Request::Join {
        a: ha.id(),
        b: hb.id(),
        execution: Some(Execution::Fused { threads: 4 }),
    };
    let _ = engine.submit(join_req); // warm + builds the prepared join
    let mut last_admission = None;
    let t = Instant::now();
    let mut resident_pairs = Vec::new();
    for _ in 0..JOIN_RUNS {
        let Ok(Response::Join(join)) = engine.submit(join_req) else {
            panic!("join request failed");
        };
        last_admission = Some(join.admission);
        resident_pairs = join.pairs;
    }
    let resident_secs = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let mut prepare_pairs = Vec::new();
    for _ in 0..JOIN_RUNS {
        let fresh = SpatialEngine::new(config);
        let (fa, fb) = (fresh.register(a.clone()), fresh.register(b.clone()));
        let Ok(Response::Join(join)) = fresh.submit(Request::Join {
            a: fa.id(),
            b: fb.id(),
            execution: Some(Execution::Fused { threads: 4 }),
        }) else {
            panic!("join request failed");
        };
        prepare_pairs = join.pairs;
    }
    let prepare_secs = t.elapsed().as_secs_f64();
    assert_eq!(
        resident_pairs, prepare_pairs,
        "join: resident and prepare-per-query response sets diverged"
    );

    let per_resident = resident_secs / JOIN_RUNS as f64;
    let per_prepare = prepare_secs / JOIN_RUNS as f64;
    table.row([
        "join".into(),
        "resident".into(),
        JOIN_RUNS.to_string(),
        f(resident_secs * 1e3, 1),
        f(per_resident * 1e6, 0),
        f(JOIN_RUNS as f64 / resident_secs.max(1e-12), 2),
        f(per_prepare / per_resident.max(1e-12), 1),
    ]);
    table.row([
        "join".into(),
        "prepare-per-query".into(),
        JOIN_RUNS.to_string(),
        f(prepare_secs * 1e3, 1),
        f(per_prepare * 1e6, 0),
        f(JOIN_RUNS as f64 / prepare_secs.max(1e-12), 2),
        "-".into(),
    ]);
    out.push_str(&table.render());

    if let Some(admission) = last_admission {
        out.push_str(&format!(
            "\njoin admission accounting (§5 model): estimated {:.3}s ({}), observed\n\
             breakdown {:.3}s; filter yield assumed {} vs observed {}; raster\n\
             decided observed {}\n",
            admission.estimated_s,
            if admission.from_history {
                "from observed history"
            } else {
                "a-priori"
            },
            admission.cost.total_s(),
            pct(admission.cost.filter_yield_estimated),
            pct(admission.cost.filter_yield_observed),
            pct(admission.cost.raster_decided_observed),
        ));
    }
    out.push_str(
        "\nresponse sets agree on every replayed query; the resident engine pays\n\
         Step 0 once at registration and serves every further query from shared\n\
         owned state (Arc'd trees, stores, signatures)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn serving_reports_all_modes_and_agrees() {
        let cfg = ExpConfig {
            seed: 9,
            scale: Scale::Quick,
        };
        let report = serving(&cfg);
        for needle in [
            "resident",
            "prepare-per-query",
            "point",
            "window",
            "join",
            "queries/sec",
            "admission accounting",
        ] {
            assert!(report.contains(needle), "missing {needle}:\n{report}");
        }
    }
}

//! The `kernels` experiment: the vectorized hot-path kernels measured in
//! isolation, per dispatch path.
//!
//! Three microbenches mirror the three batched loops the join pipeline
//! runs hottest (the same inputs every path, straight out of the skewed
//! cartographic workload):
//!
//! * **sweep** — the forward plane-sweep MBR kernel
//!   ([`msj_geom::kernels::sweep_scan`]) over the xmin-sorted SoA
//!   columns of both relations, exactly the Step-1 inner loop of the
//!   partitioned backend and the R*-traversal's equal-level merge;
//! * **mer-accept** — the pair-gathered MER fast-accept
//!   ([`msj_geom::kernels::rect_pairs_intersect`]) over the candidate
//!   stream, the Step-2 `ConvexMer` wide mask;
//! * **raster-decide** — the Step-2a interval merge-intersect
//!   ([`msj_approx::raster_decide_with`]) over the candidate stream's
//!   Hilbert signatures.
//!
//! Every cell reports items/sec and ns/item; the FNV digest of each
//! kernel's full output is asserted equal across dispatch paths —
//! the scalar-agreement gate, measured rather than assumed.

use super::ExpConfig;
use crate::report::{f, section, Table};
use crate::timing::timed;
use msj_approx::{
    auto_grid_bits, raster_decide_with, ProgressiveKind, ProgressiveStore, RasterDecision,
    RasterGrid, RasterStore,
};
use msj_geom::kernels::{self, KernelDispatch};
use msj_geom::{ObjectId, Rect, Relation};

/// One measured cell: a kernel on a dispatch path.
pub(crate) struct KernelCell {
    pub kernel: &'static str,
    pub path: &'static str,
    /// Items the kernel consumed per run (pair tests for the sweep,
    /// candidate pairs for the mask kernels).
    pub items: u64,
    pub ns_per_item: f64,
    pub items_per_sec: f64,
    /// Scalar ns/item over this path's ns/item (1.0 for scalar).
    pub speedup_vs_scalar: f64,
    /// FNV-1a over the kernel's full output — equal across paths by
    /// assertion.
    pub digest: u64,
}

fn fnv_bytes(acc: u64, bytes: &[u8]) -> u64 {
    let mut h = acc;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;

/// xmin-sorted SoA columns of one relation's MBRs (the layout the
/// partitioned sweep repacks per tile).
struct SweepSide {
    ids: Vec<ObjectId>,
    xmin: Vec<f64>,
    ymin: Vec<f64>,
    xmax: Vec<f64>,
    ymax: Vec<f64>,
}

impl SweepSide {
    fn build(rel: &Relation) -> Self {
        let mut rects: Vec<(Rect, ObjectId)> = rel.iter().map(|o| (o.mbr(), o.id)).collect();
        rects.sort_by(|p, q| p.0.xmin().partial_cmp(&q.0.xmin()).expect("finite xmin"));
        let mut side = SweepSide {
            ids: Vec::with_capacity(rects.len()),
            xmin: Vec::with_capacity(rects.len()),
            ymin: Vec::with_capacity(rects.len()),
            xmax: Vec::with_capacity(rects.len()),
            ymax: Vec::with_capacity(rects.len()),
        };
        for (r, id) in rects {
            side.ids.push(id);
            side.xmin.push(r.xmin());
            side.ymin.push(r.ymin());
            side.xmax.push(r.xmax());
            side.ymax.push(r.ymax());
        }
        side
    }
}

/// One full forward plane sweep over both sorted sides — the tile_sweep
/// merge loop with the whole workload as a single tile. Returns
/// (pair tests, hit pairs).
fn run_sweep(d: KernelDispatch, a: &SweepSide, b: &SweepSide) -> (u64, Vec<(ObjectId, ObjectId)>) {
    let mut tests = 0u64;
    let mut pairs = Vec::new();
    let mut hits: Vec<u32> = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.ids.len() && j < b.ids.len() {
        if a.xmin[i] <= b.xmin[j] {
            hits.clear();
            tests += kernels::sweep_scan(
                d, a.xmax[i], a.ymin[i], a.ymax[i], &b.xmin, &b.ymin, &b.ymax, j, &mut hits,
            );
            for &k in &hits {
                pairs.push((a.ids[i], b.ids[k as usize]));
            }
            i += 1;
        } else {
            hits.clear();
            tests += kernels::sweep_scan(
                d, b.xmax[j], b.ymin[j], b.ymax[j], &a.xmin, &a.ymin, &a.ymax, i, &mut hits,
            );
            for &k in &hits {
                pairs.push((a.ids[k as usize], b.ids[j]));
            }
            j += 1;
        }
    }
    (tests, pairs)
}

/// Measures the three kernels on every available dispatch path over the
/// skewed cartographic workload; asserts cross-path digest agreement.
pub(crate) fn measure_kernels(cfg: &ExpConfig) -> Vec<KernelCell> {
    let n = cfg.large_count() / 2;
    let a = msj_datagen::skewed_carto(n, 24.0, cfg.seed);
    let b = msj_datagen::skewed_carto(n, 24.0, cfg.seed + 1);
    let side_a = SweepSide::build(&a);
    let side_b = SweepSide::build(&b);

    // The candidate stream and columnar payloads the mask kernels
    // consume — built once, shared by every path.
    let (_, candidates) = run_sweep(KernelDispatch::Scalar, &side_a, &side_b);
    let mer_a = ProgressiveStore::build(ProgressiveKind::Mer, &a);
    let mer_b = ProgressiveStore::build(ProgressiveKind::Mer, &b);
    let (mers_a, mers_b) = (
        mer_a.mer_column().expect("MER column"),
        mer_b.mer_column().expect("MER column"),
    );
    let grid = RasterGrid::covering(&a, &b, auto_grid_bits(&a, &b)).expect("raster grid");
    let raster_a = RasterStore::build(&grid, &a);
    let raster_b = RasterStore::build(&grid, &b);

    let mut cells: Vec<KernelCell> = Vec::new();
    let push = |kernel: &'static str,
                path: &'static str,
                items: u64,
                secs: f64,
                digest: u64,
                cells: &mut Vec<KernelCell>| {
        let scalar_ns = cells
            .iter()
            .find(|c| c.kernel == kernel && c.path == "scalar")
            .map(|c| c.ns_per_item);
        let ns = secs * 1e9 / items.max(1) as f64;
        if let Some(expect) = cells.iter().find(|c| c.kernel == kernel).map(|c| c.digest) {
            assert_eq!(digest, expect, "{kernel}/{path}: output digest diverged");
        }
        cells.push(KernelCell {
            kernel,
            path,
            items,
            ns_per_item: ns,
            items_per_sec: items as f64 / secs.max(1e-12),
            speedup_vs_scalar: scalar_ns.map_or(1.0, |s| s / ns.max(1e-12)),
            digest,
        });
    };

    for d in KernelDispatch::all_available() {
        let path = d.label();

        // Kernel 1: the plane-sweep MBR join loop.
        let _ = run_sweep(d, &side_a, &side_b); // warm-up
        let ((tests, pairs), secs) = timed(|| run_sweep(d, &side_a, &side_b));
        let digest = pairs.iter().fold(FNV_OFFSET, |acc, &(x, y)| {
            fnv_bytes(fnv_bytes(acc, &x.to_le_bytes()), &y.to_le_bytes())
        });
        push("sweep", path, tests, secs, digest, &mut cells);

        // Kernel 2: the pair-gathered MER fast-accept mask.
        let run_mer = || {
            let mut mask = Vec::new();
            kernels::rect_pairs_intersect(d, mers_a, mers_b, &candidates, &mut mask);
            mask
        };
        let _ = run_mer();
        let (mask, secs) = timed(run_mer);
        let digest = mask
            .iter()
            .fold(FNV_OFFSET, |acc, &hit| fnv_bytes(acc, &[hit as u8]));
        push(
            "mer-accept",
            path,
            candidates.len() as u64,
            secs,
            digest,
            &mut cells,
        );

        // Kernel 3: the Step-2a raster interval merge-intersect.
        let run_raster = || {
            let mut out = Vec::with_capacity(candidates.len());
            for &(ia, ib) in &candidates {
                out.push(
                    match raster_decide_with(d, raster_a.signature(ia), raster_b.signature(ib)) {
                        RasterDecision::Hit => 1u8,
                        RasterDecision::Drop => 2,
                        RasterDecision::Inconclusive => 0,
                    },
                );
            }
            out
        };
        let _ = run_raster();
        let (decisions, secs) = timed(run_raster);
        let digest = fnv_bytes(FNV_OFFSET, &decisions);
        push(
            "raster-decide",
            path,
            candidates.len() as u64,
            secs,
            digest,
            &mut cells,
        );
    }
    cells
}

/// The `kernels` experiment (see the module docs).
pub fn kernels(cfg: &ExpConfig) -> String {
    let mut out = section(
        "kernels",
        "vectorized hot-path kernels: per-dispatch microbenchmarks",
    );
    out.push_str(&format!(
        "auto-detected widest path: {}; every kernel's output digest is asserted\n\
         equal across paths (the scalar-agreement gate); items = pair tests for\n\
         the sweep, candidate pairs for the mask kernels\n\n",
        KernelDispatch::auto().label()
    ));
    let cells = measure_kernels(cfg);
    let mut table = Table::new([
        "kernel",
        "path",
        "items",
        "ns/item",
        "M items/s",
        "speedup",
        "digest",
    ]);
    for c in &cells {
        table.row([
            c.kernel.into(),
            c.path.into(),
            format!("{}", c.items),
            f(c.ns_per_item, 2),
            f(c.items_per_sec / 1e6, 2),
            format!("{:.2}x", c.speedup_vs_scalar),
            format!("{:#018x}", c.digest),
        ]);
    }
    out.push_str(&table.render());
    out.push('\n');
    out.push_str("all dispatch paths produced identical kernel outputs\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn kernels_experiment_measures_every_available_path() {
        let cfg = ExpConfig {
            seed: 9,
            scale: Scale::Quick,
        };
        let report = kernels(&cfg);
        assert!(report.contains("sweep"));
        assert!(report.contains("mer-accept"));
        assert!(report.contains("raster-decide"));
        assert!(report.contains("scalar"));
        assert!(report.contains("identical kernel outputs"));
    }

    #[test]
    fn sweep_matches_quadratic_reference() {
        let a = msj_datagen::small_carto(30, 20.0, 41);
        let b = msj_datagen::small_carto(30, 20.0, 42);
        let (sa, sb) = (SweepSide::build(&a), SweepSide::build(&b));
        let mut expect: Vec<(ObjectId, ObjectId)> = Vec::new();
        for oa in a.iter() {
            for ob in b.iter() {
                if oa.mbr().intersects(&ob.mbr()) {
                    expect.push((oa.id, ob.id));
                }
            }
        }
        expect.sort_unstable();
        for d in KernelDispatch::all_available() {
            let (tests, mut pairs) = run_sweep(d, &sa, &sb);
            pairs.sort_unstable();
            assert_eq!(pairs, expect, "{}", d.label());
            assert!(tests >= pairs.len() as u64);
        }
    }
}

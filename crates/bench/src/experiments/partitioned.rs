//! Step-1 backend comparison: the paper's synchronized R*-tree traversal
//! vs the partitioned parallel plane sweep of `msj-partition`, across the
//! datagen workload shapes (the four §3.1 test series, a holed-relation
//! workload, and the §3.4/§5 bulk relations).
//!
//! Beyond the throughput table, the experiment *verifies agreement*: both
//! backends must produce the identical response set through the full
//! pipeline on every workload.

use super::ExpConfig;
use crate::report::{f, section, Table};
use msj_core::{join_source, Backend, JoinConfig, MultiStepJoin, TreeLoader};
use msj_geom::Relation;
use std::time::Instant;

/// Thread counts swept for the partitioned backend.
const THREADS: [usize; 4] = [1, 2, 4, 8];

struct Workload {
    name: String,
    a: Relation,
    b: Relation,
}

fn workloads(cfg: &ExpConfig) -> Vec<Workload> {
    let mut out: Vec<Workload> = cfg
        .all_series()
        .into_iter()
        .map(|s| Workload {
            name: s.name.clone(),
            a: s.a,
            b: s.b,
        })
        .collect();
    let holed = |seed: u64| msj_datagen::carto_with_holes(cfg.large_count() / 4, 24.0, seed);
    out.push(Workload {
        name: "holed".into(),
        a: holed(cfg.seed),
        b: holed(cfg.seed + 1),
    });
    out.push(Workload {
        name: "bulk".into(),
        a: msj_datagen::large_relation(cfg.large_count(), 0, cfg.seed),
        b: msj_datagen::large_relation(cfg.large_count(), 1, cfg.seed),
    });
    out
}

/// Times one full Step-1 execution (source construction + candidate
/// streaming); returns `(step-1 stats, seconds)`.
fn time_step1(config: &JoinConfig, a: &Relation, b: &Relation) -> (msj_core::Step1Stats, f64) {
    let start = Instant::now();
    let source = join_source(config, a, b);
    let mut count = 0u64;
    let stats = source.stream_candidates(&mut |_, _| count += 1);
    let secs = start.elapsed().as_secs_f64();
    debug_assert_eq!(stats.join.candidates, count);
    (stats, secs)
}

/// The `partitioned` experiment: Step-1 candidates/sec for the R*-tree
/// traversal vs the partitioned sweep at 1/2/4/8 threads, plus a full
/// pipeline agreement check per workload.
pub fn partitioned(cfg: &ExpConfig) -> String {
    let mut out = section(
        "partitioned",
        "step-1 backends: R*-tree traversal vs partitioned parallel sweep",
    );
    let tiles = match Backend::partitioned_auto() {
        Backend::PartitionedSweep { tiles_per_axis, .. } => tiles_per_axis,
        Backend::RStarTraversal => unreachable!("partitioned_auto is partitioned"),
    };
    out.push_str(&format!(
        "grid: {tiles}x{tiles} tiles; candidates/sec covers the full step-1 execution\n\
         (index/grid construction + candidate streaming), averaged per workload\n\n",
    ));

    let mut table = Table::new([
        "workload",
        "backend",
        "candidates",
        "step-1 ms",
        "cand/s",
        "vs R* x",
        "busiest tile",
        "repl.",
    ]);
    let mut speedup_at_4 = Vec::new();
    let mut str_speedups = Vec::new();
    let workloads = workloads(cfg);
    for workload in &workloads {
        // Step-0 loader comparison on the R*-tree backend: STR bulk
        // loading (the default) vs incremental insertion — same candidate
        // set, packed pages and a sort-based build on the STR side.
        let rstar_config = JoinConfig::default();
        let (rstar_stats, rstar_secs) = time_step1(&rstar_config, &workload.a, &workload.b);
        let candidates = rstar_stats.join.candidates;
        let incremental_config = JoinConfig::builder()
            .loader(TreeLoader::Incremental)
            .build();
        let (inc_stats, inc_secs) = time_step1(&incremental_config, &workload.a, &workload.b);
        assert_eq!(
            inc_stats.join.candidates, candidates,
            "{}: loaders must produce the same candidate count",
            workload.name
        );
        str_speedups.push((workload.name.clone(), inc_secs / rstar_secs.max(1e-12)));
        table.row([
            workload.name.clone(),
            "rstar (STR)".into(),
            candidates.to_string(),
            f(rstar_secs * 1e3, 2),
            f(candidates as f64 / rstar_secs.max(1e-12), 0),
            f(1.0, 2),
            "-".into(),
            "-".into(),
        ]);
        table.row([
            workload.name.clone(),
            "rstar (incremental)".into(),
            candidates.to_string(),
            f(inc_secs * 1e3, 2),
            f(candidates as f64 / inc_secs.max(1e-12), 0),
            f(rstar_secs / inc_secs.max(1e-12), 2),
            "-".into(),
            "-".into(),
        ]);
        for threads in THREADS {
            let config = JoinConfig::builder()
                .backend(Backend::PartitionedSweep {
                    tiles_per_axis: tiles,
                    threads,
                })
                .build();
            let (part_stats, part_secs) = time_step1(&config, &workload.a, &workload.b);
            let part_candidates = part_stats.join.candidates;
            assert_eq!(
                part_candidates, candidates,
                "{}: candidate sets must agree in size",
                workload.name
            );
            let summary = part_stats.partition.expect("partition summary");
            let speedup = rstar_secs / part_secs.max(1e-12);
            if threads == 4 {
                speedup_at_4.push((workload.name.clone(), speedup));
            }
            table.row([
                workload.name.clone(),
                format!("partitioned x{threads}"),
                part_candidates.to_string(),
                f(part_secs * 1e3, 2),
                f(part_candidates as f64 / part_secs.max(1e-12), 0),
                f(speedup, 2),
                summary.busiest_tile_candidates.to_string(),
                f(summary.replication_factor, 2),
            ]);
        }
    }
    out.push_str(&table.render());

    // Full-pipeline agreement: identical response sets on every workload.
    let mut agreements = 0usize;
    for workload in &workloads {
        let serial = MultiStepJoin::new(JoinConfig::default()).execute(&workload.a, &workload.b);
        let mut expect = serial.pairs;
        expect.sort_unstable();
        let config = JoinConfig::builder()
            .backend(Backend::PartitionedSweep {
                tiles_per_axis: tiles,
                threads: 0,
            })
            .build();
        let mut got = MultiStepJoin::new(config)
            .execute(&workload.a, &workload.b)
            .pairs;
        got.sort_unstable();
        assert_eq!(got, expect, "{}: pipelines disagree", workload.name);
        agreements += 1;
    }
    out.push_str(&format!(
        "\nagreement: {agreements}/{agreements} workloads produce identical response sets\n",
    ));
    let line = speedup_at_4
        .iter()
        .map(|(name, s)| format!("{name} {s:.2}x"))
        .collect::<Vec<_>>()
        .join(", ");
    out.push_str(&format!("step-1 speedup at 4 threads: {line}\n"));
    let line = str_speedups
        .iter()
        .map(|(name, s)| format!("{name} {s:.2}x"))
        .collect::<Vec<_>>()
        .join(", ");
    out.push_str(&format!(
        "STR bulk load vs incremental insertion (full step 1): {line}\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn partitioned_report_runs_at_quick_scale() {
        let cfg = ExpConfig {
            seed: 3,
            scale: Scale::Quick,
        };
        let report = partitioned(&cfg);
        assert!(report.contains("rstar (STR)"));
        assert!(report.contains("rstar (incremental)"));
        assert!(report.contains("STR bulk load vs incremental"));
        assert!(report.contains("partitioned x4"));
        assert!(report.contains("identical response sets"));
    }
}

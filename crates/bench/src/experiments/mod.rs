//! One reproduction function per table/figure of the paper's evaluation.
//!
//! Every experiment returns a plain-text report containing the measured
//! values next to the paper's published values. The registry at the bottom
//! maps experiment ids (`fig2`, `table3`, ...) to their functions; the
//! `repro` binary dispatches on it.

pub mod cold_start;
pub mod datasets;
pub mod exactgeo;
pub mod filters;
pub mod fused;
pub mod kernels;
pub mod partitioned;
pub mod raster;
pub mod robustness;
pub mod serving;
pub mod serving_load;
pub mod storage;
pub mod total;

use msj_datagen::{strategy_a, strategy_b, world, TestSeries};
use msj_geom::Relation;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced datasets for smoke runs and CI (~seconds).
    Quick,
    /// The paper's cartographic dataset sizes; large relations scaled to
    /// 20 000 objects (~minutes).
    Default,
    /// The paper's full 130 000-object relations for §3.4/§5.
    Full,
}

/// Experiment configuration shared by all reproductions.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    pub seed: u64,
    pub scale: Scale,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            seed: 1,
            scale: Scale::Default,
        }
    }
}

impl ExpConfig {
    /// The Europe-like relation at the configured scale.
    pub fn europe(&self) -> Relation {
        match self.scale {
            Scale::Quick => msj_datagen::small_carto(160, 60.0, self.seed),
            _ => msj_datagen::europe_like(self.seed),
        }
    }

    /// The BW-like relation at the configured scale.
    pub fn bw(&self) -> Relation {
        match self.scale {
            Scale::Quick => msj_datagen::small_carto(80, 160.0, self.seed),
            _ => msj_datagen::bw_like(self.seed),
        }
    }

    /// Object count for the §3.4/§5 large relations.
    pub fn large_count(&self) -> usize {
        match self.scale {
            Scale::Quick => 2_000,
            Scale::Default => 20_000,
            Scale::Full => 130_000,
        }
    }

    /// Number of point/window queries for Figure 10.
    pub fn query_count(&self) -> usize {
        match self.scale {
            Scale::Quick => 200,
            _ => 1_000,
        }
    }

    /// The four canonical test series (Europe A/B, BW A/B) at scale.
    pub fn all_series(&self) -> Vec<TestSeries> {
        let europe = self.europe();
        let bw = self.bw();
        let mut rng_e = StdRng::seed_from_u64(self.seed.wrapping_add(0xE0));
        let mut rng_b = StdRng::seed_from_u64(self.seed.wrapping_add(0xB0));
        vec![
            strategy_a("Europe A", &europe, world(), 0.5, 0.5),
            strategy_b("Europe B", &europe, world(), &mut rng_e),
            strategy_a("BW A", &bw, world(), 0.5, 0.5),
            strategy_b("BW B", &bw, world(), &mut rng_b),
        ]
    }

    /// One named series.
    pub fn series(&self, name: &str) -> TestSeries {
        self.all_series()
            .into_iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("unknown series {name}"))
    }
}

/// An experiment: id, short description, and the reproduction function.
pub struct Experiment {
    pub id: &'static str,
    pub description: &'static str,
    pub run: fn(&ExpConfig) -> String,
}

/// The full registry in paper order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig2",
            description: "dataset characteristics (objects, vertex stats)",
            run: datasets::fig2,
        },
        Experiment {
            id: "table1",
            description: "normalized false area of the MBR",
            run: datasets::table1,
        },
        Experiment {
            id: "table2",
            description: "test series: intersecting MBRs, hits, false hits",
            run: filters::table2,
        },
        Experiment {
            id: "fig3",
            description: "the seven approximations of one object",
            run: datasets::fig3,
        },
        Experiment {
            id: "fig4",
            description: "MBR-based false area per approximation",
            run: filters::fig4,
        },
        Experiment {
            id: "table3",
            description: "false hits identified per conservative approximation",
            run: filters::table3,
        },
        Experiment {
            id: "fig5",
            description: "false area vs identified false hits (Europe B)",
            run: filters::fig5,
        },
        Experiment {
            id: "table4",
            description: "hits identified by the false-area test",
            run: filters::table4,
        },
        Experiment {
            id: "fig8",
            description: "progressive approximation quality (MEC/MER)",
            run: filters::fig8,
        },
        Experiment {
            id: "table5",
            description: "hits identified by progressive approximations",
            run: filters::table5,
        },
        Experiment {
            id: "fig9",
            description: "area extension of approximations vs the MBR",
            run: filters::fig9,
        },
        Experiment {
            id: "fig10",
            description: "approximation as key vs in addition to the MBR (I/O)",
            run: storage::fig10,
        },
        Experiment {
            id: "fig11",
            description: "loss/gain/total page accesses with 5-C + MER",
            run: storage::fig11,
        },
        Experiment {
            id: "fig12",
            description: "identified vs non-identified candidates (BW A)",
            run: filters::fig12,
        },
        Experiment {
            id: "table6",
            description: "operation weights of the cost model",
            run: exactgeo::table6,
        },
        Experiment {
            id: "table7",
            description: "cost of the exact intersection algorithms",
            run: exactgeo::table7,
        },
        Experiment {
            id: "fig16",
            description: "per-pair cost vs edge count (plane sweep vs TR*)",
            run: exactgeo::fig16,
        },
        Experiment {
            id: "fig17",
            description: "TR*-tree operation counts for M = 3, 4, 5",
            run: exactgeo::fig17,
        },
        Experiment {
            id: "fig18",
            description: "total join cost of versions 1/2/3",
            run: total::fig18,
        },
        Experiment {
            id: "ablation-restrict",
            description: "plane sweep with vs without search-space restriction",
            run: exactgeo::ablation_restrict,
        },
        Experiment {
            id: "ablation-mpretest",
            description: "MBR pretest for point-in-polygon containment",
            run: exactgeo::ablation_mpretest,
        },
        Experiment {
            id: "ablation-order",
            description: "filter ordering: conservative-first vs progressive-first",
            run: total::ablation_order,
        },
        Experiment {
            id: "ablation-joinstrategy",
            description: "tree join vs index nested loop vs nested loops",
            run: total::ablation_joinstrategy,
        },
        Experiment {
            id: "ablation-buffer",
            description: "LRU buffer size sweep for the MBR-join",
            run: total::ablation_buffer,
        },
        Experiment {
            id: "partitioned",
            description: "step-1 backends: R*-tree traversal vs partitioned sweep",
            run: partitioned::partitioned,
        },
        Experiment {
            id: "fused",
            description: "execution engine: serial vs collect-then-chunk vs fused",
            run: fused::fused,
        },
        Experiment {
            id: "raster",
            description: "step-2a raster pre-filter: grid_bits sweep vs raster-off",
            run: raster::raster,
        },
        Experiment {
            id: "serving",
            description: "resident engine vs prepare-per-query (points, windows, joins)",
            run: serving::serving,
        },
        Experiment {
            id: "kernels",
            description: "vectorized hot-path kernels: per-dispatch microbenchmarks",
            run: kernels::kernels,
        },
        Experiment {
            id: "robustness",
            description: "failure story: cancellation latency and fault-hook overhead",
            run: robustness::robustness,
        },
        Experiment {
            id: "serving-load",
            description: "network front: batched throughput, overload shedding, drain",
            run: serving_load::serving_load,
        },
        Experiment {
            id: "cold-start",
            description: "persistent store: segment load vs Step-0 rebuild",
            run: cold_start::cold_start,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique() {
        let reg = registry();
        let mut ids: Vec<&str> = reg.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(before, ids.len());
        assert!(before >= 20);
    }

    #[test]
    fn quick_scale_shrinks_datasets() {
        let quick = ExpConfig {
            seed: 1,
            scale: Scale::Quick,
        };
        assert!(quick.europe().len() < 400);
        assert!(quick.large_count() < 5_000);
        let default = ExpConfig::default();
        assert_eq!(default.europe().len(), 810);
    }

    #[test]
    fn series_lookup() {
        let quick = ExpConfig {
            seed: 1,
            scale: Scale::Quick,
        };
        let s = quick.series("BW A");
        assert_eq!(s.name, "BW A");
        assert_eq!(s.a.len(), s.b.len());
    }
}

//! Geometric-filter reproductions: Table 2, Figure 4, Table 3, Figure 5,
//! Table 4, Figure 8, Table 5, Figure 9, Figure 12.

use super::ExpConfig;
use crate::data::SeriesData;
use crate::report::{f, pct, section, Table};
use msj_approx::{
    mbr_based_false_area, progressive_quality, Conservative, ConservativeKind, ConservativeStore,
    Progressive, ProgressiveKind, ProgressiveStore,
};
use msj_geom::Relation;

/// The conservative kinds in the column order of Table 3.
const TABLE3_KINDS: [ConservativeKind; 6] = [
    ConservativeKind::Mbc,
    ConservativeKind::Mbe,
    ConservativeKind::Rmbr,
    ConservativeKind::FourCorner,
    ConservativeKind::FiveCorner,
    ConservativeKind::ConvexHull,
];

/// Fraction of the true false hits identified by disjoint conservative
/// approximations of `kind`.
fn false_hit_identification(data: &SeriesData, kind: ConservativeKind) -> f64 {
    let store_a = ConservativeStore::build(kind, &data.series.a);
    let store_b = ConservativeStore::build(kind, &data.series.b);
    let mut false_hits = 0u64;
    let mut identified = 0u64;
    for (a, b, hit) in data.iter() {
        if hit {
            continue;
        }
        false_hits += 1;
        if !store_a.view(a).intersects(&store_b.view(b)) {
            identified += 1;
        }
    }
    if false_hits == 0 {
        0.0
    } else {
        identified as f64 / false_hits as f64
    }
}

/// Fraction of the true hits identified by the false-area test with
/// conservative approximations of `kind`.
fn hit_identification_false_area(data: &SeriesData, kind: ConservativeKind) -> f64 {
    let store_a = ConservativeStore::build(kind, &data.series.a);
    let store_b = ConservativeStore::build(kind, &data.series.b);
    let mut hits = 0u64;
    let mut identified = 0u64;
    for (a, b, hit) in data.iter() {
        if !hit {
            continue;
        }
        hits += 1;
        if store_a.false_area_test_with(a, &store_b, b) {
            identified += 1;
        }
    }
    if hits == 0 {
        0.0
    } else {
        identified as f64 / hits as f64
    }
}

/// Fraction of the true hits identified by intersecting progressive
/// approximations of `kind`.
fn hit_identification_progressive(data: &SeriesData, kind: ProgressiveKind) -> f64 {
    let store_a = ProgressiveStore::build(kind, &data.series.a);
    let store_b = ProgressiveStore::build(kind, &data.series.b);
    let mut hits = 0u64;
    let mut identified = 0u64;
    for (a, b, hit) in data.iter() {
        if !hit {
            continue;
        }
        hits += 1;
        if store_a.get(a).intersects(&store_b.get(b)) {
            identified += 1;
        }
    }
    if hits == 0 {
        0.0
    } else {
        identified as f64 / hits as f64
    }
}

/// Average MBR-based false area of `kind` over a relation (Figure 4's
/// y-axis).
fn avg_mbr_based_false_area(rel: &Relation, kind: ConservativeKind) -> f64 {
    let sum: f64 = rel
        .iter()
        .map(|o| mbr_based_false_area(o, &Conservative::compute(kind, o)))
        .sum();
    sum / rel.len() as f64
}

/// Table 2: the four test series with candidate / hit / false-hit counts.
pub fn table2(cfg: &ExpConfig) -> String {
    let mut out = section(
        "table2",
        "test series for approximation joins (paper Table 2)",
    );
    let paper = [
        ("Europe A", 1858u64, 1273u64, 585u64),
        ("Europe B", 4816, 3203, 1613),
        ("BW A", 2253, 1504, 749),
        ("BW B", 2562, 1684, 878),
    ];
    let mut t = Table::new([
        "series",
        "#inters. MBRs",
        "#hits",
        "#false hits",
        "false-hit share",
        "paper (MBRs/hits/false)",
    ]);
    for series in cfg.all_series() {
        let name = series.name.clone();
        let data = SeriesData::build(series);
        let p = paper.iter().find(|(n, _, _, _)| *n == name);
        t.row([
            name,
            data.num_candidates().to_string(),
            data.num_hits().to_string(),
            data.num_false_hits().to_string(),
            pct(data.num_false_hits() as f64 / data.num_candidates().max(1) as f64),
            p.map_or(String::from("-"), |(_, m, h, fh)| format!("{m}/{h}/{fh}")),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\npaper: about one third of the MBR-join pairs are false hits.\n");
    out
}

/// Figure 4: MBR-based false area normalized to the object area.
pub fn fig4(cfg: &ExpConfig) -> String {
    let mut out = section(
        "fig4",
        "MBR-based false area per approximation (paper Figure 4)",
    );
    let europe = cfg.europe();
    let bw = cfg.bw();
    // Paper bar heights (read from Figure 4, approximate).
    let paper = [
        (ConservativeKind::ConvexHull, 0.05, 0.04),
        (ConservativeKind::FiveCorner, 0.12, 0.10),
        (ConservativeKind::FourCorner, 0.25, 0.22),
        (ConservativeKind::Rmbr, 0.55, 0.60),
        (ConservativeKind::Mbe, 0.60, 0.65),
        (ConservativeKind::Mbc, 1.05, 1.20),
        (ConservativeKind::Mbr, 0.91, 1.02),
    ];
    let mut t = Table::new([
        "approximation",
        "Europe",
        "BW",
        "paper Europe (approx.)",
        "paper BW (approx.)",
    ]);
    for (kind, pe, pb) in paper {
        t.row([
            kind.name().to_string(),
            f(avg_mbr_based_false_area(&europe, kind), 3),
            f(avg_mbr_based_false_area(&bw, kind), 3),
            f(pe, 2),
            f(pb, 2),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nexpected ordering (paper): CH < 5-C < 4-C < RMBR ≈ MBE < MBC ≈ MBR,\n\
         i.e. more parameters → better accuracy.\n",
    );
    out
}

/// Table 3: percentage of identified false hits per conservative
/// approximation.
pub fn table3(cfg: &ExpConfig) -> String {
    let mut out = section(
        "table3",
        "false hits identified by approximations (paper Table 3)",
    );
    let paper: &[(&str, [f64; 6])] = &[
        ("Europe A", [17.9, 42.1, 35.7, 50.9, 66.3, 80.7]),
        ("Europe B", [19.2, 44.0, 45.2, 58.6, 69.1, 82.8]),
        ("BW A", [17.6, 43.7, 45.3, 59.1, 70.2, 82.1]),
        ("BW B", [16.2, 44.1, 37.2, 52.4, 64.7, 79.7]),
    ];
    let mut t = Table::new(["series", "MBC", "MBE", "RMBR", "4-C", "5-C", "CH"]);
    for series in cfg.all_series() {
        let name = series.name.clone();
        let data = SeriesData::build(series);
        let cells: Vec<String> = TABLE3_KINDS
            .iter()
            .map(|&k| pct(false_hit_identification(&data, k)))
            .collect();
        t.row(std::iter::once(name.clone()).chain(cells));
        if let Some((_, p)) = paper.iter().find(|(n, _)| *n == name) {
            t.row(
                std::iter::once(format!("  paper {name}"))
                    .chain(p.iter().map(|v| format!("{v:.1}%"))),
            );
        }
    }
    out.push_str(&t.render());
    out
}

/// Figure 5: identified-false-hit percentage against the MBR-based false
/// area (Europe B).
pub fn fig5(cfg: &ExpConfig) -> String {
    let mut out = section(
        "fig5",
        "false area vs identified false hits, Europe B (paper Figure 5)",
    );
    let data = SeriesData::build(cfg.series("Europe B"));
    let rel = &data.series.a;
    let mut t = Table::new([
        "approximation",
        "MBR-based false area",
        "identified false hits",
    ]);
    // The MBR identifies nothing beyond itself; the exact object would
    // identify 100 % at false area 0 — both anchors of the figure.
    t.row([
        "MBR".to_string(),
        f(avg_mbr_based_false_area(rel, ConservativeKind::Mbr), 3),
        pct(0.0),
    ]);
    for kind in TABLE3_KINDS {
        t.row([
            kind.name().to_string(),
            f(avg_mbr_based_false_area(rel, kind), 3),
            pct(false_hit_identification(&data, kind)),
        ]);
    }
    t.row(["object".to_string(), f(0.0, 3), pct(1.0)]);
    out.push_str(&t.render());
    out.push_str(
        "\npaper: near-linear dependency for MBR/MBC/RMBR/4-C; 5-C, MBE and CH\n\
         deviate upward (adaptability matters, not only false area).\n",
    );
    out
}

/// Table 4: percentage of hits identified by the false-area test.
pub fn table4(cfg: &ExpConfig) -> String {
    let mut out = section(
        "table4",
        "hits identified by the false-area test (paper Table 4)",
    );
    let kinds = [
        ConservativeKind::Mbr,
        ConservativeKind::Rmbr,
        ConservativeKind::FourCorner,
        ConservativeKind::FiveCorner,
        ConservativeKind::ConvexHull,
    ];
    let paper: &[(&str, [f64; 5])] = &[
        ("Europe A", [0.1, 0.4, 3.8, 8.1, 12.5]),
        ("Europe B", [0.1, 0.3, 1.9, 5.2, 8.8]),
        ("BW A", [0.0, 0.9, 2.6, 6.0, 10.3]),
        ("BW B", [0.0, 0.3, 1.7, 5.3, 8.8]),
    ];
    let mut t = Table::new(["series", "MBR", "RMBR", "4-C", "5-C", "CH"]);
    for series in cfg.all_series() {
        let name = series.name.clone();
        let data = SeriesData::build(series);
        let cells: Vec<String> = kinds
            .iter()
            .map(|&k| pct(hit_identification_false_area(&data, k)))
            .collect();
        t.row(std::iter::once(name.clone()).chain(cells));
        if let Some((_, p)) = paper.iter().find(|(n, _)| *n == name) {
            t.row(
                std::iter::once(format!("  paper {name}"))
                    .chain(p.iter().map(|v| format!("{v:.1}%"))),
            );
        }
    }
    out.push_str(&t.render());
    out
}

/// Figure 8: approximation quality of the progressive approximations.
pub fn fig8(cfg: &ExpConfig) -> String {
    let mut out = section("fig8", "progressive approximation quality (paper Figure 8)");
    let mut t = Table::new(["relation", "MEC", "MER", "paper MEC", "paper MER"]);
    for (name, rel, p_mec, p_mer) in [
        ("Europe", cfg.europe(), 0.42, 0.43),
        ("BW", cfg.bw(), 0.42, 0.45),
    ] {
        let (mut mec_sum, mut mer_sum) = (0.0, 0.0);
        for o in rel.iter() {
            mec_sum += progressive_quality(o, &Progressive::compute(ProgressiveKind::Mec, o));
            mer_sum += progressive_quality(o, &Progressive::compute(ProgressiveKind::Mer, o));
        }
        let n = rel.len() as f64;
        t.row([
            name.to_string(),
            f(mec_sum / n, 2),
            f(mer_sum / n, 2),
            f(p_mec, 2),
            f(p_mer, 2),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Table 5: percentage of hits identified by MEC / MER.
pub fn table5(cfg: &ExpConfig) -> String {
    let mut out = section(
        "table5",
        "hits identified by progressive approximations (paper Table 5)",
    );
    let paper: &[(&str, f64, f64)] = &[
        ("Europe A", 31.4, 36.2),
        ("Europe B", 31.8, 35.3),
        ("BW A", 31.6, 34.3),
        ("BW B", 32.6, 33.6),
    ];
    let mut t = Table::new(["series", "MEC", "MER", "paper MEC", "paper MER"]);
    for series in cfg.all_series() {
        let name = series.name.clone();
        let data = SeriesData::build(series);
        let mec = hit_identification_progressive(&data, ProgressiveKind::Mec);
        let mer = hit_identification_progressive(&data, ProgressiveKind::Mer);
        let p = paper.iter().find(|(n, _, _)| *n == name);
        t.row([
            name,
            pct(mec),
            pct(mer),
            p.map_or("-".into(), |(_, v, _)| format!("{v:.1}%")),
            p.map_or("-".into(), |(_, _, v)| format!("{v:.1}%")),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\npaper: ≈ 32% of hits via MEC, ≈ 35% via MER — MER slightly better.\n");
    out
}

/// Figure 9 (§3.4 text): area extension of approximations versus the MBR.
pub fn fig9(cfg: &ExpConfig) -> String {
    let mut out = section("fig9", "area extension vs MBR (paper §3.4)");
    let kinds = [
        (ConservativeKind::FiveCorner, 0.21),
        (ConservativeKind::FourCorner, 0.44),
        (ConservativeKind::Rmbr, 0.51),
        (ConservativeKind::Mbe, 0.22),
    ];
    let europe = cfg.europe();
    let bw = cfg.bw();
    let mut t = Table::new(["approximation", "measured overhead", "paper overhead"]);
    for (kind, paper) in kinds {
        let mut sum = 0.0;
        let mut n = 0.0;
        for rel in [&europe, &bw] {
            for o in rel.iter() {
                sum += msj_approx::area_extension_overhead(o, &Conservative::compute(kind, o));
                n += 1.0;
            }
        }
        t.row([
            kind.name().to_string(),
            pct(sum / n),
            format!("{:.0}%", 100.0 * paper),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nthe overhead is the extra page-region area an R*-tree pays when the\n\
         approximation replaces the MBR as the key (approach 1 of §3.4).\n",
    );
    out
}

/// Figure 12: the split of BW A candidates into identified hits (MER),
/// identified false hits (5-C), and the unidentified remainder.
pub fn fig12(cfg: &ExpConfig) -> String {
    let mut out = section(
        "fig12",
        "identified and non-identified candidates, BW A (paper Figure 12)",
    );
    let data = SeriesData::build(cfg.series("BW A"));
    let cons_a = ConservativeStore::build(ConservativeKind::FiveCorner, &data.series.a);
    let cons_b = ConservativeStore::build(ConservativeKind::FiveCorner, &data.series.b);
    let prog_a = ProgressiveStore::build(ProgressiveKind::Mer, &data.series.a);
    let prog_b = ProgressiveStore::build(ProgressiveKind::Mer, &data.series.b);

    let mut id_false = 0u64;
    let mut id_hit = 0u64;
    let mut un_false = 0u64;
    let mut un_hit = 0u64;
    for (a, b, hit) in data.iter() {
        if !cons_a.view(a).intersects(&cons_b.view(b)) {
            id_false += 1;
        } else if prog_a.get(a).intersects(&prog_b.get(b)) {
            id_hit += 1;
        } else if hit {
            un_hit += 1;
        } else {
            un_false += 1;
        }
    }
    let total = data.num_candidates() as f64;
    let mut t = Table::new(["class", "count", "share", "paper share"]);
    t.row([
        "identified false hits (5-C)".into(),
        id_false.to_string(),
        pct(id_false as f64 / total),
        "23%".to_string(),
    ]);
    t.row([
        "identified hits (MER)".into(),
        id_hit.to_string(),
        pct(id_hit as f64 / total),
        "23%".to_string(),
    ]);
    t.row([
        "non-identified false hits".into(),
        un_false.to_string(),
        pct(un_false as f64 / total),
        "10%".to_string(),
    ]);
    t.row([
        "non-identified hits".into(),
        un_hit.to_string(),
        pct(un_hit as f64 / total),
        "44%".to_string(),
    ]);
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nidentified total: {} (paper: 46%)\n",
        pct((id_false + id_hit) as f64 / total)
    ));
    out
}

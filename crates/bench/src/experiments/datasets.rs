//! Dataset-level reproductions: Figure 2, Table 1, Figure 3.

use super::ExpConfig;
use crate::report::{f, section, Table};
use msj_approx::{Conservative, ConservativeKind, Progressive, ProgressiveKind};
use msj_datagen::mbr_false_area_stats;

/// Figure 2: the analysed spatial relations (#objects, m∅, mmin, mmax).
pub fn fig2(cfg: &ExpConfig) -> String {
    let mut out = section("fig2", "dataset characteristics (paper Figure 2)");
    let mut t = Table::new(["relation", "#objects", "m∅", "mmin", "mmax", "paper"]);
    for (name, rel, paper) in [
        ("Europe", cfg.europe(), "810 objects, m∅ 84 (4..869)"),
        ("BW", cfg.bw(), "374 objects, m∅ 527 (6..2087)"),
    ] {
        let (mean, min, max) = rel.vertex_stats();
        t.row([
            name.to_string(),
            rel.len().to_string(),
            f(mean, 1),
            min.to_string(),
            max.to_string(),
            paper.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Table 1: normalized false area of the MBR (∅ / min / max).
pub fn table1(cfg: &ExpConfig) -> String {
    let mut out = section("table1", "MBR normalized false area (paper Table 1)");
    let mut t = Table::new([
        "relation",
        "∅",
        "min",
        "max",
        "paper ∅",
        "paper min",
        "paper max",
    ]);
    for (name, rel, p_mean, p_min, p_max) in [
        ("Europe", cfg.europe(), 0.91, 0.25, 20.13),
        ("BW", cfg.bw(), 1.02, 0.38, 3.48),
    ] {
        let s = mbr_false_area_stats(&rel);
        t.row([
            name.to_string(),
            f(s.mean, 2),
            f(s.min, 2),
            f(s.max, 2),
            f(p_mean, 2),
            f(p_min, 2),
            f(p_max, 2),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nNote: synthetic blobs track the paper's mean; the paper's max of 20.13\n\
         comes from one extreme coastline object the generator does not emulate.\n",
    );
    out
}

/// Figure 3: the approximations of a single object — parameter counts and
/// area ratios (the figure itself is a drawing; its quantitative content
/// is the parameter count annotation).
pub fn fig3(cfg: &ExpConfig) -> String {
    let europe = cfg.europe();
    // Pick the most complex object as the showcase (the paper uses Great
    // Britain, its most complex polygon).
    let obj = europe
        .iter()
        .max_by_key(|o| o.num_vertices())
        .expect("non-empty relation")
        .clone();
    let mut out = section("fig3", "approximations of one object (paper Figure 3)");
    out.push_str(&format!(
        "showcase object: id {}, {} vertices, area {:.1}\n\n",
        obj.id,
        obj.num_vertices(),
        obj.area()
    ));
    let mut t = Table::new(["approximation", "parameters", "paper", "area / object area"]);
    let paper_params = [
        (ConservativeKind::Mbr, "4"),
        (ConservativeKind::Rmbr, "5"),
        (ConservativeKind::ConvexHull, "var."),
        (ConservativeKind::FourCorner, "8"),
        (ConservativeKind::FiveCorner, "10"),
        (ConservativeKind::Mbc, "3"),
        (ConservativeKind::Mbe, "5"),
    ];
    for (kind, paper) in paper_params {
        let a = Conservative::compute(kind, &obj);
        t.row([
            kind.name().to_string(),
            a.param_count().to_string(),
            paper.to_string(),
            f(a.area() / obj.area(), 3),
        ]);
    }
    for kind in ProgressiveKind::ALL {
        let p = Progressive::compute(kind, &obj);
        t.row([
            kind.name().to_string(),
            p.param_count().to_string(),
            if kind == ProgressiveKind::Mec {
                "3"
            } else {
                "4"
            }
            .to_string(),
            f(p.area() / obj.area(), 3),
        ]);
    }
    out.push_str(&t.render());
    out
}

//! The `fused` experiment: Steps 1–3 wall-clock comparison of the fused
//! execution engine against the PR-1 collect-then-chunk executor
//! ([`crate::baseline`]) and the serial pipeline, on an even
//! cartographic workload and a deliberately skewed one, across both
//! Step-1 backends.
//!
//! Step 0 (preprocessing, the paper's "insertion time") is paid once per
//! backend via [`msj_core::MultiStepJoin::prepare`] and reported
//! separately — the executors differ only in how they schedule Steps
//! 1–3, so that is what the table times.
//!
//! Beyond wall-clock, the experiment *verifies the engine's contract* on
//! every measured cell: identical canonically-sorted response sets,
//! exactly-merged operation counts, and a bounded candidate buffer (the
//! baseline materializes the entire candidate set; the fused engine
//! never does).

use super::ExpConfig;
use crate::baseline::PreparedBaseline;
use crate::report::{f, section, Table};
use crate::timing::timed;
use msj_core::{Backend, Execution, JoinConfig, JoinResult, MultiStepJoin};
use msj_geom::Relation;
use std::time::Instant;

/// Thread counts swept for the parallel executors.
const THREADS: [usize; 4] = [1, 2, 4, 8];

struct Workload {
    name: String,
    a: Relation,
    b: Relation,
}

fn workloads(cfg: &ExpConfig) -> Vec<Workload> {
    let n = cfg.large_count() / 2;
    vec![
        Workload {
            name: "carto".into(),
            a: msj_datagen::small_carto(n, 24.0, cfg.seed),
            b: msj_datagen::small_carto(n, 24.0, cfg.seed + 1),
        },
        Workload {
            name: "skewed".into(),
            a: msj_datagen::skewed_carto(n, 24.0, cfg.seed),
            b: msj_datagen::skewed_carto(n, 24.0, cfg.seed + 1),
        },
    ]
}

fn backends() -> [(&'static str, Backend); 2] {
    let tiles = match Backend::partitioned_auto() {
        Backend::PartitionedSweep { tiles_per_axis, .. } => tiles_per_axis,
        Backend::RStarTraversal => unreachable!("partitioned_auto is partitioned"),
    };
    [
        ("rstar", Backend::RStarTraversal),
        (
            "grid",
            Backend::PartitionedSweep {
                tiles_per_axis: tiles,
                threads: 1,
            },
        ),
    ]
}

/// Asserts the agreement contract between one measured result and the
/// serial reference; `buffer_bound` additionally caps the resident
/// candidate count (the fused engine's per-worker guarantee).
fn check_agreement(
    label: &str,
    reference: &JoinResult,
    got: &JoinResult,
    buffer_bound: Option<u64>,
) {
    let mut expect = reference.pairs.clone();
    expect.sort_unstable();
    assert_eq!(got.pairs, expect, "{label}: response set diverged");
    assert_eq!(
        got.stats.exact_ops, reference.stats.exact_ops,
        "{label}: operation counts diverged"
    );
    assert_eq!(
        got.stats.exact_tests, reference.stats.exact_tests,
        "{label}"
    );
    if let Some(bound) = buffer_bound {
        assert!(
            got.stats.peak_buffered_candidates <= bound,
            "{label}: peak buffer {} over the per-worker bound {bound}",
            got.stats.peak_buffered_candidates,
        );
    }
}

/// The `fused` experiment: Steps 1–3 wall-clock and peak-buffer
/// comparison of serial vs collect-then-chunk vs fused execution.
pub fn fused(cfg: &ExpConfig) -> String {
    let mut out = section(
        "fused",
        "execution engine: serial vs collect-then-chunk vs fused (Steps 1-3)",
    );
    out.push_str(
        "join ms covers Steps 1-3 only (Step-0 preprocessing is paid once per\n\
         backend and shown in the prep column of the serial row); buffered is the\n\
         peak candidate count resident between Step 1 and the filter/exact steps\n\
         (the collect-then-chunk baseline materializes every candidate; the fused\n\
         engine is bounded per worker and streams the partitioned backend outright)\n\n",
    );

    let mut table = Table::new([
        "workload",
        "backend",
        "mode",
        "threads",
        "join ms",
        "vs serial x",
        "vs baseline x",
        "buffered",
    ]);
    let mut fused_vs_baseline_at4 = Vec::new();
    let mut batch_vs_perpair_at4 = Vec::new();
    let mut step_lines = Vec::new();
    for workload in &workloads(cfg) {
        for (backend_name, backend) in backends() {
            let base = JoinConfig::builder().backend(backend).build();
            let join = MultiStepJoin::new(base);
            let prep_start = Instant::now();
            let prepared = join.prepare(&workload.a, &workload.b);
            let prep_secs = prep_start.elapsed().as_secs_f64();
            // The PR-2-shaped protocol: everything identical except the
            // candidate batch size — per-pair delivery and per-pair
            // classification dispatch.
            let per_pair = base.to_builder().batch_pairs(1).build();
            let per_pair_prepared = MultiStepJoin::new(per_pair).prepare(&workload.a, &workload.b);
            // Warm-up run (fills the R*-traversal's simulated LRU
            // buffer) so every timed mode sees the same state.
            let _ = prepared.run_with(Execution::Serial);
            let _ = per_pair_prepared.run_with(Execution::Serial);
            let (serial, serial_secs) = timed(|| prepared.run_with(Execution::Serial));
            step_lines.push(format!(
                "{}/{backend_name} serial steps ms: step0 {:.1} | step1 {:.1} | step2 (filter) {:.1} | step3 (exact) {:.1}",
                workload.name,
                serial.stats.step0_nanos as f64 / 1e6,
                serial.stats.step1_nanos as f64 / 1e6,
                serial.stats.step2_nanos as f64 / 1e6,
                serial.stats.step3_nanos as f64 / 1e6,
            ));
            table.row([
                workload.name.clone(),
                backend_name.into(),
                format!("serial (prep {:.0} ms)", prep_secs * 1e3),
                "1".into(),
                f(serial_secs * 1e3, 2),
                f(1.0, 2),
                "-".into(),
                serial.stats.peak_buffered_candidates.to_string(),
            ]);
            for threads in THREADS {
                let label = format!("{}/{backend_name} x{threads}", workload.name);
                let mut baseline_prepared =
                    PreparedBaseline::new(&workload.a, &workload.b, &base, threads);
                let _ = baseline_prepared.run(); // warm-up, as above
                let (baseline, baseline_secs) = timed(|| baseline_prepared.run());
                // The baseline materializes the entire candidate set.
                assert_eq!(
                    baseline.stats.peak_buffered_candidates, baseline.stats.mbr_join.candidates,
                    "{label}: baseline must materialize"
                );
                let (fused, fused_secs) = timed(|| prepared.run_with(Execution::Fused { threads }));
                let (unbatched, unbatched_secs) =
                    timed(|| per_pair_prepared.run_with(Execution::Fused { threads }));
                check_agreement(
                    &label,
                    &serial,
                    &fused,
                    Some(msj_core::fused_buffer_bound(threads, base.batch_pairs)),
                );
                check_agreement(&label, &serial, &baseline, None);
                check_agreement(
                    &label,
                    &serial,
                    &unbatched,
                    Some(msj_core::fused_buffer_bound(threads, 1)),
                );
                let vs_baseline = baseline_secs / fused_secs.max(1e-12);
                if threads == 4 {
                    fused_vs_baseline_at4
                        .push((format!("{}/{backend_name}", workload.name), vs_baseline));
                    batch_vs_perpair_at4.push((
                        format!("{}/{backend_name}", workload.name),
                        unbatched_secs / fused_secs.max(1e-12),
                    ));
                }
                table.row([
                    workload.name.clone(),
                    backend_name.into(),
                    "collect-chunk".into(),
                    threads.to_string(),
                    f(baseline_secs * 1e3, 2),
                    f(serial_secs / baseline_secs.max(1e-12), 2),
                    f(1.0, 2),
                    baseline.stats.peak_buffered_candidates.to_string(),
                ]);
                table.row([
                    workload.name.clone(),
                    backend_name.into(),
                    "fused (batch=1)".into(),
                    threads.to_string(),
                    f(unbatched_secs * 1e3, 2),
                    f(serial_secs / unbatched_secs.max(1e-12), 2),
                    f(baseline_secs / unbatched_secs.max(1e-12), 2),
                    unbatched.stats.peak_buffered_candidates.to_string(),
                ]);
                table.row([
                    workload.name.clone(),
                    backend_name.into(),
                    "fused".into(),
                    threads.to_string(),
                    f(fused_secs * 1e3, 2),
                    f(serial_secs / fused_secs.max(1e-12), 2),
                    f(vs_baseline, 2),
                    fused.stats.peak_buffered_candidates.to_string(),
                ]);
            }
        }
    }
    out.push_str(&table.render());
    out.push('\n');
    for line in &step_lines {
        out.push_str(line);
        out.push('\n');
    }

    out.push_str(
        "\nagreement: every measured cell produced the identical canonically-sorted\n\
         response set and exactly-merged operation counts as the serial pipeline,\n\
         with the fused candidate buffer under its per-worker bound\n",
    );
    let line = fused_vs_baseline_at4
        .iter()
        .map(|(name, s)| format!("{name} {s:.2}x"))
        .collect::<Vec<_>>()
        .join(", ");
    out.push_str(&format!(
        "fused vs collect-then-chunk at 4 threads: {line}\n"
    ));
    let line = batch_vs_perpair_at4
        .iter()
        .map(|(name, s)| format!("{name} {s:.2}x"))
        .collect::<Vec<_>>()
        .join(", ");
    out.push_str(&format!(
        "batched vs per-pair (batch=1) delivery at 4 threads: {line}\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn fused_report_runs_at_quick_scale() {
        let cfg = ExpConfig {
            seed: 3,
            scale: Scale::Quick,
        };
        let report = fused(&cfg);
        assert!(report.contains("skewed"));
        assert!(report.contains("collect-chunk"));
        assert!(report.contains("fused"));
        assert!(report.contains("fused (batch=1)"));
        assert!(report.contains("step2 (filter)"));
        assert!(report.contains("batched vs per-pair"));
        assert!(report.contains("identical canonically-sorted"));
    }
}

//! Machine-readable benchmark output (`BENCH_pr6.json`).
//!
//! Measures the batched hot path and the resident serving surface on the
//! skewed cartographic workload — the PR-3/PR-4/PR-5 acceptance matrix —
//! and emits one JSON document:
//!
//! * **Step 1** (`"step1"` records): candidates/sec per backend × Step-0
//!   loader (index construction + candidate streaming);
//! * **Steps 1–3** (`"join"` records): pairs/sec and filter throughput
//!   per backend × loader × execution mode on a resident
//!   [`msj_core::SpatialEngine`], including the preserved
//!   collect-then-chunk baseline and the per-pair (`batch=1`) protocol;
//! * **Step 2a** (`"raster"` records): the raster pre-filter swept over
//!   `grid_bits` ∈ {off, auto, 6, 8, 10} — decided fraction, hit/drop/
//!   inconclusive counts, stage time;
//! * **Serving** (`"serving"` records): per-query latency and
//!   queries/sec of point/window/join traffic against the resident
//!   engine versus paying Step-0 preparation per query, with FNV
//!   response digests asserted equal between the two paths — resident
//!   cells additionally report p50/p90/p99 latency from the engine's
//!   own request-latency histograms;
//! * **Observability** (the top-level `"obs"` object): the engine's
//!   schema-versioned metrics snapshot after a fixed request mix, plus
//!   the always-on overhead guard — the same fused join timed with
//!   metrics on vs [`msj_core::ObsConfig::disabled`], asserted < 3%
//!   whenever the baseline is large enough to be signal;
//! * the agreement verdict: every measured cell must produce the
//!   identical canonically sorted response set.
//!
//! Throughput fields are **omitted** when the corresponding stage did
//! not run in a cell (schema `msj-bench-pr10`; earlier schemas emitted a
//! misleading `0`). Since PR 7 the document also carries the `kernels`
//! section: the vectorized hot-path kernels (sweep / MER-accept /
//! raster-decide) measured per dispatch path, scalar vs wide, with
//! cross-path output digests asserted equal. Since PR 8 the top-level
//! `"robustness"` object reports the failure story: the time-to-error of
//! a join issued with a deadline at 50% of its §5 estimate (overshoot
//! bounded by 2× one batch's wall-clock) and the overhead of the
//! fault-injection hooks, upper-bounded by an armed-but-never-firing run
//! against the disabled default and asserted < 1% on the fused ×4 join.
//! Since PR 9 the top-level `"serving_load"` object measures the network
//! front: serial vs 8-connection batched point throughput over a live
//! `msj-serve` socket (the batched speedup asserted > 1), queue-wait and
//! end-to-end percentiles from the serving histograms, and an overload
//! flood past 2× a tiny queue bound where every response is either a
//! byte-identical completed answer or an explicit refusal. Since PR 10
//! the top-level `"cold_start"` object measures the persistent Step-0
//! store: rebuild vs segment-load wall-clock (total and per section),
//! store file sizes, and the asserted digest equality between the
//! rebuilt and the reloaded engine (the ≥ 10× cold-start guard is
//! enforced whenever the rebuild baseline is above the noise floor).
//!
//! No serde in this workspace (offline vendored deps only), so the JSON
//! is emitted by hand — flat records, numbers and strings only.

use crate::baseline::PreparedBaseline;
use crate::experiments::kernels::{measure_kernels, KernelCell};
use crate::experiments::raster::{resolved_grid_bits, response_digest, SWEEP};
use crate::experiments::robustness::measure_robustness;
use crate::experiments::serving::{serving_queries, SERVING_JOIN_RUNS, SERVING_PREPARE_QUERIES};
use crate::experiments::serving_load::{measure_serving_load, LOAD_CLIENTS, OVERLOAD_QUEUE_BOUND};
use crate::experiments::ExpConfig;
use crate::timing::timed;
use msj_core::{
    join_source, Backend, Execution, JoinConfig, JoinResult, ObsConfig, SpatialEngine, TreeLoader,
};
use msj_geom::{ObjectId, Relation};
use std::sync::Arc;
use std::time::Instant;

/// Step-2a cell payload of a `"raster"` record.
struct RasterCell {
    grid_bits: u32,
    hits: u64,
    drops: u64,
    inconclusive: u64,
    decided_fraction: f64,
    step2a_millis: f64,
}

/// Serving-cell payload of a `"serving"` record.
struct ServingCell {
    /// Queries measured for the latency/throughput figures.
    queries: u64,
    queries_per_sec: f64,
    per_query_micros: f64,
    /// FNV digest over the canonical comparison subset of queries —
    /// equal between the resident and prepare-per-query modes of the
    /// same kind by assertion.
    digest: u64,
    /// Resident records only: per-query latency advantage over the
    /// prepare-per-query mode of the same kind.
    speedup_vs_prepare: Option<f64>,
    /// Resident records only: (p50, p90, p99) per-query latency in
    /// microseconds, read from the serving engine's own
    /// `msj_request_latency_nanos{kind}` histogram.
    latency_percentiles_micros: Option<(f64, f64, f64)>,
}

/// One flat measurement record. Optional fields are omitted from the
/// JSON when their stage did not run.
struct Record {
    experiment: &'static str,
    backend: &'static str,
    loader: &'static str,
    mode: String,
    threads: usize,
    millis: f64,
    candidates: u64,
    candidates_per_sec: f64,
    /// `None` for step-1-only cells (no join ran).
    pairs_per_sec: Option<f64>,
    /// `None` when the executor did not time its filter step (the
    /// collect-then-chunk baseline predates the per-step counters) or no
    /// filter ran.
    filter_candidates_per_sec: Option<f64>,
    peak_buffered: u64,
    /// Present on `"raster"` records with the stage enabled.
    raster: Option<RasterCell>,
    /// Present on `"serving"` records.
    serving: Option<ServingCell>,
    /// Present on `"kernels"` records (one per kernel × dispatch path).
    kernel: Option<KernelCell>,
}

impl Record {
    fn to_json(&self) -> String {
        let mut s = format!(
            concat!(
                "{{\"experiment\":\"{}\",\"backend\":\"{}\",\"loader\":\"{}\",",
                "\"mode\":\"{}\",\"threads\":{},\"millis\":{:.3},",
                "\"candidates\":{},\"candidates_per_sec\":{:.0}"
            ),
            self.experiment,
            self.backend,
            self.loader,
            self.mode,
            self.threads,
            self.millis,
            self.candidates,
            self.candidates_per_sec,
        );
        if let Some(v) = self.pairs_per_sec {
            s.push_str(&format!(",\"pairs_per_sec\":{v:.0}"));
        }
        if let Some(v) = self.filter_candidates_per_sec {
            s.push_str(&format!(",\"filter_candidates_per_sec\":{v:.0}"));
        }
        s.push_str(&format!(",\"peak_buffered\":{}", self.peak_buffered));
        if let Some(r) = &self.raster {
            s.push_str(&format!(
                concat!(
                    ",\"raster_grid_bits\":{},\"raster_hits\":{},",
                    "\"raster_drops\":{},\"raster_inconclusive\":{},",
                    "\"raster_decided_fraction\":{:.4},\"step2a_millis\":{:.3}"
                ),
                r.grid_bits, r.hits, r.drops, r.inconclusive, r.decided_fraction, r.step2a_millis,
            ));
        }
        if let Some(q) = &self.serving {
            s.push_str(&format!(
                concat!(
                    ",\"queries\":{},\"queries_per_sec\":{:.1},",
                    "\"per_query_micros\":{:.2},\"digest\":\"{:#018x}\""
                ),
                q.queries, q.queries_per_sec, q.per_query_micros, q.digest,
            ));
            if let Some(v) = q.speedup_vs_prepare {
                s.push_str(&format!(",\"speedup_vs_prepare\":{v:.1}"));
            }
            if let Some((p50, p90, p99)) = q.latency_percentiles_micros {
                s.push_str(&format!(
                    concat!(
                        ",\"latency_p50_micros\":{:.2},",
                        "\"latency_p90_micros\":{:.2},\"latency_p99_micros\":{:.2}"
                    ),
                    p50, p90, p99,
                ));
            }
        }
        if let Some(k) = &self.kernel {
            s.push_str(&format!(
                concat!(
                    ",\"kernel\":\"{}\",\"dispatch\":\"{}\",\"items\":{},",
                    "\"ns_per_item\":{:.3},\"items_per_sec\":{:.0},",
                    "\"speedup_vs_scalar\":{:.3},\"digest\":\"{:#018x}\""
                ),
                k.kernel,
                k.path,
                k.items,
                k.ns_per_item,
                k.items_per_sec,
                k.speedup_vs_scalar,
                k.digest,
            ));
        }
        s.push('}');
        s
    }
}

/// Repetitions per cold (untimed-helper) measurement, matching
/// [`crate::timing::REPS`].
const REPS: usize = crate::timing::REPS;

fn loader_name(loader: TreeLoader) -> &'static str {
    match loader {
        TreeLoader::Str => "str",
        TreeLoader::Incremental => "incremental",
    }
}

fn join_record(
    backend: &'static str,
    loader: TreeLoader,
    mode: String,
    threads: usize,
    result: &JoinResult,
    secs: f64,
) -> Record {
    let s = &result.stats;
    Record {
        experiment: "join",
        backend,
        loader: loader_name(loader),
        mode,
        threads,
        millis: secs * 1e3,
        candidates: s.mbr_join.candidates,
        candidates_per_sec: s.mbr_join.candidates as f64 / secs.max(1e-12),
        pairs_per_sec: Some(s.result_pairs as f64 / secs.max(1e-12)),
        filter_candidates_per_sec: (s.step2_nanos > 0)
            .then(|| s.mbr_join.candidates as f64 / (s.step2_nanos as f64 / 1e9)),
        peak_buffered: s.peak_buffered_candidates,
        raster: None,
        serving: None,
        kernel: None,
    }
}

/// The sections a [`bench_json_only`] filter can select.
pub const SECTIONS: [&str; 9] = [
    "step1",
    "join",
    "raster",
    "serving",
    "kernels",
    "obs",
    "robustness",
    "serving_load",
    "cold_start",
];

/// Runs the full measurement matrix and renders the JSON document.
pub fn bench_json(cfg: &ExpConfig) -> String {
    bench_json_only(cfg, None)
}

/// Like [`bench_json`], restricted to one section (`"step1"`, `"join"`,
/// `"raster"`, `"serving"`, `"kernels"` or `"obs"`) when `only` is set —
/// the `repro --only` fast path.
pub fn bench_json_only(cfg: &ExpConfig, only: Option<&str>) -> String {
    let n = cfg.large_count() / 2;
    let a = Arc::new(msj_datagen::skewed_carto(n, 24.0, cfg.seed));
    let b = Arc::new(msj_datagen::skewed_carto(n, 24.0, cfg.seed + 1));
    let want = |section: &str| only.is_none_or(|o| o == section);

    let grid_tiles = match Backend::partitioned_auto() {
        Backend::PartitionedSweep { tiles_per_axis, .. } => tiles_per_axis,
        Backend::RStarTraversal => unreachable!("partitioned_auto is partitioned"),
    };
    let backends: [(&'static str, Backend); 2] = [
        ("rstar", Backend::RStarTraversal),
        (
            "grid",
            Backend::PartitionedSweep {
                tiles_per_axis: grid_tiles,
                threads: 1,
            },
        ),
    ];
    let loaders = [TreeLoader::Str, TreeLoader::Incremental];

    let mut records: Vec<Record> = Vec::new();
    let mut reference: Option<Vec<(u32, u32)>> = None;
    let mut check = |result: &JoinResult, label: &str| {
        let mut got = result.pairs.clone();
        got.sort_unstable();
        match &reference {
            None => reference = Some(got),
            Some(expect) => assert_eq!(&got, expect, "{label}: response set diverged"),
        }
    };

    // Step-1 throughput: backend × loader, construction + streaming.
    // The loader only affects the R*-tree backend (the grid builds no
    // trees), so grid cells are measured once.
    if want("step1") {
        for (backend_name, backend) in backends {
            for loader in loaders {
                if backend_name != "rstar" && loader != TreeLoader::Str {
                    continue;
                }
                let config = JoinConfig::builder()
                    .backend(backend)
                    .loader(loader)
                    .build();
                // Minimum over REPS cold construct+stream runs, like the
                // join cells (the runs are deterministic).
                let mut secs = f64::INFINITY;
                let mut stats = msj_core::Step1Stats::default();
                for _ in 0..REPS {
                    let start = Instant::now();
                    let source = join_source(&config, &a, &b);
                    stats = source.stream_candidates(&mut |_, _| {});
                    secs = secs.min(start.elapsed().as_secs_f64().max(1e-12));
                }
                records.push(Record {
                    experiment: "step1",
                    backend: backend_name,
                    loader: loader_name(loader),
                    mode: "construct+stream".into(),
                    threads: 1,
                    millis: secs * 1e3,
                    candidates: stats.join.candidates,
                    candidates_per_sec: stats.join.candidates as f64 / secs,
                    pairs_per_sec: None,
                    filter_candidates_per_sec: None,
                    peak_buffered: stats.peak_buffered,
                    raster: None,
                    serving: None,
                    kernel: None,
                });
            }
        }
    }

    // Steps 1–3 on a resident engine: backend × loader × execution mode
    // (grid cells once, as above). The engine owns Step 0; every timed
    // run is Steps 1–3 against the shared prepared join.
    if want("join") {
        for (backend_name, backend) in backends {
            for loader in loaders {
                if backend_name != "rstar" && loader != TreeLoader::Str {
                    continue;
                }
                let base = JoinConfig::builder()
                    .backend(backend)
                    .loader(loader)
                    .build();
                let engine = SpatialEngine::new(base);
                let (ha, hb) = (engine.register(a.clone()), engine.register(b.clone()));
                let prepared = engine.prepare_join(&ha, &hb);
                let _ = prepared.run_with(Execution::Serial); // warm-up
                let (serial, serial_secs) = timed(|| prepared.run_with(Execution::Serial));
                check(
                    &serial,
                    &format!("{backend_name}/{}/serial", loader_name(loader)),
                );
                records.push(join_record(
                    backend_name,
                    loader,
                    "serial".into(),
                    1,
                    &serial,
                    serial_secs,
                ));
                for threads in [1usize, 4] {
                    let (fused, fused_secs) =
                        timed(|| prepared.run_with(Execution::Fused { threads }));
                    check(
                        &fused,
                        &format!("{backend_name}/{}/fused x{threads}", loader_name(loader)),
                    );
                    records.push(join_record(
                        backend_name,
                        loader,
                        "fused".into(),
                        threads,
                        &fused,
                        fused_secs,
                    ));
                }
                // The per-pair protocol (batch=1) and the collect-then-chunk
                // baseline, measured for the default loader only — they vary
                // the execution, not Step 0.
                if loader == TreeLoader::Str {
                    let per_pair_engine =
                        SpatialEngine::new(base.to_builder().batch_pairs(1).build());
                    let (pa, pb) = (
                        per_pair_engine.register(a.clone()),
                        per_pair_engine.register(b.clone()),
                    );
                    let per_pair_prepared = per_pair_engine.prepare_join(&pa, &pb);
                    let _ = per_pair_prepared.run_with(Execution::Serial);
                    let (unbatched, unbatched_secs) =
                        timed(|| per_pair_prepared.run_with(Execution::Fused { threads: 4 }));
                    check(&unbatched, &format!("{backend_name}/str/batch1"));
                    records.push(join_record(
                        backend_name,
                        loader,
                        "fused-batch1".into(),
                        4,
                        &unbatched,
                        unbatched_secs,
                    ));
                    let mut baseline = PreparedBaseline::new(&a, &b, &base, 4);
                    let _ = baseline.run();
                    let (baseline_result, baseline_secs) = timed(|| baseline.run());
                    check(&baseline_result, &format!("{backend_name}/str/baseline"));
                    records.push(join_record(
                        backend_name,
                        loader,
                        "collect-chunk".into(),
                        4,
                        &baseline_result,
                        baseline_secs,
                    ));
                }
            }
        }
    }

    // Step 2a: the raster pre-filter sweep (the same cells as the
    // `raster` experiment), fused ×4 on the default backend. Every cell
    // must reproduce the same response set (the PR-4 acceptance
    // criterion).
    if want("raster") {
        for (label, raster) in SWEEP {
            let config = JoinConfig::builder().raster(raster).build();
            let engine = SpatialEngine::new(config);
            let (ha, hb) = (engine.register(a.clone()), engine.register(b.clone()));
            let prepared = engine.prepare_join(&ha, &hb);
            let _ = prepared.run_with(Execution::Fused { threads: 4 });
            let (result, secs) = timed(|| prepared.run_with(Execution::Fused { threads: 4 }));
            let mode = format!("raster-{label}");
            check(&result, &format!("raster/{mode}"));
            let s = &result.stats;
            let mut rec = join_record("rstar", TreeLoader::Str, mode, 4, &result, secs);
            rec.experiment = "raster";
            rec.raster = raster.enabled.then(|| RasterCell {
                // Report the *resolved* resolution for auto-sized cells.
                grid_bits: resolved_grid_bits(raster, &a, &b),
                hits: s.raster_hits,
                drops: s.raster_drops,
                inconclusive: s.raster_inconclusive,
                decided_fraction: s.raster_decided_fraction(),
                step2a_millis: s.step2a_nanos as f64 / 1e6,
            });
            records.push(rec);
        }
    }

    // Serving: per-query latency of point/window/join traffic on the
    // resident engine vs paying Step-0 preparation per query (the PR-5
    // acceptance matrix).
    if want("serving") {
        records.extend(serving_records(cfg, &a, &b));
    }

    // Vectorized kernels: scalar vs wide microbenches per dispatch path
    // (cross-path output digests asserted equal inside the measurement).
    if want("kernels") {
        for cell in measure_kernels(cfg) {
            records.push(Record {
                experiment: "kernels",
                backend: "-",
                loader: "-",
                mode: format!("{}-{}", cell.kernel, cell.path),
                threads: 1,
                millis: cell.ns_per_item * cell.items as f64 / 1e6,
                candidates: cell.items,
                candidates_per_sec: cell.items_per_sec,
                pairs_per_sec: None,
                filter_candidates_per_sec: None,
                peak_buffered: 0,
                raster: None,
                serving: None,
                kernel: Some(cell),
            });
        }
    }

    // Observability: engine snapshot + the always-on overhead guard.
    let obs = want("obs").then(|| obs_section(&a, &b));

    // Robustness: deadline time-to-error + fault-hook overhead guard.
    let robustness = want("robustness").then(|| robustness_section(cfg));

    // Serving load: the network front's throughput/overload/drain story.
    let serving_load = want("serving_load").then(|| serving_load_section(cfg));

    // Cold start: persisted-segment load vs Step-0 rebuild (the PR-10
    // acceptance guard — >= 10x above the noise floor — is asserted
    // inside the measurement).
    let cold_start = want("cold_start").then(|| cold_start_section(cfg));

    render(
        cfg,
        &a,
        &b,
        &records,
        obs.as_deref(),
        robustness.as_deref(),
        serving_load.as_deref(),
        cold_start.as_deref(),
    )
}

/// The `"cold_start"` payload: rebuild vs load wall-clock (total and
/// per section), segment file sizes, the asserted digest equality and
/// whether the >= 10x guard was binding for this run.
fn cold_start_section(cfg: &ExpConfig) -> String {
    let m = crate::experiments::cold_start::measure_cold_start(cfg);
    let mut out = format!(
        concat!(
            "{{\"objects_per_dataset\":{},",
            "\"rebuild_millis\":{:.3},\"cold_open_millis\":{:.3},",
            "\"speedup\":{:.2},\"guard_enforced\":{},",
            "\"store_bytes\":[{},{}],\"digest_equal\":{},",
            "\"sections\":["
        ),
        m.objects,
        m.rebuild_millis[0] + m.rebuild_millis[1],
        m.open_millis,
        m.speedup,
        m.guard_enforced,
        m.store_bytes[0],
        m.store_bytes[1],
        m.digest_equal,
    );
    for (i, row) in m.sections.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"bytes\":{},\"rebuild_millis\":{},\"load_millis\":{:.3}}}",
            row.name,
            row.bytes,
            row.rebuild_millis
                .map_or("null".into(), |v| format!("{v:.3}")),
            row.load_millis,
        ));
    }
    out.push_str("]}");
    out
}

/// The `"serving_load"` payload: the PR-9 network-front measurements.
/// The phase-level invariants (batched > serial, answered == sent,
/// shed > 0 under the flood, byte-identical completed frames) are
/// asserted inside the measurement; the payload reports the numbers.
fn serving_load_section(cfg: &ExpConfig) -> String {
    let m = measure_serving_load(cfg);
    format!(
        concat!(
            "{{\"clients\":{},\"queries\":{},",
            "\"serial_queries_per_sec\":{:.1},\"batched_queries_per_sec\":{:.1},",
            "\"batched_speedup\":{:.3},",
            "\"queue_wait_p50_micros\":{:.2},\"queue_wait_p90_micros\":{:.2},",
            "\"queue_wait_p99_micros\":{:.2},",
            "\"e2e_p50_micros\":{:.2},\"e2e_p90_micros\":{:.2},",
            "\"e2e_p99_micros\":{:.2},",
            "\"overload\":{{\"queue_bound\":{},\"sent\":{},\"completed\":{},",
            "\"shed\":{},\"other_refusals\":{}}},\"drain_clean\":{}}}"
        ),
        LOAD_CLIENTS,
        m.queries,
        m.serial_qps,
        m.batched_qps,
        m.batched_speedup,
        m.queue_wait_micros.0,
        m.queue_wait_micros.1,
        m.queue_wait_micros.2,
        m.e2e_micros.0,
        m.e2e_micros.1,
        m.e2e_micros.2,
        OVERLOAD_QUEUE_BOUND,
        m.overload_sent,
        m.overload_completed,
        m.overload_shed,
        m.overload_other,
        m.drain_clean,
    )
}

/// The `"robustness"` payload: the PR-8 failure-story measurements
/// (cancellation latency against a 50%-of-estimate deadline, and the
/// armed-vs-disabled fault-hook overhead guard).
fn robustness_section(cfg: &ExpConfig) -> String {
    let m = measure_robustness(cfg);
    format!(
        concat!(
            "{{\"deadline\":{{\"estimated_millis\":{:.3},\"from_history\":{},",
            "\"deadline_millis\":{:.3},\"time_to_error_millis\":{:.3},",
            "\"overshoot_millis\":{:.3},\"batch_wall_millis\":{:.3},",
            "\"batches\":{},\"partial_candidates\":{},\"guard_enforced\":{}}},",
            "\"fault_hooks\":{{\"disabled_millis\":{:.3},\"armed_millis\":{:.3},",
            "\"overhead_fraction\":{:.4},\"guard_enforced\":{}}}}}"
        ),
        m.estimated_millis,
        m.from_history,
        m.deadline_millis,
        m.time_to_error_millis,
        m.overshoot_millis,
        m.batch_wall_millis,
        m.batches,
        m.partial_candidates,
        m.deadline_guard_enforced,
        m.disabled_millis,
        m.armed_millis,
        m.hook_overhead_fraction,
        m.hook_guard_enforced,
    )
}

/// (p50, p90, p99) per-query latency in microseconds for one request
/// kind, read back from the engine's own metrics registry.
fn latency_percentiles(engine: &SpatialEngine, kind: &str) -> Option<(f64, f64, f64)> {
    let key = format!("msj_request_latency_nanos{{kind=\"{kind}\"}}");
    let snap = engine.metrics().snapshot();
    let h = snap.histogram(&key)?;
    (h.count > 0).then(|| {
        (
            h.p50() as f64 / 1e3,
            h.p90() as f64 / 1e3,
            h.p99() as f64 / 1e3,
        )
    })
}

/// The `"obs"` payload: a schema-versioned [`SpatialEngine`] metrics
/// snapshot after a fixed request mix, plus the overhead guard — the
/// same fused join timed with observability on vs
/// [`ObsConfig::disabled`]. The guard asserts the always-on promise
/// (< 3% wall-clock) whenever the disabled baseline is ≥ 20 ms; below
/// that the ratio is timer noise and is only reported.
fn obs_section(a: &Arc<Relation>, b: &Arc<Relation>) -> String {
    let engine = SpatialEngine::new(
        JoinConfig::builder()
            .obs(ObsConfig::with_traces(16))
            .build(),
    );
    let (ha, hb) = (engine.register(a.clone()), engine.register(b.clone()));
    let prepared = engine.prepare_join(&ha, &hb);
    let _ = prepared.run_with(Execution::Fused { threads: 4 });
    let (points, windows) = serving_queries(a, 8);
    for (p, w) in points.iter().zip(&windows) {
        let _ = engine.point_query(&ha, *p);
        let _ = engine.window_query(&ha, *w);
    }
    let snapshot = engine.metrics().snapshot_json();

    let timed_join = |obs: ObsConfig| {
        let e = SpatialEngine::new(JoinConfig::builder().obs(obs).build());
        let (xa, xb) = (e.register(a.clone()), e.register(b.clone()));
        let p = e.prepare_join(&xa, &xb);
        let _ = p.run_with(Execution::Fused { threads: 4 }); // warm-up
        let (_, secs) = timed(|| p.run_with(Execution::Fused { threads: 4 }));
        secs
    };
    // The overhead is estimated per round — each round times the two
    // configurations back-to-back and the least-noise round wins.
    // Comparing a global min-on against a global min-off instead would
    // let a load spike that lands between the two measurements
    // masquerade as metrics overhead (observed at ±5% on shared CI
    // boxes, swamping the 3% budget); within a round the same spike
    // inflates both sides and cancels in the ratio.
    let mut off_secs = f64::INFINITY;
    let mut on_secs = f64::INFINITY;
    let mut overhead = f64::INFINITY;
    for _ in 0..3 {
        let off = timed_join(ObsConfig::disabled());
        let on = timed_join(ObsConfig::default());
        off_secs = off_secs.min(off);
        on_secs = on_secs.min(on);
        overhead = overhead.min((on - off) / off.max(1e-12));
    }
    // Enforced only in optimized builds on a ≥ 20 ms baseline: below
    // that the ratio is timer noise, and debug binaries inside a
    // parallel test harness share cores with other 4-thread joins.
    let guard_enforced = off_secs >= 0.020 && !cfg!(debug_assertions);
    if guard_enforced {
        assert!(
            overhead < 0.03,
            "observability overhead {:.2}% exceeds the 3% budget \
             (metrics on {:.2} ms vs off {:.2} ms)",
            overhead * 100.0,
            on_secs * 1e3,
            off_secs * 1e3,
        );
    }
    format!(
        concat!(
            "{{\"snapshot\":{},\"overhead\":{{",
            "\"baseline_millis\":{:.3},\"observed_millis\":{:.3},",
            "\"overhead_fraction\":{:.4},\"guard_enforced\":{}}}}}"
        ),
        snapshot,
        off_secs * 1e3,
        on_secs * 1e3,
        overhead,
        guard_enforced,
    )
}

fn ids_digest(acc: u64, ids: &mut [ObjectId]) -> u64 {
    ids.sort_unstable();
    // Chain the per-query pair digest (id, position) so query order and
    // per-query membership both matter.
    let mut acc = acc;
    for (i, &id) in ids.iter().enumerate() {
        acc ^= response_digest(&[(id, i as u32)]);
        acc = acc.rotate_left(17);
    }
    acc.wrapping_add(ids.len() as u64 + 1)
}

/// The resident-only extras of a serving cell: the latency advantage
/// over prepare-per-query and the engine-histogram percentiles.
struct ResidentView {
    speedup_vs_prepare: f64,
    percentiles: Option<(f64, f64, f64)>,
}

fn serving_record(
    mode: &str,
    kind: &str,
    threads: usize,
    queries: u64,
    secs: f64,
    digest: u64,
    resident: Option<ResidentView>,
) -> Record {
    let per_query = secs / queries.max(1) as f64;
    Record {
        experiment: "serving",
        backend: "rstar",
        loader: "str",
        mode: format!("{mode}-{kind}"),
        threads,
        millis: secs * 1e3,
        candidates: 0,
        candidates_per_sec: 0.0,
        pairs_per_sec: None,
        filter_candidates_per_sec: None,
        peak_buffered: 0,
        raster: None,
        serving: Some(ServingCell {
            queries,
            queries_per_sec: queries as f64 / secs.max(1e-12),
            per_query_micros: per_query * 1e6,
            digest,
            speedup_vs_prepare: resident.as_ref().map(|r| r.speedup_vs_prepare),
            latency_percentiles_micros: resident.and_then(|r| r.percentiles),
        }),
        kernel: None,
    }
}

fn serving_records(cfg: &ExpConfig, a: &Arc<Relation>, b: &Arc<Relation>) -> Vec<Record> {
    let config = JoinConfig::default();
    let engine = SpatialEngine::new(config);
    let (ha, hb) = (engine.register(a.clone()), engine.register(b.clone()));
    let q = cfg.query_count();
    let (points, windows) = serving_queries(a, q);
    let mut records = Vec::new();

    // Selection traffic: resident over the full workload,
    // prepare-per-query over the bounded subset (each iteration builds a
    // fresh engine and registers the dataset — full Step 0 — before the
    // single probe). Digests compare the shared subset.
    for kind in ["point", "window"] {
        let run_resident = |e: &SpatialEngine, h: &msj_core::DatasetHandle, i: usize| match kind {
            "point" => e.point_query(h, points[i]).ids,
            _ => e.window_query(h, windows[i]).ids,
        };
        // Warm the lazy parts once, then time the full workload.
        let _ = run_resident(&engine, &ha, 0);
        let t = Instant::now();
        let mut resident_subset_digest = 0u64;
        for i in 0..q {
            let mut ids = run_resident(&engine, &ha, i);
            if i < SERVING_PREPARE_QUERIES {
                resident_subset_digest = ids_digest(resident_subset_digest, &mut ids);
            }
        }
        let resident_secs = t.elapsed().as_secs_f64();

        let prep_q = SERVING_PREPARE_QUERIES.min(q);
        let t = Instant::now();
        let mut prepare_digest = 0u64;
        for i in 0..prep_q {
            let fresh = SpatialEngine::new(config);
            let h = fresh.register(a.clone());
            let mut ids = run_resident(&fresh, &h, i);
            prepare_digest = ids_digest(prepare_digest, &mut ids);
        }
        let prepare_secs = t.elapsed().as_secs_f64();
        assert_eq!(
            resident_subset_digest, prepare_digest,
            "serving/{kind}: resident and prepare-per-query digests diverged"
        );
        let per_query_resident = resident_secs / q as f64;
        let per_query_prepare = prepare_secs / prep_q.max(1) as f64;
        records.push(serving_record(
            "resident",
            kind,
            1,
            q as u64,
            resident_secs,
            resident_subset_digest,
            Some(ResidentView {
                speedup_vs_prepare: per_query_prepare / per_query_resident.max(1e-12),
                percentiles: latency_percentiles(&engine, kind),
            }),
        ));
        records.push(serving_record(
            "prepare-per-query",
            kind,
            1,
            prep_q as u64,
            prepare_secs,
            prepare_digest,
            None,
        ));
    }

    // Join traffic: the resident prepared join re-executed vs a full
    // register+prepare+run per query.
    let prepared = engine.prepare_join(&ha, &hb);
    let _ = prepared.run_with(Execution::Fused { threads: 4 }); // warm
    let t = Instant::now();
    let mut resident_digest = 0u64;
    for _ in 0..SERVING_JOIN_RUNS {
        let result = prepared.run_with(Execution::Fused { threads: 4 });
        resident_digest ^= response_digest(&result.pairs);
    }
    let resident_secs = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let mut prepare_digest = 0u64;
    for _ in 0..SERVING_JOIN_RUNS {
        let fresh = SpatialEngine::new(config);
        let (fa, fb) = (fresh.register(a.clone()), fresh.register(b.clone()));
        let result = fresh
            .prepare_join(&fa, &fb)
            .run_with(Execution::Fused { threads: 4 });
        prepare_digest ^= response_digest(&result.pairs);
    }
    let prepare_secs = t.elapsed().as_secs_f64();
    assert_eq!(
        resident_digest, prepare_digest,
        "serving/join: resident and prepare-per-query digests diverged"
    );
    let per_query_resident = resident_secs / SERVING_JOIN_RUNS as f64;
    let per_query_prepare = prepare_secs / SERVING_JOIN_RUNS as f64;
    records.push(serving_record(
        "resident",
        "join",
        4,
        SERVING_JOIN_RUNS as u64,
        resident_secs,
        resident_digest,
        Some(ResidentView {
            speedup_vs_prepare: per_query_prepare / per_query_resident.max(1e-12),
            percentiles: latency_percentiles(&engine, "join"),
        }),
    ));
    records.push(serving_record(
        "prepare-per-query",
        "join",
        4,
        SERVING_JOIN_RUNS as u64,
        prepare_secs,
        prepare_digest,
        None,
    ));
    records
}

#[allow(clippy::too_many_arguments)]
fn render(
    cfg: &ExpConfig,
    a: &Relation,
    b: &Relation,
    records: &[Record],
    obs: Option<&str>,
    robustness: Option<&str>,
    serving_load: Option<&str>,
    cold_start: Option<&str>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"msj-bench-pr10\",\n");
    out.push_str("  \"workload\": \"skewed_carto\",\n");
    out.push_str(&format!("  \"objects_a\": {},\n", a.len()));
    out.push_str(&format!("  \"objects_b\": {},\n", b.len()));
    out.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    out.push_str(&format!("  \"scale\": \"{:?}\",\n", cfg.scale));
    out.push_str(
        "  \"agreement\": \"all cells produced the identical canonically sorted response set\",\n",
    );
    if let Some(obs) = obs {
        out.push_str(&format!("  \"obs\": {obs},\n"));
    }
    if let Some(robustness) = robustness {
        out.push_str(&format!("  \"robustness\": {robustness},\n"));
    }
    if let Some(serving_load) = serving_load {
        out.push_str(&format!("  \"serving_load\": {serving_load},\n"));
    }
    if let Some(cold_start) = cold_start {
        out.push_str(&format!("  \"cold_start\": {cold_start},\n"));
    }
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&r.to_json());
        if i + 1 < records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn bench_json_is_emitted_and_contains_the_matrix() {
        let cfg = ExpConfig {
            seed: 3,
            scale: Scale::Quick,
        };
        let json = bench_json(&cfg);
        for needle in [
            "\"schema\": \"msj-bench-pr10\"",
            "\"obs\": {",
            "\"robustness\": {",
            "\"serving_load\": {",
            "\"cold_start\": {",
            "\"cold_open_millis\":",
            "\"digest_equal\":true",
            "\"batched_speedup\":",
            "\"queue_wait_p99_micros\":",
            "\"e2e_p99_micros\":",
            "\"drain_clean\":true",
            "\"time_to_error_millis\":",
            "\"fault_hooks\":",
            "\"overhead_fraction\":",
            "\"guard_enforced\":",
            "\"msj-obs-v1\"",
            "\"latency_p50_micros\":",
            "\"latency_p99_micros\":",
            "\"experiment\":\"step1\"",
            "\"experiment\":\"join\"",
            "\"experiment\":\"raster\"",
            "\"experiment\":\"serving\"",
            "\"loader\":\"str\"",
            "\"loader\":\"incremental\"",
            "\"mode\":\"fused\"",
            "\"mode\":\"fused-batch1\"",
            "\"mode\":\"collect-chunk\"",
            "\"mode\":\"raster-off\"",
            "\"mode\":\"raster-b8\"",
            "\"backend\":\"grid\"",
            "\"raster_decided_fraction\":",
            "\"mode\":\"resident-point\"",
            "\"mode\":\"prepare-per-query-point\"",
            "\"mode\":\"resident-window\"",
            "\"mode\":\"resident-join\"",
            "\"queries_per_sec\":",
            "\"per_query_micros\":",
            "\"speedup_vs_prepare\":",
            "\"digest\":\"0x",
            "\"experiment\":\"kernels\"",
            "\"kernel\":\"sweep\"",
            "\"kernel\":\"mer-accept\"",
            "\"kernel\":\"raster-decide\"",
            "\"dispatch\":\"scalar\"",
            "\"speedup_vs_scalar\":",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        // Structural sanity: balanced braces/brackets, one record per line.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        // Omitted-when-absent: step1 cells carry no join/filter
        // throughput, collect-chunk cells no filter throughput, the
        // raster-off cell no raster payload, and only resident serving
        // cells a speedup.
        for line in json.lines() {
            if line.contains("\"experiment\":\"step1\"") {
                assert!(!line.contains("pairs_per_sec"), "step1 cell: {line}");
                assert!(
                    !line.contains("filter_candidates_per_sec"),
                    "step1 cell: {line}"
                );
            }
            if line.contains("\"mode\":\"collect-chunk\"") {
                assert!(
                    !line.contains("filter_candidates_per_sec"),
                    "baseline never timed its filter: {line}"
                );
            }
            if line.contains("\"mode\":\"raster-off\"") {
                assert!(!line.contains("raster_grid_bits"), "off cell: {line}");
            }
            if line.contains("\"mode\":\"prepare-per-query") {
                assert!(
                    !line.contains("speedup_vs_prepare"),
                    "prepare cell carries no speedup: {line}"
                );
                assert!(
                    !line.contains("latency_p50_micros"),
                    "prepare cell carries no engine percentiles: {line}"
                );
            }
        }
    }

    #[test]
    fn only_filter_restricts_the_sections() {
        let cfg = ExpConfig {
            seed: 3,
            scale: Scale::Quick,
        };
        let json = bench_json_only(&cfg, Some("raster"));
        assert!(json.contains("\"experiment\":\"raster\""));
        assert!(!json.contains("\"experiment\":\"step1\""));
        assert!(!json.contains("\"experiment\":\"join\""));
        assert!(!json.contains("\"experiment\":\"serving\""));
        assert!(!json.contains("\"experiment\":\"kernels\""));
        assert!(!json.contains("\"obs\": {"));
        assert!(!json.contains("\"serving_load\": {"));
        assert!(!json.contains("\"cold_start\": {"));
        // The raster sweep still verifies on/off agreement internally
        // (the check closure compares every cell against the first).
        assert!(json.contains("\"mode\":\"raster-off\""));
        assert!(json.contains("\"mode\":\"raster-b10\""));
    }

    #[test]
    fn cold_start_section_reports_the_store_story() {
        let cfg = ExpConfig {
            seed: 3,
            scale: Scale::Quick,
        };
        let json = bench_json_only(&cfg, Some("cold_start"));
        assert!(json.contains("\"cold_start\": {"));
        for needle in [
            "\"rebuild_millis\":",
            "\"cold_open_millis\":",
            "\"speedup\":",
            "\"store_bytes\":[",
            "\"digest_equal\":true",
            "\"sections\":[",
            "\"name\":\"relation\"",
            "\"name\":\"tree\"",
            "\"name\":\"trstar\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        // Only the cold-start payload — no measurement records.
        assert!(!json.contains("\"experiment\":"));
    }

    #[test]
    fn obs_section_reports_snapshot_and_overhead() {
        let cfg = ExpConfig {
            seed: 7,
            scale: Scale::Quick,
        };
        let json = bench_json_only(&cfg, Some("obs"));
        assert!(json.contains("\"obs\": {"));
        assert!(json.contains("\"schema\":\"msj-obs-v1\""));
        // The snapshot carries live per-kind request latencies and the
        // full described schema (metric keys escape their label quotes).
        assert!(json.contains("msj_request_latency_nanos{kind=\\\"join\\\"}"));
        assert!(json.contains("msj_admission_shed_total"));
        assert!(json.contains("\"baseline_millis\":"));
        assert!(json.contains("\"observed_millis\":"));
        assert!(json.contains("\"overhead_fraction\":"));
        assert!(json.contains("\"guard_enforced\":"));
        // Only the obs payload — no measurement records.
        assert!(!json.contains("\"experiment\":"));
    }

    #[test]
    fn kernels_section_reports_every_path_with_equal_digests() {
        let cfg = ExpConfig {
            seed: 11,
            scale: Scale::Quick,
        };
        let json = bench_json_only(&cfg, Some("kernels"));
        let paths = msj_geom::KernelDispatch::all_available().len();
        // One record per kernel × available dispatch path.
        assert_eq!(
            json.matches("\"experiment\":\"kernels\"").count(),
            3 * paths
        );
        assert!(json.contains("\"dispatch\":\"scalar\""));
        // Cross-path digest agreement per kernel (the measurement panics
        // on divergence; this re-checks from the rendered document).
        for kernel in ["sweep", "mer-accept", "raster-decide"] {
            let digests: Vec<&str> = json
                .lines()
                .filter(|l| l.contains(&format!("\"kernel\":\"{kernel}\"")))
                .filter_map(|l| l.split("\"digest\":\"").nth(1))
                .filter_map(|t| t.split('"').next())
                .collect();
            assert_eq!(digests.len(), paths, "{kernel}: one digest per path");
            assert!(
                digests.iter().all(|d| *d == digests[0]),
                "{kernel}: digests diverge across paths"
            );
        }
        // Scalar cells are their own baseline.
        for line in json.lines() {
            if line.contains("\"dispatch\":\"scalar\"") {
                assert!(line.contains("\"speedup_vs_scalar\":1.000"), "{line}");
            }
        }
    }

    #[test]
    fn robustness_section_reports_deadline_and_hook_guard() {
        let cfg = ExpConfig {
            seed: 17,
            scale: Scale::Quick,
        };
        let json = bench_json_only(&cfg, Some("robustness"));
        assert!(json.contains("\"robustness\": {"));
        for needle in [
            "\"deadline\":{",
            "\"estimated_millis\":",
            "\"deadline_millis\":",
            "\"time_to_error_millis\":",
            "\"overshoot_millis\":",
            "\"batch_wall_millis\":",
            "\"partial_candidates\":",
            "\"fault_hooks\":{",
            "\"disabled_millis\":",
            "\"armed_millis\":",
            "\"overhead_fraction\":",
            "\"guard_enforced\":",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        // Only the robustness payload — no measurement records.
        assert!(!json.contains("\"experiment\":"));
        assert!(!json.contains("\"obs\": {"));
    }

    #[test]
    fn serving_load_section_reports_phases_and_overload() {
        let cfg = ExpConfig {
            seed: 23,
            scale: Scale::Quick,
        };
        let json = bench_json_only(&cfg, Some("serving_load"));
        assert!(json.contains("\"serving_load\": {"));
        for needle in [
            "\"clients\":8",
            "\"serial_queries_per_sec\":",
            "\"batched_queries_per_sec\":",
            "\"batched_speedup\":",
            "\"queue_wait_p50_micros\":",
            "\"queue_wait_p90_micros\":",
            "\"queue_wait_p99_micros\":",
            "\"e2e_p50_micros\":",
            "\"e2e_p99_micros\":",
            "\"overload\":{\"queue_bound\":",
            "\"shed\":",
            "\"other_refusals\":",
            "\"drain_clean\":true",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        // Only the serving-load payload — no measurement records.
        assert!(!json.contains("\"experiment\":"));
        assert!(!json.contains("\"obs\": {"));
    }

    #[test]
    fn serving_section_asserts_digest_agreement() {
        let cfg = ExpConfig {
            seed: 5,
            scale: Scale::Quick,
        };
        let json = bench_json_only(&cfg, Some("serving"));
        assert!(json.contains("\"experiment\":\"serving\""));
        // Six cells: {resident, prepare-per-query} × {point, window, join}.
        assert_eq!(json.matches("\"experiment\":\"serving\"").count(), 6);
        // Digests of paired modes are equal (the section panics
        // otherwise, so reaching here plus finding both spellings is the
        // assertion).
        for kind in ["point", "window", "join"] {
            let digests: Vec<&str> = json
                .lines()
                .filter(|l| l.contains(&format!("-{kind}\"")))
                .filter_map(|l| l.split("\"digest\":\"").nth(1))
                .filter_map(|t| t.split('"').next())
                .collect();
            assert_eq!(digests.len(), 2, "{kind}: two cells expected");
            assert_eq!(digests[0], digests[1], "{kind}: digests differ");
        }
    }
}

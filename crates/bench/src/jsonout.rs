//! Machine-readable benchmark output (`BENCH_pr3.json`).
//!
//! Measures the batched hot path on the skewed cartographic workload —
//! the PR-3 acceptance matrix — and emits one JSON document:
//!
//! * **Step 1** (`"step1"` records): candidates/sec per backend × Step-0
//!   loader (index construction + candidate streaming);
//! * **Steps 1–3** (`"join"` records): pairs/sec and filter throughput
//!   per backend × loader × execution mode, including the preserved
//!   collect-then-chunk baseline and the per-pair (`batch=1`) protocol;
//! * the agreement verdict: every measured cell must produce the
//!   identical canonically sorted response set.
//!
//! No serde in this workspace (offline vendored deps only), so the JSON
//! is emitted by hand — flat records, numbers and strings only.

use crate::baseline::PreparedBaseline;
use crate::experiments::ExpConfig;
use msj_core::{
    join_source, Backend, Execution, JoinConfig, JoinResult, MultiStepJoin, TreeLoader,
};
use msj_geom::Relation;
use std::time::Instant;

/// One flat measurement record.
struct Record {
    experiment: &'static str,
    backend: &'static str,
    loader: &'static str,
    mode: String,
    threads: usize,
    millis: f64,
    candidates: u64,
    candidates_per_sec: f64,
    pairs_per_sec: f64,
    filter_candidates_per_sec: f64,
    peak_buffered: u64,
}

impl Record {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"experiment\":\"{}\",\"backend\":\"{}\",\"loader\":\"{}\",",
                "\"mode\":\"{}\",\"threads\":{},\"millis\":{:.3},",
                "\"candidates\":{},\"candidates_per_sec\":{:.0},",
                "\"pairs_per_sec\":{:.0},\"filter_candidates_per_sec\":{:.0},",
                "\"peak_buffered\":{}}}"
            ),
            self.experiment,
            self.backend,
            self.loader,
            self.mode,
            self.threads,
            self.millis,
            self.candidates,
            self.candidates_per_sec,
            self.pairs_per_sec,
            self.filter_candidates_per_sec,
            self.peak_buffered,
        )
    }
}

/// Repetitions per timed cell (deterministic runs → minimum is the
/// least-noise estimate).
const REPS: usize = 3;

fn timed(mut run: impl FnMut() -> JoinResult) -> (JoinResult, f64) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let r = run();
        best = best.min(start.elapsed().as_secs_f64());
        result = Some(r);
    }
    (result.expect("REPS >= 1"), best)
}

fn loader_name(loader: TreeLoader) -> &'static str {
    match loader {
        TreeLoader::Str => "str",
        TreeLoader::Incremental => "incremental",
    }
}

fn join_record(
    backend: &'static str,
    loader: TreeLoader,
    mode: String,
    threads: usize,
    result: &JoinResult,
    secs: f64,
) -> Record {
    let s = &result.stats;
    // 0 when the executor did not time its filter step (the
    // collect-then-chunk baseline predates the per-step counters).
    let filter_throughput = if s.step2_nanos == 0 {
        0.0
    } else {
        s.mbr_join.candidates as f64 / (s.step2_nanos as f64 / 1e9)
    };
    Record {
        experiment: "join",
        backend,
        loader: loader_name(loader),
        mode,
        threads,
        millis: secs * 1e3,
        candidates: s.mbr_join.candidates,
        candidates_per_sec: s.mbr_join.candidates as f64 / secs.max(1e-12),
        pairs_per_sec: s.result_pairs as f64 / secs.max(1e-12),
        filter_candidates_per_sec: filter_throughput,
        peak_buffered: s.peak_buffered_candidates,
    }
}

/// Runs the measurement matrix and renders the JSON document.
pub fn bench_json(cfg: &ExpConfig) -> String {
    let n = cfg.large_count() / 2;
    let a = msj_datagen::skewed_carto(n, 24.0, cfg.seed);
    let b = msj_datagen::skewed_carto(n, 24.0, cfg.seed + 1);

    let grid_tiles = match Backend::partitioned_auto() {
        Backend::PartitionedSweep { tiles_per_axis, .. } => tiles_per_axis,
        Backend::RStarTraversal => unreachable!("partitioned_auto is partitioned"),
    };
    let backends: [(&'static str, Backend); 2] = [
        ("rstar", Backend::RStarTraversal),
        (
            "grid",
            Backend::PartitionedSweep {
                tiles_per_axis: grid_tiles,
                threads: 1,
            },
        ),
    ];
    let loaders = [TreeLoader::Str, TreeLoader::Incremental];

    let mut records: Vec<Record> = Vec::new();
    let mut reference: Option<Vec<(u32, u32)>> = None;
    let mut check = |result: &JoinResult, label: &str| {
        let mut got = result.pairs.clone();
        got.sort_unstable();
        match &reference {
            None => reference = Some(got),
            Some(expect) => assert_eq!(&got, expect, "{label}: response set diverged"),
        }
    };

    // Step-1 throughput: backend × loader, construction + streaming.
    // The loader only affects the R*-tree backend (the grid builds no
    // trees), so grid cells are measured once.
    for (backend_name, backend) in backends {
        for loader in loaders {
            if backend_name != "rstar" && loader != TreeLoader::Str {
                continue;
            }
            let config = JoinConfig {
                backend,
                loader,
                ..JoinConfig::default()
            };
            // Minimum over REPS cold construct+stream runs, like the
            // join cells (the runs are deterministic).
            let mut secs = f64::INFINITY;
            let mut stats = msj_core::Step1Stats::default();
            for _ in 0..REPS {
                let start = Instant::now();
                let mut source = join_source(&config, &a, &b);
                stats = source.stream_candidates(&mut |_, _| {});
                secs = secs.min(start.elapsed().as_secs_f64().max(1e-12));
            }
            records.push(Record {
                experiment: "step1",
                backend: backend_name,
                loader: loader_name(loader),
                mode: "construct+stream".into(),
                threads: 1,
                millis: secs * 1e3,
                candidates: stats.join.candidates,
                candidates_per_sec: stats.join.candidates as f64 / secs,
                pairs_per_sec: 0.0,
                filter_candidates_per_sec: 0.0,
                peak_buffered: stats.peak_buffered,
            });
        }
    }

    // Steps 1–3: backend × loader × execution mode (grid cells once, as
    // above).
    for (backend_name, backend) in backends {
        for loader in loaders {
            if backend_name != "rstar" && loader != TreeLoader::Str {
                continue;
            }
            let base = JoinConfig {
                backend,
                loader,
                ..JoinConfig::default()
            };
            let mut prepared = MultiStepJoin::new(base).prepare(&a, &b);
            let _ = prepared.run_with(Execution::Serial); // warm-up
            let (serial, serial_secs) = timed(|| prepared.run_with(Execution::Serial));
            check(
                &serial,
                &format!("{backend_name}/{}/serial", loader_name(loader)),
            );
            records.push(join_record(
                backend_name,
                loader,
                "serial".into(),
                1,
                &serial,
                serial_secs,
            ));
            for threads in [1usize, 4] {
                let (fused, fused_secs) = timed(|| prepared.run_with(Execution::Fused { threads }));
                check(
                    &fused,
                    &format!("{backend_name}/{}/fused x{threads}", loader_name(loader)),
                );
                records.push(join_record(
                    backend_name,
                    loader,
                    "fused".into(),
                    threads,
                    &fused,
                    fused_secs,
                ));
            }
            // The per-pair protocol (batch=1) and the collect-then-chunk
            // baseline, measured for the default loader only — they vary
            // the execution, not Step 0.
            if loader == TreeLoader::Str {
                let per_pair = JoinConfig {
                    batch_pairs: 1,
                    ..base
                };
                let mut per_pair_prepared = MultiStepJoin::new(per_pair).prepare(&a, &b);
                let _ = per_pair_prepared.run_with(Execution::Serial);
                let (unbatched, unbatched_secs) =
                    timed(|| per_pair_prepared.run_with(Execution::Fused { threads: 4 }));
                check(&unbatched, &format!("{backend_name}/str/batch1"));
                records.push(join_record(
                    backend_name,
                    loader,
                    "fused-batch1".into(),
                    4,
                    &unbatched,
                    unbatched_secs,
                ));
                let mut baseline = PreparedBaseline::new(&a, &b, &base, 4);
                let _ = baseline.run();
                let (baseline_result, baseline_secs) = timed(|| baseline.run());
                check(&baseline_result, &format!("{backend_name}/str/baseline"));
                records.push(join_record(
                    backend_name,
                    loader,
                    "collect-chunk".into(),
                    4,
                    &baseline_result,
                    baseline_secs,
                ));
            }
        }
    }

    render(cfg, &a, &b, &records)
}

fn render(cfg: &ExpConfig, a: &Relation, b: &Relation, records: &[Record]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"msj-bench-pr3\",\n");
    out.push_str("  \"workload\": \"skewed_carto\",\n");
    out.push_str(&format!("  \"objects_a\": {},\n", a.len()));
    out.push_str(&format!("  \"objects_b\": {},\n", b.len()));
    out.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    out.push_str(&format!("  \"scale\": \"{:?}\",\n", cfg.scale));
    out.push_str(
        "  \"agreement\": \"all cells produced the identical canonically sorted response set\",\n",
    );
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&r.to_json());
        if i + 1 < records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn bench_json_is_emitted_and_contains_the_matrix() {
        let cfg = ExpConfig {
            seed: 3,
            scale: Scale::Quick,
        };
        let json = bench_json(&cfg);
        for needle in [
            "\"schema\": \"msj-bench-pr3\"",
            "\"experiment\":\"step1\"",
            "\"experiment\":\"join\"",
            "\"loader\":\"str\"",
            "\"loader\":\"incremental\"",
            "\"mode\":\"fused\"",
            "\"mode\":\"fused-batch1\"",
            "\"mode\":\"collect-chunk\"",
            "\"backend\":\"grid\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        // Structural sanity: balanced braces/brackets, one record per line.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
    }
}

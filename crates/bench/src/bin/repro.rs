//! Reproduction driver: regenerates the paper's tables and figures.
//!
//! Usage:
//!   repro `<experiment-id>`... [--scale quick|default|full] [--seed N] [--list]
//!   repro all [--scale ...]

use msj_bench::{bench_json, registry, ExpConfig, Scale};
use std::io::Write;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut cfg = ExpConfig::default();
    let mut list = false;
    let mut json_path: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                i += 1;
                json_path = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--json needs an output path");
                    std::process::exit(2);
                }));
            }
            "--scale" => {
                i += 1;
                cfg.scale = match args.get(i).map(String::as_str) {
                    Some("quick") => Scale::Quick,
                    Some("default") => Scale::Default,
                    Some("full") => Scale::Full,
                    other => {
                        eprintln!("unknown scale {other:?} (quick|default|full)");
                        std::process::exit(2);
                    }
                };
            }
            "--seed" => {
                i += 1;
                cfg.seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs an integer");
                    std::process::exit(2);
                });
            }
            "--list" => list = true,
            "--help" | "-h" => {
                print_help();
                return;
            }
            id => ids.push(id.to_string()),
        }
        i += 1;
    }

    // The machine-readable bench can run standalone (`--json out.json`)
    // or alongside named experiments.
    if let Some(path) = &json_path {
        let t0 = Instant::now();
        let json = bench_json(&cfg);
        std::fs::write(path, &json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("[bench json → {path} in {:.1?}]", t0.elapsed());
        if ids.is_empty() {
            return;
        }
    }

    let reg = registry();
    if list || ids.is_empty() {
        print_help();
        println!("\navailable experiments:");
        for e in &reg {
            println!("  {:<20} {}", e.id, e.description);
        }
        return;
    }

    let run_all = ids.iter().any(|id| id == "all");
    let selected: Vec<_> = if run_all {
        reg.iter().collect()
    } else {
        let mut sel = Vec::new();
        for id in &ids {
            match reg.iter().find(|e| e.id == *id) {
                Some(e) => sel.push(e),
                None => {
                    eprintln!("unknown experiment {id:?}; use --list");
                    std::process::exit(2);
                }
            }
        }
        sel
    };

    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    writeln!(
        lock,
        "multi-step spatial join reproduction — seed {}, scale {:?}",
        cfg.seed, cfg.scale
    )
    .unwrap();
    for e in selected {
        let t0 = Instant::now();
        let report = (e.run)(&cfg);
        writeln!(lock, "{report}").unwrap();
        writeln!(lock, "[{} finished in {:.1?}]", e.id, t0.elapsed()).unwrap();
    }
}

fn print_help() {
    println!(
        "repro — regenerate the evaluation tables/figures of\n\
         \"Multi-Step Processing of Spatial Joins\" (SIGMOD 1994)\n\n\
         usage: repro <id>... [--scale quick|default|full] [--seed N]\n\
         \u{20}      repro all [--scale ...]\n\
         \u{20}      repro --json <path> [--scale ...]   (machine-readable bench)\n\
         \u{20}      repro --list"
    );
}

//! Reproduction driver: regenerates the paper's tables and figures.
//!
//! Usage:
//!   repro `<experiment-id>`... [--scale quick|default|full] [--seed N] [--list]
//!   repro all [--scale ...]

use msj_bench::{bench_json_only, registry, ExpConfig, Scale};
use std::io::Write;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut cfg = ExpConfig::default();
    let mut list = false;
    let mut json_path: Option<String> = None;
    let mut only: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                i += 1;
                json_path = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--json needs an output path");
                    std::process::exit(2);
                }));
            }
            "--only" => {
                i += 1;
                only = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--only needs an experiment/section name");
                    std::process::exit(2);
                }));
            }
            "--scale" => {
                i += 1;
                cfg.scale = match args.get(i).map(String::as_str) {
                    Some("quick") => Scale::Quick,
                    Some("default") => Scale::Default,
                    Some("full") => Scale::Full,
                    other => {
                        eprintln!("unknown scale {other:?} (quick|default|full)");
                        std::process::exit(2);
                    }
                };
            }
            "--seed" => {
                i += 1;
                cfg.seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs an integer");
                    std::process::exit(2);
                });
            }
            "--list" => list = true,
            "--help" | "-h" => {
                print_help();
                return;
            }
            id => ids.push(id.to_string()),
        }
        i += 1;
    }

    // `--only` selects exactly one thing — mixing it with positional
    // ids (or `all`) would silently change what runs.
    if let Some(id) = &only {
        if !ids.is_empty() {
            eprintln!("--only {id:?} cannot be combined with positional experiment ids");
            std::process::exit(2);
        }
        if id == "all" {
            eprintln!("--only runs a single experiment; use `repro all` for the suite");
            std::process::exit(2);
        }
    }

    // The machine-readable bench can run standalone (`--json out.json`)
    // or alongside named experiments; `--only <section>` restricts it to
    // one measurement section (step1 | join | raster | serving | kernels | obs |
    // robustness | serving_load).
    if let Some(path) = &json_path {
        if let Some(section) = &only {
            if !msj_bench::jsonout::SECTIONS.contains(&section.as_str()) {
                eprintln!(
                    "--only {section:?} matches no bench section ({})",
                    msj_bench::jsonout::SECTIONS.join("|")
                );
                std::process::exit(2);
            }
        }
        let t0 = Instant::now();
        let json = bench_json_only(&cfg, only.as_deref());
        std::fs::write(path, &json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("[bench json → {path} in {:.1?}]", t0.elapsed());
        if ids.is_empty() {
            return;
        }
    } else if let Some(id) = &only {
        // Without --json, `--only X` is a single-experiment selection.
        ids = vec![id.clone()];
    }

    let reg = registry();
    if list || ids.is_empty() {
        print_help();
        println!("\navailable experiments:");
        for e in &reg {
            println!("  {:<20} {}", e.id, e.description);
        }
        return;
    }

    let run_all = ids.iter().any(|id| id == "all");
    let selected: Vec<_> = if run_all {
        reg.iter().collect()
    } else {
        let mut sel = Vec::new();
        for id in &ids {
            match reg.iter().find(|e| e.id == *id) {
                Some(e) => sel.push(e),
                None => {
                    eprintln!("unknown experiment {id:?}; use --list");
                    std::process::exit(2);
                }
            }
        }
        sel
    };

    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    writeln!(
        lock,
        "multi-step spatial join reproduction — seed {}, scale {:?}",
        cfg.seed, cfg.scale
    )
    .unwrap();
    for e in selected {
        let t0 = Instant::now();
        let report = (e.run)(&cfg);
        writeln!(lock, "{report}").unwrap();
        writeln!(lock, "[{} finished in {:.1?}]", e.id, t0.elapsed()).unwrap();
    }
}

fn print_help() {
    println!(
        "repro — regenerate the evaluation tables/figures of\n\
         \"Multi-Step Processing of Spatial Joins\" (SIGMOD 1994)\n\n\
         usage: repro <id>... [--scale quick|default|full] [--seed N]\n\
         \u{20}      repro all [--scale ...]\n\
         \u{20}      repro --only <id> [--scale ...]     (one experiment, no suite)\n\
         \u{20}      repro --json <path> [--scale ...]   (machine-readable bench)\n\
         \u{20}      repro --json <path> --only step1|join|...|serving_load     (one section)\n\
         \u{20}      repro --list"
    );
}

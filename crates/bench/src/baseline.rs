//! The PR-1 `parallel_join` baseline, preserved as a reference
//! implementation: **collect-then-chunk** execution.
//!
//! Step 1 materializes the *entire* candidate set into a `Vec` (a full
//! barrier paying memory proportional to the candidate count), then
//! Steps 2–3 fan out over even chunks on scoped threads. The fused
//! execution engine in `msj-core` replaced this; the `fused` experiment
//! and the `fused` Criterion bench measure the engine against this
//! faithful reproduction of the old executor.

use msj_core::{
    join_source, CandidateSource, FilterOutcome, GeometricFilter, JoinConfig, JoinResult,
    MultiStepStats,
};
use msj_exact::{ExactProcessor, OpCounts};
use msj_geom::{resolve_threads, ObjectId, Relation};

/// The baseline with Step 0 done — the counterpart of
/// `msj_core::PreparedJoin`, so benchmarks can time Steps 1–3 alone.
pub struct PreparedBaseline<'a> {
    source: Box<dyn CandidateSource + 'a>,
    filter: GeometricFilter,
    exact: ExactProcessor<'a>,
    threads: usize,
}

impl<'a> PreparedBaseline<'a> {
    /// Runs Step 0 (preprocessing) through the same public paths as the
    /// engine; `threads == 0` means available parallelism.
    pub fn new(
        rel_a: &'a Relation,
        rel_b: &'a Relation,
        config: &JoinConfig,
        threads: usize,
    ) -> Self {
        PreparedBaseline {
            source: join_source(config, rel_a, rel_b),
            filter: GeometricFilter::from_config(config, rel_a, rel_b),
            exact: ExactProcessor::new(config.exact, rel_a, rel_b),
            threads: resolve_threads(threads),
        }
    }

    /// Runs Steps 1–3 the PR-1 way: serial candidate collection into a
    /// `Vec`, then filter + exact over even chunks on scoped threads.
    /// Returns the same canonically sorted response set and
    /// exactly-merged statistics as the fused engine — just with the
    /// whole candidate set resident
    /// ([`MultiStepStats::peak_buffered_candidates`] records the
    /// materialized count).
    pub fn run(&mut self) -> JoinResult {
        // Step 1: materialize the candidates for the fan-out — the
        // barrier the fused engine exists to remove.
        let mut candidates: Vec<(ObjectId, ObjectId)> = Vec::new();
        let step1 = self
            .source
            .stream_candidates(&mut |a, b| candidates.push((a, b)));

        // Steps 2+3, parallel over candidate chunks.
        let chunk_size = candidates.len().div_ceil(self.threads.max(1)).max(1);
        let mut partials: Vec<(Vec<(ObjectId, ObjectId)>, MultiStepStats)> = Vec::new();
        let (filter, exact) = (&self.filter, &self.exact);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for chunk in candidates.chunks(chunk_size) {
                handles.push(scope.spawn(move || {
                    let mut pairs = Vec::new();
                    let mut stats = MultiStepStats::default();
                    let mut counts = OpCounts::new();
                    let raster_active = filter.raster_active();
                    for &(a, b) in chunk {
                        let outcome = filter.classify(a, b);
                        // Undecided-by-raster bookkeeping (the stage saw
                        // every candidate when active).
                        if raster_active
                            && !matches!(
                                outcome,
                                FilterOutcome::HitRaster | FilterOutcome::DropRaster
                            )
                        {
                            stats.raster_inconclusive += 1;
                        }
                        match outcome {
                            FilterOutcome::HitRaster => {
                                stats.raster_hits += 1;
                                pairs.push((a, b));
                            }
                            FilterOutcome::DropRaster => stats.raster_drops += 1,
                            FilterOutcome::FalseHit => stats.filter_false_hits += 1,
                            FilterOutcome::HitProgressive => {
                                stats.filter_hits_progressive += 1;
                                pairs.push((a, b));
                            }
                            FilterOutcome::HitFalseArea => {
                                stats.filter_hits_false_area += 1;
                                pairs.push((a, b));
                            }
                            FilterOutcome::Candidate => {
                                stats.exact_tests += 1;
                                if exact.intersects(a, b, &mut counts) {
                                    stats.exact_hits += 1;
                                    pairs.push((a, b));
                                }
                            }
                        }
                    }
                    stats.exact_ops = counts;
                    (pairs, stats)
                }));
            }
            for h in handles {
                partials.push(h.join().expect("worker panicked"));
            }
        });

        // Deterministic merge.
        let mut stats = MultiStepStats {
            mbr_join: step1.join,
            partition: step1.partition,
            threads_used: self.threads as u64,
            // The defining cost of this executor: every candidate
            // resident at once.
            peak_buffered_candidates: candidates.len() as u64,
            ..MultiStepStats::default()
        };
        let mut pairs = Vec::new();
        for (p, s) in partials {
            pairs.extend(p);
            stats.raster_hits += s.raster_hits;
            stats.raster_drops += s.raster_drops;
            stats.raster_inconclusive += s.raster_inconclusive;
            stats.filter_false_hits += s.filter_false_hits;
            stats.filter_hits_progressive += s.filter_hits_progressive;
            stats.filter_hits_false_area += s.filter_hits_false_area;
            stats.exact_tests += s.exact_tests;
            stats.exact_hits += s.exact_hits;
            stats.exact_ops.merge(&s.exact_ops);
        }
        pairs.sort_unstable();
        stats.result_pairs = pairs.len() as u64;
        JoinResult {
            pairs,
            stats,
            worker_lanes: Vec::new(),
        }
    }
}

/// One-shot convenience: Step 0 plus one collect-then-chunk execution.
pub fn collect_then_chunk_join(
    rel_a: &Relation,
    rel_b: &Relation,
    config: &JoinConfig,
    threads: usize,
) -> JoinResult {
    PreparedBaseline::new(rel_a, rel_b, config, threads).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use msj_core::{Execution, MultiStepJoin};

    #[test]
    fn baseline_agrees_with_the_fused_engine() {
        let a = msj_datagen::small_carto(40, 24.0, 801);
        let b = msj_datagen::small_carto(40, 24.0, 802);
        let config = JoinConfig::default();
        let serial = MultiStepJoin::new(config).execute(&a, &b);
        for threads in [1usize, 4] {
            let baseline = collect_then_chunk_join(&a, &b, &config, threads);
            let fused_config = config
                .to_builder()
                .execution(Execution::Fused { threads })
                .build();
            let fused = MultiStepJoin::new(fused_config).execute(&a, &b);
            assert_eq!(baseline.pairs, fused.pairs);
            assert_eq!(baseline.stats.exact_ops, fused.stats.exact_ops);
            assert_eq!(baseline.stats.exact_tests, serial.stats.exact_tests);
            // Step-2a accounting holds on this executor too (raster is
            // on in the default config).
            let s = &baseline.stats;
            assert_eq!(
                s.raster_hits + s.raster_drops + s.raster_inconclusive,
                s.mbr_join.candidates
            );
            assert_eq!(s.raster_hits, fused.stats.raster_hits);
            assert_eq!(s.raster_inconclusive, fused.stats.raster_inconclusive);
            // The baseline materializes everything; the engine does not.
            assert_eq!(
                baseline.stats.peak_buffered_candidates,
                baseline.stats.mbr_join.candidates
            );
            assert!(
                fused.stats.peak_buffered_candidates
                    <= msj_core::fused_buffer_bound(threads, config.batch_pairs)
            );
        }
    }
}

//! Shared experiment data: candidates and ground truth per test series.

use msj_datagen::TestSeries;
use msj_exact::{trees_intersect, OpCounts, TrStarStore};
use msj_geom::ObjectId;
use msj_sam::{tree_join, LruBuffer, PageLayout, RStarTree};

/// A test series with its MBR-join candidates and per-candidate ground
/// truth (computed once with the TR*-tree, the fastest exact algorithm).
pub struct SeriesData {
    pub series: TestSeries,
    /// Candidate pairs (intersecting MBRs) in join emission order.
    pub candidates: Vec<(ObjectId, ObjectId)>,
    /// `truth[i]` — whether `candidates[i]` actually intersects.
    pub truth: Vec<bool>,
    /// Prebuilt TR*-trees (M = 3) for both relations.
    pub trees_a: TrStarStore,
    pub trees_b: TrStarStore,
}

impl SeriesData {
    /// Runs the MBR-join and the exact ground truth for a series.
    pub fn build(series: TestSeries) -> Self {
        let layout = PageLayout::baseline(4096);
        let ta = RStarTree::insert_all(layout, series.a.iter().map(|o| (o.mbr(), o.id)));
        let tb = RStarTree::insert_all(layout, series.b.iter().map(|o| (o.mbr(), o.id)));
        let mut buffer = LruBuffer::with_bytes(128 * 1024, 4096);
        let mut candidates = Vec::new();
        tree_join(&ta, &tb, &mut buffer, |a, b| candidates.push((a, b)));

        let trees_a = TrStarStore::build(&series.a, 3);
        let trees_b = TrStarStore::build(&series.b, 3);
        let mut counts = OpCounts::new();
        let truth = candidates
            .iter()
            .map(|&(a, b)| trees_intersect(trees_a.get(a), trees_b.get(b), &mut counts))
            .collect();
        SeriesData {
            series,
            candidates,
            truth,
            trees_a,
            trees_b,
        }
    }

    /// Number of MBR-join candidates.
    pub fn num_candidates(&self) -> usize {
        self.candidates.len()
    }

    /// Number of true hits among the candidates.
    pub fn num_hits(&self) -> usize {
        self.truth.iter().filter(|&&t| t).count()
    }

    /// Number of false hits among the candidates.
    pub fn num_false_hits(&self) -> usize {
        self.num_candidates() - self.num_hits()
    }

    /// Iterates `(id_a, id_b, is_hit)`.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, ObjectId, bool)> + '_ {
        self.candidates
            .iter()
            .zip(self.truth.iter())
            .map(|(&(a, b), &t)| (a, b, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msj_datagen::{test_series, BaseMap, Strategy};

    #[test]
    fn series_data_is_consistent() {
        // A reduced series keeps the test fast.
        let base = msj_datagen::small_carto(40, 20.0, 5);
        let series = msj_datagen::strategy_a("mini", &base, msj_datagen::world(), 0.5, 0.5);
        let data = SeriesData::build(series);
        assert!(data.num_candidates() > 0);
        assert_eq!(
            data.num_hits() + data.num_false_hits(),
            data.num_candidates()
        );
        // Identity pairs of strategy A are hits (each object overlaps its
        // shifted copy given the 0.5-extent shift... at least most do).
        let identity_hits = data.iter().filter(|&(a, b, t)| a == b && t).count();
        assert!(identity_hits > 0);
    }

    #[test]
    #[ignore = "slow: builds a full Europe series; run with --ignored"]
    fn full_europe_series_builds() {
        let data = SeriesData::build(test_series(BaseMap::Europe, Strategy::A, 1));
        assert!(data.num_candidates() > 500);
        assert!(data.num_hits() > data.num_false_hits());
    }
}

//! Wall-clock comparison of the fused execution engine against the PR-1
//! collect-then-chunk executor at several thread counts, on an even
//! cartographic workload and a skewed one (companion to the `fused`
//! repro experiment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msj_bench::baseline::PreparedBaseline;
use msj_core::{Backend, Execution, JoinConfig, MultiStepJoin};
use std::hint::black_box;

fn bench_executors(c: &mut Criterion) {
    let mut group = c.benchmark_group("execution_engine");
    group.sample_size(10);
    let workloads = [
        (
            "carto",
            msj_datagen::small_carto(1_500, 24.0, 41),
            msj_datagen::small_carto(1_500, 24.0, 42),
        ),
        (
            "skewed",
            msj_datagen::skewed_carto(1_500, 24.0, 41),
            msj_datagen::skewed_carto(1_500, 24.0, 42),
        ),
    ];
    let base = JoinConfig::builder()
        .backend(Backend::PartitionedSweep {
            tiles_per_axis: 16,
            threads: 1,
        })
        .build();

    for (name, a, b) in &workloads {
        // Step 0 is paid once outside the timed loops: the executors
        // differ only in how they schedule Steps 1-3.
        let prepared = MultiStepJoin::new(base).prepare(a, b);
        group.bench_with_input(BenchmarkId::new("serial", *name), &(), |bench, ()| {
            bench.iter(|| black_box(prepared.run_with(Execution::Serial).pairs.len()))
        });
        for threads in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new("collect_then_chunk", format!("{name}/t{threads}")),
                &threads,
                |bench, &threads| {
                    let mut baseline = PreparedBaseline::new(a, b, &base, threads);
                    bench.iter(|| black_box(baseline.run().pairs.len()))
                },
            );
            group.bench_with_input(
                BenchmarkId::new("fused", format!("{name}/t{threads}")),
                &threads,
                |bench, &threads| {
                    bench.iter(|| {
                        black_box(prepared.run_with(Execution::Fused { threads }).pairs.len())
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_executors);
criterion_main!(benches);

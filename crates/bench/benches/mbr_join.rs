//! Wall-clock companion to Table 2 / the MBR-join step: synchronized
//! R*-tree traversal vs the nested-loops baseline, plus index build cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msj_geom::{ObjectId, Rect};
use msj_sam::{nested_loops_join, tree_join, LruBuffer, PageLayout, RStarTree};
use std::hint::black_box;

fn grid_items(n: usize, offset: f64) -> Vec<(Rect, ObjectId)> {
    let side = (n as f64).sqrt().ceil() as usize;
    (0..n)
        .map(|i| {
            let x = (i % side) as f64 * 10.0 + offset;
            let y = (i / side) as f64 * 10.0 + offset;
            (Rect::from_bounds(x, y, x + 11.0, y + 11.0), i as u32)
        })
        .collect()
}

fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("mbr_join");
    for &n in &[500usize, 2000] {
        let ia = grid_items(n, 0.0);
        let ib = grid_items(n, 4.0);
        let ta = RStarTree::insert_all(PageLayout::baseline(4096), ia.iter().copied());
        let tb = RStarTree::insert_all(PageLayout::baseline(4096), ib.iter().copied());

        group.bench_with_input(BenchmarkId::new("rstar_tree_join", n), &n, |b, _| {
            b.iter(|| {
                let mut buffer = LruBuffer::with_bytes(128 * 1024, 4096);
                let mut count = 0u64;
                tree_join(&ta, &tb, &mut buffer, |_, _| count += 1);
                black_box(count)
            })
        });
        group.bench_with_input(BenchmarkId::new("nested_loops", n), &n, |b, _| {
            b.iter(|| {
                let mut count = 0u64;
                nested_loops_join(&ia, &ib, |_, _| count += 1);
                black_box(count)
            })
        });
    }
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("rstar_build");
    group.sample_size(10);
    for &n in &[1000usize, 5000] {
        let items = grid_items(n, 0.0);
        group.bench_with_input(BenchmarkId::new("insert", n), &items, |b, items| {
            b.iter(|| {
                black_box(RStarTree::insert_all(
                    PageLayout::baseline(4096),
                    items.iter().copied(),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_join, bench_build);
criterion_main!(benches);

//! Wall-clock companion to Table 7 / Figure 16: the three exact
//! intersection algorithms on hit and false-hit pairs of increasing
//! complexity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msj_datagen::{blob, BlobParams};
use msj_exact::{quadratic_intersects, sweep_intersects, trees_intersect, OpCounts, TrStarTree};
use msj_geom::{Point, PolygonWithHoles};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn blob_region(seed: u64, vertices: usize, cx: f64) -> PolygonWithHoles {
    let params = BlobParams {
        vertices,
        radius: 4.0,
        ..BlobParams::default()
    };
    blob(
        &mut StdRng::seed_from_u64(seed),
        Point::new(cx, 0.0),
        &params,
    )
    .into()
}

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_pair_test");
    for &vertices in &[32usize, 128, 512] {
        // A hit pair (overlapping) and a false-hit pair (disjoint with
        // overlapping MBRs — worst case for edge-based algorithms).
        let hit = (blob_region(1, vertices, 0.0), blob_region(2, vertices, 3.0));
        let miss = (
            blob_region(3, vertices, 0.0),
            blob_region(4, vertices, 14.5),
        );

        for (tag, pair) in [("hit", &hit), ("false-hit", &miss)] {
            group.bench_with_input(
                BenchmarkId::new(format!("quadratic/{tag}"), vertices),
                pair,
                |b, (p, q)| {
                    b.iter(|| {
                        let mut counts = OpCounts::new();
                        black_box(quadratic_intersects(p, q, &mut counts))
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("plane_sweep/{tag}"), vertices),
                pair,
                |b, (p, q)| {
                    b.iter(|| {
                        let mut counts = OpCounts::new();
                        black_box(sweep_intersects(p, q, true, &mut counts))
                    })
                },
            );
            // TR* with precomputed trees (the paper's setting: trees are
            // built at insertion time).
            let ta = TrStarTree::build(&pair.0, 3);
            let tb = TrStarTree::build(&pair.1, 3);
            group.bench_with_input(
                BenchmarkId::new(format!("trstar_m3/{tag}"), vertices),
                &(&ta, &tb),
                |b, (ta, tb)| {
                    b.iter(|| {
                        let mut counts = OpCounts::new();
                        black_box(trees_intersect(ta, tb, &mut counts))
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_trstar_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("trstar_preprocessing");
    for &vertices in &[32usize, 128, 512] {
        let region = blob_region(9, vertices, 0.0);
        group.bench_with_input(BenchmarkId::new("build_m3", vertices), &region, |b, r| {
            b.iter(|| black_box(TrStarTree::build(r, 3)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exact, bench_trstar_build);
criterion_main!(benches);

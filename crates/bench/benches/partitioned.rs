//! Wall-clock comparison of the Step-1 candidate backends: serial
//! R*-tree traversal vs the partitioned parallel sweep at several thread
//! counts (companion to the `partitioned` repro experiment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msj_core::{join_source, Backend, JoinConfig};
use std::hint::black_box;

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("step1_backends");
    group.sample_size(10);
    let a = msj_datagen::large_relation(4_000, 0, 31);
    let b = msj_datagen::large_relation(4_000, 1, 31);

    group.bench_with_input(
        BenchmarkId::new("rstar_traversal", "4000x4000"),
        &(),
        |bench, ()| {
            let config = JoinConfig::default();
            bench.iter(|| {
                let mut count = 0u64;
                join_source(&config, &a, &b).stream_candidates(&mut |_, _| count += 1);
                black_box(count)
            })
        },
    );
    for threads in [1usize, 2, 4, 8] {
        let config = JoinConfig::builder()
            .backend(Backend::PartitionedSweep {
                tiles_per_axis: 16,
                threads,
            })
            .build();
        group.bench_with_input(
            BenchmarkId::new("partitioned_sweep", format!("4000x4000/t{threads}")),
            &config,
            |bench, config| {
                bench.iter(|| {
                    let mut count = 0u64;
                    join_source(config, &a, &b).stream_candidates(&mut |_, _| count += 1);
                    black_box(count)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);

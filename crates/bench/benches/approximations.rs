//! Wall-clock companion to Figures 3/4/8: computing each approximation
//! kind at insertion time, and the per-pair filter tests of the geometric
//! filter (Tables 3/5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msj_approx::{Conservative, ConservativeKind, Progressive, ProgressiveKind};
use msj_datagen::{blob, BlobParams};
use msj_geom::{Point, SpatialObject};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn blob_object(seed: u64, vertices: usize, cx: f64) -> SpatialObject {
    let params = BlobParams {
        vertices,
        radius: 4.0,
        ..BlobParams::default()
    };
    SpatialObject::new(
        0,
        blob(
            &mut StdRng::seed_from_u64(seed),
            Point::new(cx, 0.0),
            &params,
        )
        .into(),
    )
}

fn bench_compute(c: &mut Criterion) {
    let mut group = c.benchmark_group("approximation_construction");
    let obj = blob_object(5, 128, 0.0);
    for kind in ConservativeKind::ALL {
        group.bench_with_input(
            BenchmarkId::new("conservative", kind.name()),
            &obj,
            |b, o| b.iter(|| black_box(Conservative::compute(kind, o))),
        );
    }
    for kind in ProgressiveKind::ALL {
        group.bench_with_input(
            BenchmarkId::new("progressive", kind.name()),
            &obj,
            |b, o| b.iter(|| black_box(Progressive::compute(kind, o))),
        );
    }
    group.finish();
}

fn bench_filter_tests(c: &mut Criterion) {
    let mut group = c.benchmark_group("filter_pair_test");
    let a = blob_object(7, 128, 0.0);
    let b_ = blob_object(8, 128, 5.0);
    for kind in ConservativeKind::ALL {
        let ca = Conservative::compute(kind, &a);
        let cb = Conservative::compute(kind, &b_);
        group.bench_with_input(
            BenchmarkId::new("conservative_intersects", kind.name()),
            &(&ca, &cb),
            |bench, (x, y)| bench.iter(|| black_box(x.intersects(y))),
        );
    }
    for kind in ProgressiveKind::ALL {
        let pa = Progressive::compute(kind, &a);
        let pb = Progressive::compute(kind, &b_);
        group.bench_with_input(
            BenchmarkId::new("progressive_intersects", kind.name()),
            &(pa, pb),
            |bench, (x, y)| bench.iter(|| black_box(x.intersects(y))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_compute, bench_filter_tests);
criterion_main!(benches);

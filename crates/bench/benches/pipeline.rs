//! Wall-clock companion to Figure 18: the complete multi-step join in its
//! three §5 versions (including all preprocessing) on a carto workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msj_core::{JoinConfig, MultiStepJoin};
use std::hint::black_box;

fn bench_versions(c: &mut Criterion) {
    let mut group = c.benchmark_group("multi_step_join");
    group.sample_size(10);
    let a = msj_datagen::small_carto(100, 32.0, 61);
    let b = msj_datagen::small_carto(100, 32.0, 62);
    for (name, config) in [
        ("version1_sweep", JoinConfig::version1()),
        ("version2_5c_mer_sweep", JoinConfig::version2()),
        ("version3_5c_mer_trstar", JoinConfig::version3()),
    ] {
        group.bench_with_input(BenchmarkId::new(name, "100x100"), &config, |bench, cfg| {
            bench.iter(|| black_box(MultiStepJoin::new(*cfg).execute(&a, &b)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_versions);
criterion_main!(benches);

//! Wall-clock companion to Figure 10: multi-step point and window queries
//! with and without stored approximations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msj_core::{JoinConfig, SpatialEngine};
use msj_geom::{Point, Rect};
use std::hint::black_box;

fn bench_queries(c: &mut Criterion) {
    let rel = std::sync::Arc::new(msj_datagen::small_carto(200, 32.0, 77));
    let world = rel.bounding_rect().unwrap();
    let mut group = c.benchmark_group("multi_step_queries");

    for (tag, config) in [
        ("mbr_only", JoinConfig::version1()),
        ("5c_mer", JoinConfig::default()),
    ] {
        let engine = SpatialEngine::new(config);
        let dataset = engine.register(rel.clone());
        group.bench_function(BenchmarkId::new("point_query", tag), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i = i.wrapping_add(1);
                let p = Point::new(
                    world.xmin() + world.width() * ((i as f64 * 0.377).fract()),
                    world.ymin() + world.height() * ((i as f64 * 0.611).fract()),
                );
                black_box(engine.point_query(&dataset, p).ids)
            })
        });
        group.bench_function(BenchmarkId::new("window_query_1pct", tag), |b| {
            let side = 0.01 * world.width();
            let mut i = 0usize;
            b.iter(|| {
                i = i.wrapping_add(1);
                let x = world.xmin() + (world.width() - side) * ((i as f64 * 0.299).fract());
                let y = world.ymin() + (world.height() - side) * ((i as f64 * 0.731).fract());
                black_box(
                    engine
                        .window_query(&dataset, Rect::from_bounds(x, y, x + side, y + side))
                        .ids,
                )
            })
        });
    }
    group.finish();
}

fn bench_wkt(c: &mut Criterion) {
    let rel = msj_datagen::small_carto(100, 40.0, 13);
    let mut buf = Vec::new();
    msj_geom::write_relation(&mut buf, &rel).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let mut group = c.benchmark_group("wkt");
    group.bench_function("write_relation_100x40", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(text.len());
            msj_geom::write_relation(&mut out, &rel).unwrap();
            black_box(out)
        })
    });
    group.bench_function("read_relation_100x40", |b| {
        b.iter(|| black_box(msj_geom::read_relation(std::io::Cursor::new(&text)).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_queries, bench_wkt);
criterion_main!(benches);

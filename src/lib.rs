//! # msj — Multi-Step Processing of Spatial Joins
//!
//! A from-scratch Rust reproduction of *"Multi-Step Processing of Spatial
//! Joins"* (Thomas Brinkhoff, Hans-Peter Kriegel, Ralf Schneider, Bernhard
//! Seeger; SIGMOD 1994): intersection joins over relations of complex
//! polygonal objects executed as **MBR-join → geometric filter → exact
//! geometry**.
//!
//! This crate is a façade re-exporting the workspace:
//!
//! * [`geom`] — geometry kernel (points, rectangles, polygons with holes,
//!   predicates, hulls, clipping) and the spatial object model;
//! * [`approx`] — conservative (MBR, RMBR, CH, 4-C/5-C, MBC, MBE) and
//!   progressive (MEC, MER) approximations, the false-area test, quality
//!   metrics;
//! * [`sam`] — a paged R*-tree with byte-level layout, LRU buffer I/O
//!   accounting and the synchronized-traversal MBR join;
//! * [`partition`] — the partitioned parallel MBR join (uniform grid,
//!   per-tile plane sweeps, reference-point deduplication) selectable as
//!   the Step-1 backend via [`core::Backend::PartitionedSweep`];
//! * [`exact`] — exact geometry processors (quadratic, plane sweep,
//!   trapezoid decomposition + TR*-trees) with the Table 6 cost model;
//! * [`datagen`] — seeded synthetic cartography calibrated against the
//!   paper's dataset statistics;
//! * [`obs`] — always-on runtime observability (lock-free counters,
//!   gauges and log-bucketed latency histograms, per-request traces,
//!   JSON + Prometheus-style exporters) threaded through the engine;
//! * [`core`] — the multi-step join pipeline, the `Serial`/`Fused`
//!   execution engine ([`core::Execution`]), statistics and the §5
//!   total cost model;
//! * [`serve`] — the overload-safe network front: bounded per-pair
//!   queues with wire backpressure (§5-derived `retry_after_ms`),
//!   client deadlines over the engine's cancel tokens, connection
//!   hardening, graceful drain, and cross-request batching of
//!   concurrent selection probes.
//!
//! ## Quickstart
//!
//! ```
//! use msj::core::{JoinConfig, MultiStepJoin};
//!
//! // Two small synthetic map layers.
//! let forests = msj::datagen::small_carto(32, 24.0, 7);
//! let cities = msj::datagen::small_carto(32, 24.0, 8);
//!
//! // The paper's recommended configuration: 5-corner + MER stored in
//! // addition to the MBR, TR*-trees (M = 3) for the exact step.
//! let join = MultiStepJoin::new(JoinConfig::default());
//! let result = join.execute(&forests, &cities);
//!
//! println!(
//!     "{} intersecting pairs; {} of {} candidates decided by the filter",
//!     result.pairs.len(),
//!     result.stats.identified(),
//!     result.stats.mbr_join.candidates,
//! );
//! # assert!(result.stats.mbr_join.candidates >= result.pairs.len() as u64);
//! ```
//!
//! ## Scaling out Step 1
//!
//! The MBR-join backend is pluggable. On multi-core hardware the
//! partitioned parallel sweep replaces the serial R*-tree traversal
//! without changing any result:
//!
//! ```
//! use msj::core::{Backend, JoinConfig, MultiStepJoin};
//!
//! let forests = msj::datagen::small_carto(32, 24.0, 7);
//! let cities = msj::datagen::small_carto(32, 24.0, 8);
//!
//! let serial = MultiStepJoin::new(JoinConfig::default());
//! let partitioned = MultiStepJoin::new(
//!     JoinConfig::builder()
//!         .backend(Backend::PartitionedSweep { tiles_per_axis: 8, threads: 0 })
//!         .build(),
//! );
//! let mut expect = serial.execute(&forests, &cities).pairs;
//! let mut got = partitioned.execute(&forests, &cities).pairs;
//! expect.sort_unstable();
//! got.sort_unstable();
//! assert_eq!(expect, got);
//! ```

pub use msj_approx as approx;
pub use msj_core as core;
pub use msj_datagen as datagen;
pub use msj_exact as exact;
pub use msj_fault as fault;
pub use msj_geom as geom;
pub use msj_obs as obs;
pub use msj_partition as partition;
pub use msj_sam as sam;
pub use msj_serve as serve;

/// The crate version.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
